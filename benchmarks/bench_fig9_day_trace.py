"""Figure 9 — per-minute update latency over a simulated day.

The paper splits a real Twitter day (June 25-26 2019, λ = 0.01) into
1440 per-minute batches and shows that UPDATE absorbs them with a stable
p95 latency despite bursts.  We replay a synthetic bursty diurnal trace
(sinusoidal base rate + Pareto bursts) at stand-in scale — 240 simulated
minutes on the LA stand-in — through the online engine and report the
latency distribution.

Qualitative claims asserted:

* every batch is absorbed (no failures, index stays consistent);
* the p95 batch latency is within a small factor of the median — bursty
  minutes do not blow up the tail, because the update cost is bounded by
  the affected set, not the graph (Lemma 12);
* latency correlates with batch size (bigger bursts take longer), which
  is the visible burst structure of Fig 9.
"""

import statistics
import time

import pytest

from repro.bench.reporting import format_table, save_result, sparkline
from repro.core.anc import ANCO, ANCParams
from repro.workloads.datasets import load_dataset
from repro.workloads.streams import day_trace

MINUTES = 240


@pytest.fixture(scope="module")
def latencies():
    data = load_dataset("LA")
    params = ANCParams(
        lam=0.01, rep=1, k=2, seed=0, rescale_every=2048, eps=0.25, mu=2
    )
    engine = ANCO(data.graph, params)
    stream = day_trace(
        data.graph, minutes=MINUTES, base_per_minute=8, seed=4,
        burst_probability=0.05,
    )
    out = []
    for t, batch in stream.batches_by_timestamp():
        start = time.perf_counter()
        engine.process_batch(batch)
        out.append(
            {"minute": t, "batch": len(batch), "seconds": time.perf_counter() - start}
        )
    engine.index.check_consistency()
    return out


def test_fig9_day_trace(benchmark, latencies):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    seconds = sorted(r["seconds"] for r in latencies)
    p50 = seconds[len(seconds) // 2]
    p95 = seconds[int(len(seconds) * 0.95)]
    p99 = seconds[int(len(seconds) * 0.99)]
    summary = [
        {"stat": "minutes", "value": float(len(latencies))},
        {"stat": "total_activations", "value": float(sum(r["batch"] for r in latencies))},
        {"stat": "p50_seconds", "value": p50},
        {"stat": "p95_seconds", "value": p95},
        {"stat": "p99_seconds", "value": p99},
        {"stat": "max_seconds", "value": max(seconds)},
    ]
    print()
    print(
        format_table(
            summary,
            ["stat", "value"],
            title="Figure 9: Update latency over a simulated day (LA stand-in)",
            float_fmt="{:.5f}",
        )
    )
    # The Fig 9 time series itself, 4 minutes per character.
    per_min = [r["seconds"] for r in latencies]
    coarse = [max(per_min[i : i + 4]) for i in range(0, len(per_min), 4)]
    print(f"latency  {sparkline(coarse)}")
    batches = [r["batch"] for r in latencies]
    coarse_b = [max(batches[i : i + 4]) for i in range(0, len(batches), 4)]
    print(f"batch sz {sparkline(coarse_b)}")
    save_result("fig9_day_trace", {"latencies": latencies, "summary": summary})

    # Tail behaviour: p95 within a moderate factor of the median — batch
    # sizes vary ~3x diurnally plus bursts, and cost is linear in batch.
    assert p95 < 25 * max(p50, 1e-6), (p50, p95)


def test_latency_tracks_batch_size(benchmark, latencies):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    big = [r["seconds"] for r in latencies if r["batch"] >= 10]
    small = [r["seconds"] for r in latencies if 0 < r["batch"] <= 4]
    assert big and small
    assert statistics.mean(big) > statistics.mean(small)


def test_benchmark_one_minute_batch(benchmark):
    """pytest-benchmark target: absorbing one typical minute batch."""
    from repro.core.activation import Activation

    data = load_dataset("CO")
    params = ANCParams(lam=0.01, rep=1, k=2, seed=0, eps=0.25, mu=2)
    engine = ANCO(data.graph, params)
    edges = list(data.graph.edges())
    state = {"minute": 0}

    def one_minute():
        state["minute"] += 1
        t = float(state["minute"])
        batch = [Activation(*edges[(state["minute"] * 7 + j) % len(edges)], t) for j in range(8)]
        batch.sort()
        engine.process_batch(batch)

    benchmark.pedantic(one_minute, rounds=30, iterations=1)
