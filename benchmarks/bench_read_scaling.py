"""Read scaling — snapshot-read throughput at 1, 2 and 3 followers.

Drives the same snapshot-read workload against a real replica fleet —
a durable primary plus WAL-shipping followers, all live TCP — and
records how read throughput scales with follower count, plus what the
``repro.readpath`` routing tier costs on the serving path.  The
results land in ``bench_results/read_scaling.json``.

**Methodology / honesty note.**  This container pins the whole suite
to a small number of CPU cores (often one), so N follower processes
cannot physically serve N× faster *here*.  What the follower fleet
buys is that each follower only has to serve its own share of the
read stream — so the number a multi-core deployment delivers is the
**critical path**: the wall-clock of the slowest follower's share,
with every other follower serving in parallel under it.  Each
follower's share is therefore driven and timed *separately* (serially,
so the followers never compete for this box's cores), and the headline
``speedup_vs_primary_only`` compares the primary-only read time
against ``max_i(t_follower_i)``.  Because this box's background load
drifts on the scale of one timing window, every node's per-read cost
is sampled in *interleaved* passes (primary, f1, f2, f3, repeat) and
the best pass per node is kept; the fleet critical paths are then
``share × max_i(per_read_i)`` over those samples.  The live router's
observed per-follower split over the same fleet is recorded next to
the derived numbers as evidence the tier actually distributes reads
this evenly.

The routing-tier overhead gate asks what routing adds **to the
follower serving path**: the CPU a follower burns per snapshot read —
parse, engine query, encode, socket I/O, measured as the follower
process's own schedstat CPU time, which wall-clock scheduling noise
cannot stretch — compared between reads arriving through the router
and reads arriving over a dedicated direct socket.  That is the
quantity a fleet operator provisions followers by, and the gate holds
it within 5 %: serving a routed read must not cost a follower more
than serving the same read directly.  The follower (and primary) run
as real ``repro-anc serve`` subprocesses for this, each with its own
interpreter, exactly as deployed; both sides drive the follower at
the **same arrival cadence** — the direct stream is paced to the
routed stream's measured per-read wall — because a follower's
connection-wakeup CPU is a function of how fast reads arrive, not of
which tier sent them, and on this one-core box the routed stream's
cadence is set by the router sharing the core (a deployed router does
not).  At matched cadence the wakeup cost cancels and the gate
isolates what routing adds to each served read: the bytes parsed, the
query run, the response encoded.  Everything the router itself costs
is *disclosed* next to the gated number, not hidden: the router's
``readpath_forward_seconds`` wire round-trip (which also carries the
asyncio event loop's scheduling latency), the direct socket's wire
round-trip, and the full un-overlapped single-core proxy RTT
(client → router → follower and back through two JSON hops — the
worst case this box can express; a deployed router runs on its own
core, overlapping that CPU with follower serving).

Qualitative claims asserted:

* the critical-path read time shrinks ≥ 1.8× from primary-only to a
  2-follower fleet (and monotonically at 3);
* every measured read reflects the fully-ingested workload (the
  follower fleet is caught up; no read is served stale);
* the follower's per-read serving CPU for routed reads stays within
  5 % of reads over a dedicated direct connection.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List

from repro.bench.reporting import format_table, save_result
from repro.faults import ServerThread
from repro.faults.chaos import QUICK_PARAMS, ReadRouterThread
from repro.graph.generators import planted_partition
from repro.readpath import ReadRouterConfig
from repro.service.client import ServiceClient
from repro.service.server import ServerConfig
from repro.workloads.streams import community_biased_stream

SRC = Path(__file__).resolve().parent.parent / "src"

FOLLOWER_COUNTS = (1, 2, 3)
NODES = 500
BLOCKS = 8
TIMESTAMPS = 6
#: Total reads per fleet measurement — divisible by every fleet width.
READS = 600
#: Reads per timed sampling pass.
PASS_READS = 200
#: Interleaved sampling passes per node; the best pass is kept (the
#: box is a shared single core, so the *minimum* is the least-noisy
#: estimate of a node's true per-read cost).
REPEATS = 4
CHUNK = 100


def _cpu_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _workload(
    seed: int = 3, nodes: int = NODES, timestamps: int = TIMESTAMPS
):
    graph, labels = planted_partition(
        nodes, BLOCKS, p_in=0.15, p_out=0.01, seed=seed
    )
    stream = community_biased_stream(
        graph, labels, timestamps=timestamps, fraction=0.15, seed=seed + 2
    )
    return graph, list(stream)


def _serve(graph, data_dir: Path, **kwargs) -> ServerThread:
    config = ServerConfig(
        port=0,
        engine="anco",
        metrics_interval=0.0,
        data_dir=data_dir,
        **kwargs,
    )
    return ServerThread(graph, config=config, params=QUICK_PARAMS)


def _follower_kwargs(primary_port: int) -> Dict[str, object]:
    return dict(
        role="follower",
        primary_host="127.0.0.1",
        primary_port=primary_port,
        # Caught-up followers re-poll at a relaxed cadence so the fetch
        # loops do not sit on this box's one core during timed reads.
        poll_interval=0.25,
        audit_interval=0.0,
    )


def _ingest(primary: ServerThread, stream) -> int:
    items = [(a.u, a.v, a.t) for a in stream]
    with ServiceClient(primary.host, primary.port, timeout=120) as client:
        for i in range(0, len(items), CHUNK):
            client.ingest_batch(items[i : i + CHUNK], key=f"rs-b{i}")
        applied = client.sync()
    assert applied == len(items), (applied, len(items))
    return applied


def _await_applied(handle: ServerThread, target: int, timeout: float = 60.0):
    deadline = time.monotonic() + timeout
    while handle.server.host.applied < target:
        if time.monotonic() > deadline:
            raise AssertionError(
                f"follower stuck at {handle.server.host.applied}/{target}"
            )
        time.sleep(0.01)


def _sample_per_read(
    handles: List[ServerThread], expect_applied: int
) -> Dict[str, float]:
    """Per-read cost of every node, from interleaved best-of passes.

    One persistent connection per node; ``REPEATS`` rounds of
    ``PASS_READS`` timed reads each, visiting the nodes round-robin so
    background-load drift on this shared core hits every node alike.
    """
    clients = []
    best: Dict[str, float] = {}
    try:
        for handle in handles:
            client = ServiceClient(handle.host, handle.port, timeout=120)
            doc = client.clusters_info()  # warm connection + snapshot
            assert doc["applied"] == expect_applied, doc["applied"]
            clients.append((f"{handle.host}:{handle.port}", client))
            best[clients[-1][0]] = float("inf")
        for _ in range(REPEATS):
            for key, client in clients:
                started = time.perf_counter()
                for _ in range(PASS_READS):
                    doc = client.clusters_info()
                    assert doc["applied"] == expect_applied
                elapsed = time.perf_counter() - started
                best[key] = min(best[key], elapsed / PASS_READS)
    finally:
        for _, client in clients:
            client.close()
    return best


def test_read_scaling(tmp_path):
    graph, stream = _workload()
    rows = []
    results: Dict[str, object] = {}

    with _serve(graph, tmp_path / "p") as primary:
        fkw = _follower_kwargs(primary.port)
        with _serve(graph, tmp_path / "f1", **fkw) as f1, _serve(
            graph, tmp_path / "f2", **fkw
        ) as f2, _serve(graph, tmp_path / "f3", **fkw) as f3:
            followers = [f1, f2, f3]
            total = _ingest(primary, stream)
            for handle in followers:
                _await_applied(handle, total)
            # Settle before timing anything: post-ingest background work
            # (follower checkpoints, WAL fsyncs) must not bleed into the
            # timed passes on this shared core.
            time.sleep(0.5)
            per_read = _sample_per_read([primary, *followers], total)

            primary_key = f"{primary.host}:{primary.port}"
            primary_s = READS * per_read[primary_key]
            rows.append(
                {
                    "fleet": "primary-only",
                    "reads": READS,
                    "critical_path_s": primary_s,
                    "serial_total_s": primary_s,
                    "reads_per_s": READS / primary_s,
                    "speedup": 1.0,
                }
            )
            results["primary_only"] = {
                "reads": READS,
                "per_read_s": per_read[primary_key],
                "critical_path_s": primary_s,
                "reads_per_s": READS / primary_s,
            }

            # Follower fleets: each follower serves an equal share; the
            # critical path is the slowest follower's share.
            for count in FOLLOWER_COUNTS:
                share = READS // count
                costs = [
                    per_read[f"{h.host}:{h.port}"]
                    for h in followers[:count]
                ]
                times = [share * c for c in costs]
                critical = max(times)
                speedup = primary_s / critical
                results[f"{count}_followers"] = {
                    "reads": READS,
                    "per_follower_reads": share,
                    "per_read_s": costs,
                    "per_follower_s": times,
                    "critical_path_s": critical,
                    "serial_total_s": sum(times),
                    "reads_per_s": READS / critical,
                    "speedup_vs_primary_only": speedup,
                }
                rows.append(
                    {
                        "fleet": f"{count} follower{'s' if count > 1 else ''}",
                        "reads": READS,
                        "critical_path_s": critical,
                        "serial_total_s": sum(times),
                        "reads_per_s": READS / critical,
                        "speedup": speedup,
                    }
                )

            # Evidence the live tier really splits this evenly: the same
            # fleet behind a real router, the observed per-upstream split.
            with ReadRouterThread(
                ("127.0.0.1", primary.port),
                followers=[("127.0.0.1", h.port) for h in followers],
                config=ReadRouterConfig(heartbeat_interval=0.1),
            ) as rt:
                with ServiceClient(
                    "127.0.0.1", rt.port, timeout=120
                ) as client:
                    client.clusters_info()  # warm: fleet view + pools
                    for _ in range(READS):
                        doc = client.clusters_info()
                        assert doc["applied"] == total
                    status = client.request("route_status")
            split = {
                key: up["reads_served"]
                for key, up in status["upstreams"].items()
                if up["role"] == "follower"
            }
            served = sorted(split.values())
            results["router_observed_split"] = split
            # WRR over three equally-fresh followers: no follower gets
            # more than double the least-loaded one's share.
            assert sum(served) >= READS, split
            assert served[0] > 0 and served[-1] <= 2 * served[0], split

    print()
    print(
        format_table(
            rows,
            title=(
                f"Read scaling ({graph.n}-node graph, {total} activations, "
                f"{READS} snapshot reads)"
            ),
            float_fmt="{:.3f}",
        )
    )

    speedup2 = float(results["2_followers"]["speedup_vs_primary_only"])
    speedup3 = float(results["3_followers"]["speedup_vs_primary_only"])
    assert speedup2 >= 1.8, (
        f"2-follower critical path shrank only {speedup2:.2f}x vs primary-only"
    )
    # Monotone within measurement noise (shared-GIL threads on a
    # pinned box jitter single-share timings by a few percent).
    assert speedup3 >= speedup2 * 0.9, (speedup3, speedup2)

    save_result(
        "read_scaling",
        {
            "graph": {"n": graph.n, "m": graph.m},
            "activations": total,
            "reads": READS,
            "follower_counts": list(FOLLOWER_COUNTS),
            "results": results,
            "speedup_vs_primary_only_at_2": speedup2,
            "cpu_cores": _cpu_cores(),
            "methodology": (
                "per-node per-read cost sampled over live TCP against a "
                "WAL-shipping replica fleet in interleaved best-of-"
                f"{REPEATS} passes of {PASS_READS} reads; fleet critical "
                "paths are share x max_i(per_read_i), and the headline "
                "speedup is primary-only time / the slowest follower "
                "share, i.e. what an N-core deployment sustains.  "
                "router_observed_split is the live ReadRouter's "
                "per-follower reads_served over the same fleet."
            ),
        },
    )


def _raw_read_pass(sock_file, sock, reads: int) -> float:
    """Wire round-trip baseline: the identical snapshot-read request
    over a dedicated blocking socket — request bytes out to response
    bytes in, the response line drained but not decoded (the router's
    forward histogram does not decode inside its window either)."""
    request = b'{"op": "clusters"}\n'
    started = time.perf_counter()
    for _ in range(reads):
        sock.sendall(request)
        line = sock_file.readline()
        assert b'"ok": true' in line, line[:80]
    return (time.perf_counter() - started) / reads


def _spawn_server(edgelist: Path, data_dir: Path, *extra: str):
    """One ``repro-anc serve`` subprocess — its own interpreter and GIL,
    like a deployed node — announced via its ``SERVING`` line."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", str(edgelist),
            "--port", "0", "--data-dir", str(data_dir),
            "--rep", "1", "--pyramids", "2", "--seed", "0",
            "--metrics-interval", "0", *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=dict(os.environ, PYTHONPATH=str(SRC)),
        text=True,
    )
    announce = proc.stdout.readline().split()
    assert announce and announce[0] == "SERVING", announce
    return proc, announce[1], int(announce[2])


def _query_count(metrics_client: ServiceClient) -> int:
    """How many engine queries the follower has served, from its own
    ``query_seconds`` histogram.  The ``metrics`` op itself is a
    server-level snapshot and never observes into ``query_seconds``."""
    doc = metrics_client.request("metrics")["metrics"]["histograms"]
    return int(doc["query_seconds"]["count"])


def _proc_cpu_ns(pid: int) -> int:
    """CPU nanoseconds the process has consumed (``/proc`` schedstat)."""
    with open(f"/proc/{pid}/schedstat") as fh:
        return int(fh.read().split()[0])


def test_routed_read_overhead(tmp_path):
    """Serving-path cost of a routed read vs a dedicated direct socket.

    Unlike the scaling samples — where every node is timed the same way,
    so in-process server threads are fine — the gated quantity here is
    the follower's own per-read serving CPU, and it must not be
    conflated with the bench process's GIL or the router thread.  The
    primary and the follower therefore run as real ``repro-anc serve``
    subprocesses, each with its own interpreter, exactly as deployed.
    """
    graph, stream = _workload(seed=9)
    edgelist = tmp_path / "graph.txt"
    edgelist.write_text("".join(f"{u} {v}\n" for u, v in graph.edges()))

    procs = []
    try:
        pproc, phost, pport = _spawn_server(edgelist, tmp_path / "p")
        procs.append(pproc)
        fproc, fhost, fport = _spawn_server(
            edgelist, tmp_path / "f",
            "--role", "follower", "--primary", f"{phost}:{pport}",
            "--poll-interval", "0.25", "--audit-interval", "0",
        )
        procs.append(fproc)

        items = [(a.u, a.v, a.t) for a in stream]
        with ServiceClient(phost, pport, timeout=120) as pclient:
            for i in range(0, len(items), CHUNK):
                pclient.ingest_batch(items[i : i + CHUNK], key=f"ro-b{i}")
            total = pclient.sync()
        assert total == len(items), (total, len(items))

        with ServiceClient(fhost, fport, timeout=120) as fclient:
            deadline = time.monotonic() + 60.0
            while fclient.clusters_info()["applied"] < total:
                assert time.monotonic() < deadline, "follower stuck"
                time.sleep(0.05)
        time.sleep(0.5)

        with ReadRouterThread(
            ("127.0.0.1", pport),
            followers=[("127.0.0.1", fport)],
            config=ReadRouterConfig(heartbeat_interval=0.1),
        ) as rt:
            hist = rt.router._h_forward
            serve_direct = float("inf")
            serve_routed = float("inf")
            wire_direct = float("inf")
            wire_forward = float("inf")
            routed_rtt_s = 0.0
            routed_reads = 0
            request = b'{"op": "clusters"}\n'
            sock = socket.create_connection((fhost, fport), timeout=120)
            sock_file = sock.makefile("rb")
            try:
                with ServiceClient(
                    "127.0.0.1", rt.port, timeout=120
                ) as client, ServiceClient(
                    fhost, fport, timeout=120
                ) as mclient:
                    doc = client.clusters_info()  # warm pool + route
                    assert doc["served_by"] == f"{fhost}:{fport}", doc
                    _raw_read_pass(sock_file, sock, 10)  # warm socket
                    # Interleaved best-of passes, like the scaling
                    # samples: load drift hits both sides alike.  The
                    # follower's query histogram is read around each
                    # pass (outside the CPU windows — the scrape itself
                    # costs follower CPU) so every CPU window is proven
                    # to cover exactly its own reads and nothing else.
                    for _ in range(REPEATS):
                        # Routed pass first: its per-read wall sets the
                        # arrival cadence the direct pass reproduces.
                        qc0 = _query_count(mclient)
                        count0, sum0 = hist.count, hist.sum
                        cpu0 = _proc_cpu_ns(fproc.pid)
                        started = time.perf_counter()
                        for _ in range(PASS_READS):
                            doc = client.clusters_info()
                            assert doc["applied"] == total
                        pass_wall = time.perf_counter() - started
                        cpu1 = _proc_cpu_ns(fproc.pid)
                        qc1 = _query_count(mclient)
                        assert qc1 - qc0 == PASS_READS, (qc0, qc1)
                        serve_routed = min(
                            serve_routed, (cpu1 - cpu0) / 1e9 / PASS_READS
                        )
                        routed_rtt_s += pass_wall
                        routed_reads += PASS_READS
                        forwards = hist.count - count0
                        assert forwards == PASS_READS, forwards
                        wire_forward = min(
                            wire_forward, (hist.sum - sum0) / forwards
                        )

                        # Direct pass at the routed pass's cadence: one
                        # plain sleep per read, no spin (a polling wait
                        # would itself perturb the follower's caches).
                        cadence = pass_wall / PASS_READS
                        qc2 = _query_count(mclient)
                        cpu2 = _proc_cpu_ns(fproc.pid)
                        started = time.perf_counter()
                        for i in range(PASS_READS):
                            wait = started + i * cadence - time.perf_counter()
                            if wait > 0:
                                time.sleep(wait)
                            sock.sendall(request)
                            line = sock_file.readline()
                            assert b'"ok": true' in line, line[:80]
                        cpu3 = _proc_cpu_ns(fproc.pid)
                        qc3 = _query_count(mclient)
                        assert qc3 - qc2 == PASS_READS, (qc2, qc3)
                        serve_direct = min(
                            serve_direct, (cpu3 - cpu2) / 1e9 / PASS_READS
                        )
                        # Unpaced wire RTT, outside any CPU window
                        # (disclosure only).
                        wire_direct = min(
                            wire_direct,
                            _raw_read_pass(sock_file, sock, 50),
                        )
                    counters = {
                        name: c.value
                        for name, c in rt.router.metrics.counters().items()
                    }
            finally:
                sock_file.close()
                sock.close()
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    # Every routed read was served by the follower, none shed.
    assert counters.get("readpath_follower_reads", 0) >= routed_reads
    assert counters.get("readpath_primary_reads", 0) == 0, counters

    overhead = serve_routed / serve_direct
    row = {
        "reads": routed_reads,
        "direct_serve_cpu_ms": serve_direct * 1e3,
        "routed_serve_cpu_ms": serve_routed * 1e3,
        "overhead_x": overhead,
        "direct_wire_ms": wire_direct * 1e3,
        "forward_wire_ms": wire_forward * 1e3,
        "proxy_rtt_ms": routed_rtt_s / routed_reads * 1e3,
    }
    print()
    print(
        format_table(
            [row],
            title="Routed-read overhead (1 follower)",
            float_fmt="{:.3f}",
        )
    )

    # The gate: routing adds < 5 % to the serving path the follower
    # sees — a routed read costs the follower what a direct read costs.
    assert overhead < 1.05, (
        f"routed reads cost the follower {overhead:.3f}x a direct read"
    )

    save_result(
        "read_routed_overhead",
        {
            **row,
            "cpu_cores": _cpu_cores(),
            "methodology": (
                "the gated numbers are the follower's per-read CPU cost "
                "(schedstat CPU nanoseconds of its own repro-anc serve "
                "OS process — parse, engine query, encode, socket I/O; "
                "immune to wall-clock scheduling noise) for reads "
                "arriving through the router vs over a dedicated "
                "blocking socket paced to the same arrival cadence "
                "(wakeup CPU tracks arrival rate, not the sending "
                "tier), interleaved best-of-"
                f"{REPEATS} passes of {PASS_READS} reads each; the "
                "follower's own query histogram verifies every CPU "
                "window covers exactly its own reads and nothing else.  "
                "Disclosed beside the gate: direct_wire_ms (the "
                "blocking socket's full round-trip), forward_wire_ms "
                "(the router's readpath_forward_seconds over its pooled "
                "asyncio connection, which also carries event-loop "
                "scheduling latency), and proxy_rtt_ms (the full "
                "un-overlapped client->router->follower round-trip on "
                "this single-core box; a deployed router overlaps that "
                "CPU with follower serving on its own core)."
            ),
        },
    )
