"""Figure 7 — cluster extraction (DirectedCluster) time per level.

Times power clustering ("DirectedCluster" in the paper) at granularity
levels 4-8 across datasets of growing size.

Qualitative claims asserted:

* extraction time grows with the edge count across datasets (the paper:
  linear in m, complexity O(m log n) — Lemma 8);
* at a fixed dataset, extraction time is essentially level-independent
  (the paper: "On different levels, the extraction time is basically the
  same", verifying Lemma 8).
"""

import statistics
import time

import pytest

from repro.bench.reporting import format_table, save_result
from repro.index.clustering import power_clustering
from repro.index.pyramid import PyramidIndex
from repro.workloads.datasets import load_dataset

DATASETS = ("CA", "LA", "CM", "DB", "YT")
LEVELS = (4, 5, 6, 7, 8)


@pytest.fixture(scope="module")
def rows():
    out = []
    for name in DATASETS:
        data = load_dataset(name)
        weights = {e: 1.0 for e in data.graph.edges()}
        index = PyramidIndex(data.graph, weights, k=4, seed=0)
        for level in LEVELS:
            if level > index.num_levels:
                continue
            # Median of 3 runs to smooth scheduler noise.
            times = []
            for _ in range(3):
                start = time.perf_counter()
                clusters = power_clustering(index, level)
                times.append(time.perf_counter() - start)
            out.append(
                {
                    "dataset": name,
                    "m": data.graph.m,
                    "level": level,
                    "seconds": statistics.median(times),
                    "clusters": len(clusters),
                }
            )
    return out


def test_fig7_extraction_time(benchmark, rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(
        format_table(
            rows,
            ["dataset", "m", "level", "clusters", "seconds"],
            title="Figure 7: Cluster Extraction Time per level",
            float_fmt="{:.5f}",
        )
    )
    save_result("fig7_query_time", {"rows": rows})

    # Growth with m: biggest dataset slower than smallest at level 5.
    by = {(r["dataset"], r["level"]): r["seconds"] for r in rows}
    assert by[("YT", 5)] > by[("CA", 5)]

    # Level independence within a dataset: max/min across levels bounded.
    for name in DATASETS:
        times = [r["seconds"] for r in rows if r["dataset"] == name]
        assert len(times) >= 3
        assert max(times) < 6 * min(times), (name, times)


def test_local_query_cost_scales_with_output(benchmark):
    """Lemma 9: local queries touch only the reported neighborhood.

    Querying a node in a small cluster must touch far fewer nodes than a
    global extraction; we proxy "touched" with wall time on a graph large
    enough to dominate fixed overheads."""
    from repro.index.clustering import local_cluster

    data = load_dataset("DB")
    weights = {e: 1.0 for e in data.graph.edges()}
    index = PyramidIndex(data.graph, weights, k=4, seed=0)
    level = index.num_levels  # finest: smallest clusters

    start = time.perf_counter()
    for _ in range(20):
        cluster = local_cluster(index, 0, level)
    local_t = (time.perf_counter() - start) / 20

    start = time.perf_counter()
    power_clustering(index, level)
    global_t = time.perf_counter() - start

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(cluster) < data.graph.n / 4
    assert local_t < global_t, (local_t, global_t)


def test_benchmark_power_clustering(benchmark):
    data = load_dataset("LA")
    weights = {e: 1.0 for e in data.graph.edges()}
    index = PyramidIndex(data.graph, weights, k=4, seed=0)
    level = min(5, index.num_levels)
    clusters = benchmark(lambda: power_clustering(index, level))
    assert sum(len(c) for c in clusters) == data.graph.n
