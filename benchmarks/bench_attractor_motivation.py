"""The §IV motivating argument — Attractor's iterations vs one shortest path.

The paper's key design insight: Attractor propagates local cohesiveness
by iterating edge-weight updates until all weights polarize ("3 to 50
repetitions", quadratic per iteration), which is unusable online; the
shortest-path metric performs the same propagation in a single
distance computation.  This bench measures both on the same graphs.

Qualitative claims asserted:

* Attractor needs multiple iterations to converge, and its iteration
  count grows (or at least does not shrink) on noisier graphs;
* ANCF with a single reinforcement repetition (no iteration to a fixed
  point — the shortest path does the propagation) reaches comparable NMI
  at its best granularity on the noisy graph.
"""

import time

import pytest

from repro.baselines.attractor import Attractor
from repro.bench.reporting import format_table, save_result
from repro.core.anc import ANCF, ANCParams
from repro.evalm import score_clustering
from repro.graph.generators import lfr_like, planted_partition


def _best_level_scores(graph, truth, rep):
    engine = ANCF(graph, ANCParams(rep=rep, k=4, seed=0, eps=0.2, mu=2))
    best = None
    for level in range(1, engine.queries.num_levels + 1):
        scores = score_clustering(engine.clusters(level), truth, min_size=3)
        if best is None or scores["nmi"] > best["nmi"]:
            best = scores
    return best


@pytest.fixture(scope="module")
def rows():
    cases = [
        ("clean", *planted_partition(250, 10, p_in=0.4, p_out=0.01, seed=31)),
        ("noisy", *lfr_like(250, mixing=0.35, avg_degree=9, seed=31)),
    ]
    out = []
    for name, graph, labels in cases:
        truth = {v: labels[v] for v in graph.nodes()}
        model = Attractor(graph, max_iterations=60)
        start = time.perf_counter()
        attr_clusters = model.run()
        attr_seconds = time.perf_counter() - start
        attr_scores = score_clustering(attr_clusters, truth, min_size=3)

        start = time.perf_counter()
        anc_scores = _best_level_scores(graph, truth, rep=1)
        anc_seconds = time.perf_counter() - start
        out.append(
            {
                "graph": name,
                "attr_iterations": model.iterations_run,
                "attr_nmi": attr_scores["nmi"],
                "attr_seconds": attr_seconds,
                "ancf1_nmi": anc_scores["nmi"],
                "ancf1_seconds": anc_seconds,
            }
        )
    return out


def test_attractor_motivation(benchmark, rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(
        format_table(
            rows,
            ["graph", "attr_iterations", "attr_nmi", "attr_seconds",
             "ancf1_nmi", "ancf1_seconds"],
            title="§IV motivation: Attractor iterations vs one-shot distance metric",
        )
    )
    save_result("attractor_motivation", {"rows": rows})
    by = {r["graph"]: r for r in rows}
    # Attractor is iterative on every input; the paper reports 3-50.
    for row in rows:
        assert row["attr_iterations"] >= 3, row
    # A single reinforcement pass + shortest distance reaches comparable
    # quality on the noisy graph — no iteration-to-convergence needed.
    assert by["noisy"]["ancf1_nmi"] >= by["noisy"]["attr_nmi"] - 0.12, by["noisy"]


def test_benchmark_single_attractor_iteration(benchmark):
    graph, _ = planted_partition(200, 8, p_in=0.4, p_out=0.01, seed=5)
    model = Attractor(graph, max_iterations=1)
    benchmark.pedantic(model.run, rounds=1, iterations=1)
    assert model.iterations_run == 1
