"""Ablation — the time-decay scheme vs sliding-window vs interval models.

DESIGN.md calls out the choice of the time-decay scheme (adopted from
[19]) as a load-bearing design decision; §II contrasts it with the
sliding-window and interval-edge models used elsewhere in the
literature.  This bench clusters the *same* drifting activation stream
under all three temporal models (snapshot weights → spectral clustering
of the weighted graph is held fixed so only the temporal model varies)
and scores each against the stream's current community structure.

Workload: communities *drift* — activations follow one planted partition
for the first half of the stream and a reshuffled partition for the
second half.  The model that balances memory and recency best should
track the new structure while not flapping.

Qualitative claims asserted:

* the stream models (time-decay, sliding window) converge to the new
  structure once the drift settles, improving markedly over their
  just-after-drift scores;
* the interval model cannot forget — its intervals are a union over
  history, so the stale pre-drift structure pins its final score below
  the stream models' (the adaptivity argument for decayed weights);
* maintenance accounting: the decay model touches O(1) state per
  activation while the window model's snapshot read scans every edge.
"""

import random

import pytest

from repro.bench.reporting import format_table, save_result
from repro.core.activation import Activation
from repro.core.decay import Activeness, DecayClock
from repro.core.windows import IntervalEdgeModel, SlidingWindowActiveness
from repro.baselines.louvain import louvain
from repro.evalm import score_clustering
from repro.graph.generators import planted_partition

TIMESTAMPS = 40
DRIFT_AT = 20


@pytest.fixture(scope="module")
def scenario():
    graph, labels_old = planted_partition(150, 6, p_in=0.4, p_out=0.01, seed=21)
    rng = random.Random(3)
    # The drifted structure: relabel by rotating community blocks.
    perm = list(range(graph.n))
    rng.shuffle(perm)
    labels_new = [labels_old[perm[v]] for v in range(graph.n)]
    intra_old = [e for e in graph.edges() if labels_old[e[0]] == labels_old[e[1]]]
    intra_new = [e for e in graph.edges() if labels_new[e[0]] == labels_new[e[1]]]
    if not intra_new:
        intra_new = list(graph.edges())
    stream = []
    for t in range(1, TIMESTAMPS + 1):
        pool = intra_old if t <= DRIFT_AT else intra_new
        batch = sorted(rng.choice(pool) for _ in range(60))
        stream.extend(Activation(u, v, float(t)) for u, v in batch)
    return graph, labels_old, labels_new, stream


def run_models(graph, stream, checkpoints):
    """Feed the stream to all three models, snapshotting weights at the
    requested timestamp boundaries."""
    snapshots = {"decay": {}, "window": {}, "interval": {}}
    by_t = {}
    for act in stream:
        by_t.setdefault(act.t, []).append(act)
    clock = DecayClock(lam=0.15)
    decay = Activeness(clock, initial={e: 1.0 for e in graph.edges()})
    window = SlidingWindowActiveness(graph, window=5.0)
    history = []
    for t in sorted(by_t):
        for act in by_t[t]:
            decay.on_activation(act.u, act.v, act.t)
            clock.note_activation()
            window.on_activation(act.u, act.v, act.t)
            history.append(act)
        if t in checkpoints:
            interval = IntervalEdgeModel.from_activations(
                graph, history, session_gap=3.0
            )
            snapshots["decay"][t] = {
                e: decay.value(*e) for e in graph.edges()
            }
            snapshots["window"][t] = window.snapshot_weights()
            snapshots["interval"][t] = interval.snapshot_weights(t)
    return snapshots


@pytest.fixture(scope="module")
def results(scenario):
    graph, labels_old, labels_new, stream = scenario
    checkpoints = {float(DRIFT_AT + 2), float(TIMESTAMPS)}
    snapshots = run_models(graph, stream, checkpoints)
    rows = []
    for model, per_t in snapshots.items():
        for t, weights in sorted(per_t.items()):
            clusters = louvain(graph, weights, seed=0)
            truth_new = {v: labels_new[v] for v in graph.nodes()}
            scores = score_clustering(clusters, truth_new, min_size=3)
            rows.append(
                {
                    "model": model,
                    "t": t,
                    "nmi_vs_new": scores["nmi"],
                    "clusters": int(scores["clusters"]),
                }
            )
    return rows


def test_temporal_model_ablation(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(
        format_table(
            results,
            ["model", "t", "nmi_vs_new", "clusters"],
            title="Ablation: temporal models on a drifting stream",
        )
    )
    save_result("temporal_models", {"rows": results})
    by = {(r["model"], r["t"]): r["nmi_vs_new"] for r in results}
    end = float(TIMESTAMPS)
    mid = float(DRIFT_AT + 2)
    # The stream models (decay, window) converge to the new structure.
    assert by[("decay", end)] > 0.4, by
    assert by[("window", end)] > 0.4, by
    # Both improve markedly after the drift settles.
    assert by[("decay", end)] > by[("decay", mid)] + 0.2
    assert by[("window", end)] > by[("window", mid)] + 0.2
    # The interval model cannot forget: its intervals are a union over
    # history, so the stale structure pins its end-of-stream score below
    # the stream models' — the adaptivity argument for decayed weights.
    assert by[("interval", end)] < by[("decay", end)], by


def test_decay_state_is_constant_per_activation(benchmark, scenario):
    """Maintenance accounting: the decay model's per-activation work is
    one anchored update; the window model's snapshot read must touch
    every edge's deque."""
    graph, _, _, stream = scenario
    window = SlidingWindowActiveness(graph, window=5.0)
    for act in stream[:100]:
        window.on_activation(act.u, act.v, act.t)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert window.total_expiry_scan_cost() == graph.m
