"""Table I — dataset inventory.

Prints the 17-dataset catalogue (paper sizes next to the stand-in sizes)
and benchmarks dataset generation.  The qualitative claim checked: the
stand-ins preserve the paper's size ordering and span social /
collaboration / email / product types.
"""

from repro.bench.reporting import format_table, save_result
from repro.graph.traversal import connected_components
from repro.workloads.datasets import SPECS, dataset_names, load_dataset, table1_rows


def test_table1_inventory(benchmark):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)
    assert len(rows) == 17
    # Size ordering of the stand-ins follows the paper's vertex ordering.
    paper_order = sorted(rows, key=lambda r: r["paper_vertices"])
    standin_sizes = [r["standin_vertices"] for r in paper_order]
    assert standin_sizes == sorted(standin_sizes)
    kinds = {r["type"] for r in rows}
    assert {"social", "collaboration", "email", "product"} <= kinds
    print()
    print(format_table(rows, title="Table I: Data Set Description (paper vs stand-in)"))
    save_result("table1_datasets", {"rows": rows})


def test_benchmark_dataset_generation(benchmark):
    graph = benchmark(lambda: load_dataset("CO").graph)
    assert graph.n == SPECS["CO"].n


def test_every_dataset_loads_and_is_connected(benchmark):
    def load_all():
        return [load_dataset(name) for name in dataset_names()]

    datasets = benchmark.pedantic(load_all, rounds=1, iterations=1)
    for data in datasets:
        assert len(connected_components(data.graph)) == 1, data.name
