"""Figure 8 — UPDATE vs RECONSTRUCT time across batch sizes.

Feeds batches of 2⁰..2⁸ activations to the online engine and compares
the incremental UPDATE cost against RECONSTRUCT (full index rebuild at
the same weights).

Qualitative claims asserted:

* UPDATE grows (roughly) linearly with the batch size (the paper:
  "grows linearly with the activation number in the batch");
* RECONSTRUCT is roughly flat in the batch size (it always pays the full
  build);
* at batch size 1 UPDATE beats RECONSTRUCT by a large factor — the
  locality dividend of Lemma 11/12 (the paper reports up to six orders of
  magnitude at billion-edge scale; the factor grows with graph size).
"""

import pytest

from repro.bench.harness import update_vs_reconstruct
from repro.bench.reporting import format_table, save_result
from repro.core.anc import ANCParams
from repro.workloads.datasets import load_dataset

BATCH_SIZES = (1, 4, 16, 64, 256)


@pytest.fixture(scope="module")
def rows():
    params = ANCParams(rep=1, k=2, seed=0, rescale_every=10**9, eps=0.25, mu=2)
    data = load_dataset("DB")
    return update_vs_reconstruct(
        data, batch_sizes=BATCH_SIZES, params=params, seed=0
    )


def test_fig8_update_vs_reconstruct(benchmark, rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(
        format_table(
            rows,
            ["batch_size", "update_seconds", "reconstruct_seconds", "speedup"],
            title="Figure 8: UPDATE vs RECONSTRUCT on DB",
            float_fmt="{:.5f}",
        )
    )
    save_result("fig8_update_vs_reconstruct", {"rows": rows})

    by = {int(r["batch_size"]): r for r in rows}
    # Single-activation UPDATE crushes RECONSTRUCT.
    assert by[1]["speedup"] > 20, by[1]
    # UPDATE grows with batch size; RECONSTRUCT stays roughly flat.
    assert by[256]["update_seconds"] > by[1]["update_seconds"] * 4
    recon = [r["reconstruct_seconds"] for r in rows]
    assert max(recon) < 4 * min(recon), recon
    # The speedup declines as batches grow (amortization), as in Fig 8.
    assert by[1]["speedup"] > by[256]["speedup"]


def test_speedup_grows_with_graph_size(benchmark):
    """The headline is a scaling claim: bigger graph, bigger UPDATE win."""
    params = ANCParams(rep=0, k=2, seed=0, rescale_every=10**9, eps=0.25, mu=2)
    small = update_vs_reconstruct(
        load_dataset("CO"), batch_sizes=(1,), params=params, seed=0
    )[0]
    large = update_vs_reconstruct(
        load_dataset("DB"), batch_sizes=(1,), params=params, seed=0
    )[0]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert large["speedup"] > small["speedup"], (small, large)


def test_benchmark_single_update(benchmark, quick_params):
    """pytest-benchmark target: one weight update through the index."""
    from repro.index.pyramid import PyramidIndex

    data = load_dataset("LA")
    weights = {e: 1.0 for e in data.graph.edges()}
    index = PyramidIndex(data.graph, weights, k=2, seed=0)
    edges = list(data.graph.edges())
    state = {"i": 0}

    def one_update():
        e = edges[state["i"] % len(edges)]
        # A weight that is never exactly the current one, alternating
        # between decreases and increases.
        w = 0.5 + 0.07 * (state["i"] % 13)
        state["i"] += 1
        index.update_edge_weight(e[0], e[1], w)

    benchmark.pedantic(one_update, rounds=50, iterations=1)
    index.check_consistency()
