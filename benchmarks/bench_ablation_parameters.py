"""Table II parameter ablations — k, rep, ε, μ sensitivity.

The paper sweeps k ∈ {2,4,8,16}, rep ∈ {0..9}, ε ∈ {0.2..0.7} and
μ ∈ {2..9} (Table II), deferring the sensitivity plots to its technical
report.  This bench runs the sweeps on the CO stand-in and records
quality and cost for each setting, asserting the design-choice claims of
DESIGN.md:

* more pyramids (k) never hurt quality much — the voting stabilizes
  (paper: k=4 default suffices);
* quality at rep >= 5 is at least as good as rep = 0 (reinforcement
  propagates structure);
* μ shifts the role mix monotonically: larger μ, fewer cores.
"""


import pytest

from repro.bench.harness import anc_static_clusters
from repro.bench.reporting import format_table, save_result
from repro.core.anc import ANCF, ANCParams
from repro.core.similarity import NodeRole
from repro.evalm import score_clustering
from repro.workloads.datasets import load_dataset

DATASET = "CO"


@pytest.fixture(scope="module")
def data():
    return load_dataset(DATASET)


def quality_for(data, **overrides):
    base = dict(rep=2, k=4, seed=0, eps=0.25, mu=2)
    base.update(overrides)
    rep = base.pop("rep")
    params = ANCParams(rep=rep, **base)
    clusters = anc_static_clusters(data, rep, params)
    return score_clustering(clusters, data.truth())


def test_ablation_k(benchmark, data):
    rows = []

    def sweep():
        for k in (2, 4, 8, 16):
            scores = quality_for(data, k=k)
            rows.append({"k": k, **scores})

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Ablation: pyramids k on CO"))
    save_result("ablation_k", {"rows": rows})
    nmis = [r["nmi"] for r in rows]
    # Voting stabilizes: quality at k>=4 within a band of the best.
    assert max(nmis[1:]) >= 0.7 * max(nmis)


def test_ablation_rep(benchmark, data):
    rows = []

    def sweep():
        for rep in (0, 1, 3, 5, 7):
            scores = quality_for(data, rep=rep)
            rows.append({"rep": rep, **scores})

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Ablation: reinforcement repetitions on CO"))
    save_result("ablation_rep", {"rows": rows})
    by = {r["rep"]: r["nmi"] for r in rows}
    assert max(by[5], by[7]) >= by[0] - 0.05, by


def test_ablation_eps(benchmark, data):
    rows = []

    def sweep():
        for eps in (0.2, 0.3, 0.4, 0.5, 0.6, 0.7):
            scores = quality_for(data, eps=eps)
            rows.append({"eps": eps, **scores})

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Ablation: active-neighbor threshold ε on CO"))
    save_result("ablation_eps", {"rows": rows})
    assert all(0.0 <= r["nmi"] <= 1.0 for r in rows)


def test_ablation_mu_role_mix(benchmark, data):
    """Larger μ strictly shrinks the core set (and grows periphery)."""
    from repro.core.metric import SimilarityFunction

    rows = []

    def sweep():
        for mu in (2, 3, 4, 5, 6, 7, 8, 9):
            sf = SimilarityFunction(data.graph, rep=0, eps=0.25, mu=mu)
            counts = sf.sigma.role_counts()
            rows.append(
                {
                    "mu": mu,
                    "cores": counts[NodeRole.CORE],
                    "p_cores": counts[NodeRole.P_CORE],
                    "periphery": counts[NodeRole.PERIPHERY],
                }
            )

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Ablation: core threshold μ role mix on CO"))
    save_result("ablation_mu", {"rows": rows})
    cores = [r["cores"] for r in rows]
    periphery = [r["periphery"] for r in rows]
    assert cores == sorted(cores, reverse=True)
    assert periphery == sorted(periphery)


def test_ablation_support_threshold(benchmark, data):
    """θ sweep (design-choice ablation): higher support demands more
    pyramid agreement, so clusters fragment monotonically-ish."""
    rows = []

    def sweep():
        for support in (0.3, 0.5, 0.7, 0.9):
            params = ANCParams(rep=1, k=4, seed=0, eps=0.25, mu=2, support=support)
            engine = ANCF(data.graph, params)
            level = engine.queries.sqrt_n_level()
            clusters = engine.clusters(level)
            rows.append(
                {
                    "support": support,
                    "clusters": len(clusters),
                    "singletons": sum(1 for c in clusters if len(c) == 1),
                }
            )

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Ablation: voting support θ on CO"))
    save_result("ablation_support", {"rows": rows})
    counts = [r["clusters"] for r in rows]
    assert counts[-1] >= counts[0]
