"""Lint-speed benchmark — full-repo lint plus the incremental cache.

The static-analysis gate (docs/static-analysis.md) runs on every PR and
is meant to be cheap enough for a pre-commit hook: parse each file once,
run all per-file rules over the same tree, then the whole-program pass
over the stitched summaries.  This bench times a full lint of ``src``,
``tests``, ``benchmarks`` and ``examples``, then a cold-vs-warm
``--cache`` pair over ``src``, and asserts the repository itself is
clean (the same invariant ``tests/test_analysis.py`` pins) and that the
cache actually pays: warm under half of cold, cold < 10 s, warm < 5 s.
"""

import time
from pathlib import Path

from repro.analysis import (
    LintCache,
    all_rules,
    all_whole_program_rules,
    lint_paths,
    rules_digest,
)
from repro.bench.reporting import format_table, save_result

REPO_ROOT = Path(__file__).resolve().parents[1]
LINT_TARGETS = [
    REPO_ROOT / name for name in ("src", "tests", "benchmarks", "examples")
]
SRC = REPO_ROOT / "src"


def run_lint():
    start = time.perf_counter()
    result = lint_paths([p for p in LINT_TARGETS if p.exists()])
    elapsed = time.perf_counter() - start
    return result, elapsed


def timed_src_lint(cache):
    start = time.perf_counter()
    result = lint_paths([SRC], cache=cache)
    return result, time.perf_counter() - start


def test_full_repo_lint(benchmark, tmp_path):
    rows = []

    def sweep():
        result, elapsed = run_lint()
        rows.append(
            {
                "files": result.files,
                "rules": len(all_rules()) + len(all_whole_program_rules()),
                "findings": len(result.findings),
                "suppressed": sum(result.suppressed.values()),
                "total_s": elapsed,
                "ms_per_file": 1e3 * elapsed / max(result.files, 1),
            }
        )

    benchmark.pedantic(sweep, rounds=3, iterations=1)

    # Cold vs warm through the incremental cache, over src only (the CI
    # gate's target).  Cold populates the cache file; warm replays it.
    cache_path = tmp_path / "lint-cache.json"
    names = [r.name for r in all_rules()] + [
        r.name for r in all_whole_program_rules()
    ]
    cold_result, cold_s = timed_src_lint(LintCache(cache_path, rules_digest(names)))
    warm_cache = LintCache(cache_path, rules_digest(names))
    warm_result, warm_s = timed_src_lint(warm_cache)
    cache_rows = [
        {"run": "cold", "files": cold_result.files, "total_s": cold_s},
        {"run": "warm", "files": warm_result.files, "total_s": warm_s},
    ]

    print()
    print(format_table(rows, title="Full-repo lint (all rules)"))
    print(format_table(cache_rows, title="src lint: cold vs warm cache"))
    best = min(rows, key=lambda r: r["total_s"])
    save_result(
        "analysis_lint",
        {
            "rows": rows,
            "best": best,
            "cache": {"cold_s": cold_s, "warm_s": warm_s, "rows": cache_rows},
        },
    )
    # The repo lints clean, and a full run stays hook-friendly.
    assert all(r["findings"] == 0 for r in rows)
    assert best["total_s"] < 30.0
    # The warm cache hit every file and halved (at least) the lint time.
    assert warm_cache.stats()[1] == 0
    assert len(cold_result.findings) == len(warm_result.findings) == 0
    assert cold_s < 10.0
    assert warm_s < 5.0
    assert warm_s < 0.5 * cold_s
