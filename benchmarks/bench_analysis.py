"""Lint-speed benchmark — a full-repo ``repro-anc lint`` run, timed.

The static-analysis gate (docs/static-analysis.md) runs on every PR and
is meant to be cheap enough for a pre-commit hook: parse each file once,
run all eight rules over the same tree.  This bench times a full lint of
``src``, ``tests``, ``benchmarks`` and ``examples``, records per-file
cost, and asserts the repository itself is clean (the same invariant
``tests/test_analysis.py`` pins).
"""

import time
from pathlib import Path

from repro.analysis import all_rules, lint_paths
from repro.bench.reporting import format_table, save_result

REPO_ROOT = Path(__file__).resolve().parents[1]
LINT_TARGETS = [
    REPO_ROOT / name for name in ("src", "tests", "benchmarks", "examples")
]


def run_lint():
    start = time.perf_counter()
    result = lint_paths([p for p in LINT_TARGETS if p.exists()])
    elapsed = time.perf_counter() - start
    return result, elapsed


def test_full_repo_lint(benchmark):
    rows = []

    def sweep():
        result, elapsed = run_lint()
        rows.append(
            {
                "files": result.files,
                "rules": len(all_rules()),
                "findings": len(result.findings),
                "suppressed": sum(result.suppressed.values()),
                "total_s": elapsed,
                "ms_per_file": 1e3 * elapsed / max(result.files, 1),
            }
        )

    benchmark.pedantic(sweep, rounds=3, iterations=1)
    print()
    print(format_table(rows, title="Full-repo lint (all rules)"))
    best = min(rows, key=lambda r: r["total_s"])
    save_result("analysis_lint", {"rows": rows, "best": best})
    # The repo lints clean, and a full run stays hook-friendly.
    assert all(r["findings"] == 0 for r in rows)
    assert best["total_s"] < 30.0
