"""Cost-model profile — where the per-activation time actually goes.

The paper's cost model decomposes an online activation into (i) the
activeness/σ bookkeeping (O(1), Lemma 1), (ii) the trigger-edge
reinforcement (O(|N(u)|+|N(v)|), Lemma 5), and (iii) the bounded repair
of all k·log n partitions (Lemma 12).  This bench measures each stage in
isolation on the same stream and asserts the model's ordering:

* stage (i) is by far the cheapest (the global decay factor's whole
  point);
* stage (iii) — the index repair — is a major share of the total
  (comparable to the reinforcement at k=4 and linear in k), which is why
  Lemma 13's parallelism targets it and why k trades quality against
  update cost.
"""

import time

import pytest

from repro.bench.reporting import format_table, save_result
from repro.core.metric import SimilarityFunction
from repro.index.pyramid import PyramidIndex
from repro.workloads.datasets import load_dataset

ACTIVATIONS = 400


@pytest.fixture(scope="module")
def profile():
    data = load_dataset("CA")
    graph = data.graph
    stream = list(data.default_stream(timestamps=20, fraction=0.05))[:ACTIVATIONS]

    # Stage (i): activeness + strengths only.
    metric_a = SimilarityFunction(graph, rep=1, eps=0.25, mu=2)
    start = time.perf_counter()
    for act in stream:
        metric_a.on_activation_activeness_only(act)
    t_activeness = time.perf_counter() - start

    # Stage (i)+(ii): full metric update, no index attached.
    metric_b = SimilarityFunction(graph, rep=1, eps=0.25, mu=2)
    start = time.perf_counter()
    for act in stream:
        metric_b.on_activation(act)
    t_metric = time.perf_counter() - start

    # Stage (iii): replay the weight changes into an index alone.
    metric_c = SimilarityFunction(graph, rep=1, eps=0.25, mu=2)
    changes = []
    metric_c.add_weight_listener(lambda u, v, w: changes.append((u, v, w)))
    for act in stream:
        metric_c.on_activation(act)
    index = PyramidIndex(graph, SimilarityFunction(graph, rep=1, eps=0.25, mu=2).snapshot_weights(), k=4, seed=0)
    start = time.perf_counter()
    for u, v, w in changes:
        index.update_edge_weight(u, v, w)
    t_index = time.perf_counter() - start

    return {
        "activeness_ms": 1000 * t_activeness / len(stream),
        "reinforcement_ms": 1000 * (t_metric - t_activeness) / len(stream),
        "index_repair_ms": 1000 * t_index / len(stream),
        "activations": len(stream),
    }


def test_profile_breakdown(benchmark, profile):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        {"stage": "activeness + sigma (Lemma 1)", "ms_per_activation": profile["activeness_ms"]},
        {"stage": "local reinforcement (Lemma 5)", "ms_per_activation": profile["reinforcement_ms"]},
        {"stage": "index repair x k*log n (Lemma 12)", "ms_per_activation": profile["index_repair_ms"]},
    ]
    print()
    print(
        format_table(
            rows,
            ["stage", "ms_per_activation"],
            title="Per-activation cost breakdown (CA stand-in, k=4)",
            float_fmt="{:.4f}",
        )
    )
    # Named cost_model_breakdown: ``profile_breakdown.json`` is the
    # sampling profiler's document (benchmarks/bench_profile.py), which
    # ROADMAP item 1 consumes; this bench is the analytic cost model.
    save_result("cost_model_breakdown", profile)
    assert profile["activeness_ms"] < profile["index_repair_ms"]
    # The index repair is the dominant stage of the online path.
    assert profile["index_repair_ms"] > 0.5 * (
        profile["activeness_ms"] + profile["reinforcement_ms"]
    )


def test_index_cost_scales_with_k(benchmark):
    """The repair stage is linear in k (k independent pyramids)."""
    data = load_dataset("CA")
    metric = SimilarityFunction(data.graph, rep=1, eps=0.25, mu=2)
    changes = []
    metric.add_weight_listener(lambda u, v, w: changes.append((u, v, w)))
    for act in list(data.default_stream(timestamps=10, fraction=0.05))[:200]:
        metric.on_activation(act)
    base_weights = SimilarityFunction(data.graph, rep=1, eps=0.25, mu=2).snapshot_weights()

    def repair_time(k: int) -> float:
        index = PyramidIndex(data.graph, base_weights, k=k, seed=0)
        start = time.perf_counter()
        for u, v, w in changes:
            index.update_edge_weight(u, v, w)
        return time.perf_counter() - start

    t2 = min(repair_time(2) for _ in range(2))
    t8 = min(repair_time(8) for _ in range(2))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ratio = t8 / t2
    assert 2.0 < ratio < 10.0, ratio
