"""Sampled hot-path profile — the evidence ROADMAP item 1 consumes.

Unlike ``bench_profile_breakdown.py`` (which *times* the paper's three
analytic cost stages in isolation), this bench observes a live ANCO
engine from the outside: :class:`~repro.obs.profiler.SamplingProfiler`
walks the stacks at a fixed cadence while the engine replays a uniform
stream, and the span tracer's open-span stack attributes every sample
to the innermost engine phase (``activeness``, ``reinforce``,
``index_repair``, ``decay_tick``).  The resulting
``bench_results/profile_breakdown.json`` names the top phases and
functions by sampled wall-time — exactly the target list the
array-backed-internals refactor needs — plus collapsed stacks any
flamegraph tool renders directly.

The same document is obtainable from a live deployment via
``repro-anc serve --profile`` and the ``profile`` op; this bench is the
committed, reproducible snapshot.
"""

import pytest

from repro.bench.reporting import format_table, save_result
from repro.core.anc import ANCO, ANCParams
from repro.obs import MetricsRegistry, Observability, SamplingProfiler, Tracer
from repro.workloads.datasets import load_dataset
from repro.workloads.streams import uniform_stream

TIMESTAMPS = 20
FRACTION = 0.05
HZ = 997.0  # prime, and fast enough for a real budget on a short run
MIN_SAMPLES = 60
MAX_REPLAYS = 30


@pytest.fixture(scope="module")
def sampled_profile():
    dataset = load_dataset("CO")
    stream = uniform_stream(
        dataset.graph, timestamps=TIMESTAMPS, fraction=FRACTION, seed=0
    )
    batches = list(stream.batches_by_timestamp())
    tracer = Tracer(enabled=True, capacity=4096, sample=1.0)
    obs = Observability(registry=MetricsRegistry(), tracer=tracer)
    params = ANCParams(rep=2, k=2, seed=0, rescale_every=512, eps=0.25, mu=2)
    profiler = SamplingProfiler(HZ, tracer=tracer)
    replays = 0
    # Replay until the sample budget is real; shares converge fast.
    # Engine construction happens *outside* the profiling window — the
    # document should name online-path phases, not index build time.
    while profiler.samples < MIN_SAMPLES and replays < MAX_REPLAYS:
        engine = ANCO(dataset.graph, params, obs=obs)
        profiler.start()
        for _, batch in batches:
            engine.process_batch(batch)
        profiler.stop()
        replays += 1
    report = profiler.report()
    report["workload"] = {
        "dataset": "CO",
        "timestamps": TIMESTAMPS,
        "fraction": FRACTION,
        "replays": replays,
        "activations_per_replay": len(stream),
    }
    return report


def test_profile_breakdown_committed(benchmark, sampled_profile):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    phases = sampled_profile["phases"]
    rows = [
        {"phase": name, **stats} for name, stats in phases.items()
    ]
    print()
    print(
        format_table(
            rows,
            ["phase", "samples", "est_s", "share"],
            title=f"Sampled engine phases (ANCO, hz={HZ:g})",
            float_fmt="{:.4f}",
        )
    )
    save_result("profile_breakdown", sampled_profile)
    assert sampled_profile["samples"] > 0
    # At least one *engine* phase was attributed — the span stack worked.
    engine_phases = {name for name in phases if name != "<no-span>"}
    assert engine_phases, phases
    assert sampled_profile["top_functions"], "no stacks sampled"
    assert sampled_profile["collapsed"], "no collapsed output"
