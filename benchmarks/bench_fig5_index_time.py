"""Figure 5 — index construction time vs number of pyramids k.

Builds the pyramid index with k ∈ {2, 4, 8, 16} on a ladder of datasets
and reports the build time.

Qualitative claims asserted (the paper's):

* index time grows (roughly) linearly with k — each pyramid is an
  independent suite of Voronoi partitions;
* denser graphs of similar vertex count take longer (the paper: OK is
  3.5× LJ despite similar n, because OK is denser);
* index time grows with graph size across the dataset ladder.
"""

import time

import pytest

from repro.bench.harness import timed
from repro.bench.reporting import format_table, save_result
from repro.core.metric import SimilarityFunction
from repro.index.pyramid import PyramidIndex
from repro.workloads.datasets import load_dataset

DATASETS = ("CO", "CA", "LA", "CM")
K_VALUES = (2, 4, 8, 16)


@pytest.fixture(scope="module")
def rows():
    out = []
    # Warm-up build so the first timed measurement does not absorb
    # allocator / bytecode warm-up costs (it skewed k=2 on the smallest
    # dataset by >2x).
    warm = load_dataset(DATASETS[0])
    PyramidIndex(warm.graph, {e: 1.0 for e in warm.graph.edges()}, k=2, seed=0)
    for name in DATASETS:
        data = load_dataset(name)
        sf = SimilarityFunction(data.graph, rep=1, eps=0.25, mu=2)
        weights = sf.snapshot_weights()
        for k in K_VALUES:
            seconds = min(
                timed(lambda: PyramidIndex(data.graph, weights, k=k, seed=0))[0]
                for _ in range(2)
            )
            index = PyramidIndex(data.graph, weights, k=k, seed=0)
            out.append(
                {
                    "dataset": name,
                    "n": data.graph.n,
                    "m": data.graph.m,
                    "k": k,
                    "seconds": seconds,
                    "levels": index.num_levels,
                }
            )
    return out


def test_fig5_index_time(benchmark, rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(
        format_table(
            rows,
            ["dataset", "n", "m", "k", "levels", "seconds"],
            title="Figure 5: Index Time vs pyramids k",
        )
    )
    save_result("fig5_index_time", {"rows": rows})

    by = {(r["dataset"], r["k"]): r["seconds"] for r in rows}
    for name in DATASETS:
        # Roughly linear in k: t(16) within [4x, 16x] of t(2).
        ratio = by[(name, 16)] / by[(name, 2)]
        assert 3.0 < ratio < 24.0, (name, ratio)
    # Larger datasets take longer at fixed k.
    assert by[("CM", 4)] > by[("CO", 4)]


def test_density_drives_cost(benchmark):
    """OK-vs-LJ claim at stand-in scale: for similar n, the denser graph
    indexes slower."""
    from repro.graph.generators import planted_partition

    sparse, _ = planted_partition(600, 30, p_in=0.15, p_out=0.004, seed=1)
    dense, _ = planted_partition(600, 30, p_in=0.55, p_out=0.012, seed=1)
    assert dense.m > 2 * sparse.m

    def build(graph):
        weights = {e: 1.0 for e in graph.edges()}
        return PyramidIndex(graph, weights, k=2, seed=0)

    start = time.perf_counter()
    build(sparse)
    t_sparse = time.perf_counter() - start
    start = time.perf_counter()
    build(dense)
    t_dense = time.perf_counter() - start
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert t_dense > t_sparse, (t_dense, t_sparse)


def test_benchmark_index_build_k4(benchmark):
    """pytest-benchmark target: one k=4 index build on CA."""
    data = load_dataset("CA")
    weights = {e: 1.0 for e in data.graph.edges()}
    index = benchmark.pedantic(
        lambda: PyramidIndex(data.graph, weights, k=4, seed=0),
        rounds=3,
        iterations=1,
    )
    assert index.num_levels >= 2
