"""Shard scaling — aggregate ingest throughput at 1, 2 and 4 shards.

Drives the same activation stream through real ``repro.shard``
deployments (spawned worker processes, live TCP) at increasing shard
counts and records how ingest time scales.  The results land in
``bench_results/shard_scaling.json``.

**Methodology / honesty note.**  This container pins the whole suite to
a small number of CPU cores (often one), so N worker processes cannot
physically run N× faster *here*.  What sharding buys is that each
worker only has to chew through its own sub-stream — so the number a
multi-core deployment delivers is the **critical path**: the wall-clock
of the slowest shard, with every other shard finishing in parallel
under it.  Each shard's sub-stream is therefore driven and timed
*separately* (serially, so the shards never compete for this box's
cores), and the headline ``speedup_vs_1shard`` compares the 1-shard
ingest time against ``max_i(t_shard_i)``.  The measured serial
wall-clock (``total_ingest_s``, what this box actually spent) is
recorded right next to it.  The workload is built so every activation
is intra-shard (``cross_edges == 0``); routing overhead is measured
separately through the router path and reported, not hidden.

Qualitative claims asserted:

* the shard map splits the workload evenly enough that the critical
  path shrinks ≥ 2.5× from 1 to 4 shards;
* every acknowledged activation is applied on its shard (sync barrier);
* scatter-gather answers over the sharded ingest match the 1-shard
  deployment's cluster signature (same merged clustering).
"""

from __future__ import annotations

import os
import time
from typing import Dict, List

from repro.bench.reporting import format_table, save_result
from repro.core.activation import Activation
from repro.faults.chaos import SHARD_PARAMS, build_shard_workload
from repro.service.client import ServiceClient
from repro.shard import ShardDeployment, ShardMap

SHARD_COUNTS = (1, 2, 4)
#: One packable block per shard at the widest deployment.
BLOCKS = 4
NODES_PER_BLOCK = 24
TIMESTAMPS = 300
CHUNK = 100
#: Tight micro-batch flush bound so the timer floor (default 50 ms per
#: lull) does not swamp the small per-shard streams.
MAX_LATENCY = 0.005


def _cpu_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _normalize(clusters: List[List[object]]) -> List[List[int]]:
    return sorted(sorted(int(v) for v in c) for c in clusters)


def _drive_shard(
    host: str, port: int, acts: List[Activation], key_prefix: str
) -> Dict[str, float]:
    """Ingest one shard's sub-stream over TCP; return timing facts."""
    items = [[a.u, a.v, a.t] for a in acts]
    with ServiceClient(host, port, timeout=120) as client:
        started = time.perf_counter()
        for i in range(0, len(items), CHUNK):
            client.ingest_batch(items[i : i + CHUNK], key=f"{key_prefix}-b{i}")
        applied = client.sync()
        elapsed = time.perf_counter() - started
    assert applied == len(items), (applied, len(items))
    return {"acts": float(len(items)), "ingest_s": elapsed}


def test_shard_scaling(tmp_path):
    graph, acts = build_shard_workload(
        0, blocks=BLOCKS, nodes_per_block=NODES_PER_BLOCK, timestamps=TIMESTAMPS
    )
    rows = []
    results: Dict[int, Dict[str, object]] = {}
    signatures: Dict[int, List[List[int]]] = {}

    for shards in SHARD_COUNTS:
        smap = ShardMap.build(graph, shards, seed=0)
        assert smap.cross_edges == (), "workload must stay intra-shard"
        shard_acts: Dict[int, List[Activation]] = {s: [] for s in range(shards)}
        for act in acts:
            shard_acts[smap.shard_of_edge(act.u, act.v)].append(act)

        deployment = ShardDeployment(
            graph,
            shards=shards,
            seed=0,
            engine="anco",
            params=SHARD_PARAMS,
            data_dir=str(tmp_path / f"{shards}shard"),
            max_latency=MAX_LATENCY,
        )
        with deployment:
            endpoints = deployment.endpoints()
            per_shard = {
                s: _drive_shard(
                    *endpoints[s], shard_acts[s], key_prefix=f"n{shards}-s{s}"
                )
                for s in range(shards)
            }
            # The merged answer (via the per-worker clusters + the pure
            # merge) pins cross-deployment agreement without standing up
            # a router per cell.
            from repro.shard import merge_clusters

            payloads = {}
            for s in range(shards):
                with ServiceClient(*endpoints[s], timeout=120) as client:
                    payloads[s] = client.request("clusters", min_size=1)
            home = {
                str(label): smap.shard_of(v)
                for v, label in enumerate(range(graph.n))
            }
            merged = merge_clusters(payloads, home)
            signatures[shards] = _normalize(merged["clusters"])

        times = [per_shard[s]["ingest_s"] for s in range(shards)]
        critical_path = max(times)
        results[shards] = {
            "per_shard_ingest_s": times,
            "per_shard_acts": [per_shard[s]["acts"] for s in range(shards)],
            "critical_path_s": critical_path,
            "total_ingest_s": sum(times),
            "aggregate_ingest_per_s": len(acts) / critical_path,
        }
        rows.append(
            {
                "shards": shards,
                "acts": len(acts),
                "critical_path_s": critical_path,
                "serial_total_s": sum(times),
                "agg_ingest_per_s": len(acts) / critical_path,
            }
        )

    t1 = float(results[1]["critical_path_s"])
    for shards in SHARD_COUNTS:
        results[shards]["speedup_vs_1shard"] = t1 / float(
            results[shards]["critical_path_s"]
        )
    for row in rows:
        row["speedup"] = float(results[row["shards"]]["speedup_vs_1shard"])

    print()
    print(
        format_table(
            rows,
            title=f"Shard scaling ({graph.n}-node graph, {len(acts)} activations)",
            float_fmt="{:.3f}",
        )
    )

    # Identical merged clustering at every shard count — scatter-gather
    # is exact on an intra-shard stream regardless of the partition.
    assert signatures[2] == signatures[1]
    assert signatures[4] == signatures[1]

    speedup4 = float(results[4]["speedup_vs_1shard"])
    assert speedup4 >= 2.5, (
        f"4-shard critical path shrank only {speedup4:.2f}x vs 1 shard"
    )

    save_result(
        "shard_scaling",
        {
            "graph": {"n": graph.n, "m": graph.m},
            "activations": len(acts),
            "shard_counts": list(SHARD_COUNTS),
            "results": {str(s): results[s] for s in SHARD_COUNTS},
            "speedup_vs_1shard_at_4": speedup4,
            "cpu_cores": _cpu_cores(),
            "methodology": (
                "per-shard sub-streams driven serially over live TCP against "
                "spawned worker processes; headline speedup is the critical "
                "path (1-shard ingest time / slowest shard's ingest time), "
                "i.e. the aggregate an N-core deployment sustains. "
                "total_ingest_s is the serial wall-clock this "
                f"{_cpu_cores()}-core box actually spent."
            ),
        },
    )


def test_router_overhead(tmp_path):
    """Router-path ingest vs direct-to-worker ingest at 2 shards."""
    from repro.faults.chaos import RouterThread

    graph, acts = build_shard_workload(
        0, blocks=2, nodes_per_block=NODES_PER_BLOCK, timestamps=TIMESTAMPS
    )
    items = [[a.u, a.v, a.t] for a in acts]
    deployment = ShardDeployment(
        graph,
        shards=2,
        seed=0,
        engine="anco",
        params=SHARD_PARAMS,
        data_dir=str(tmp_path / "routed"),
        max_latency=MAX_LATENCY,
    )
    with RouterThread(deployment) as router:
        assert router.port is not None
        with ServiceClient("127.0.0.1", router.port, timeout=120) as client:
            started = time.perf_counter()
            for i in range(0, len(items), CHUNK):
                client.request(
                    "ingest_batch", items=items[i : i + CHUNK], key=f"rt-b{i}"
                )
            applied = client.sync()
            routed_s = time.perf_counter() - started
    assert applied == len(items)

    smap = ShardMap.build(graph, 2, seed=0)
    shard_acts: Dict[int, List[Activation]] = {0: [], 1: []}
    for act in acts:
        shard_acts[smap.shard_of_edge(act.u, act.v)].append(act)
    deployment = ShardDeployment(
        graph,
        shards=2,
        seed=0,
        engine="anco",
        params=SHARD_PARAMS,
        data_dir=str(tmp_path / "direct"),
        max_latency=MAX_LATENCY,
    )
    with deployment:
        endpoints = deployment.endpoints()
        direct_s = sum(
            _drive_shard(*endpoints[s], shard_acts[s], key_prefix=f"d-s{s}")[
                "ingest_s"
            ]
            for s in range(2)
        )

    row = {
        "acts": len(items),
        "routed_s": routed_s,
        "direct_serial_s": direct_s,
        "overhead_x": routed_s / direct_s if direct_s > 0 else float("inf"),
    }
    print()
    print(format_table([row], title="Router overhead (2 shards)", float_fmt="{:.3f}"))
    save_result("shard_router_overhead", row)
