"""Scalability laws — Lemma 7 (index cost) and Lemma 12 (update locality).

Two claims of the paper are explicitly asymptotic, so this bench measures
them across a size ladder rather than on one graph:

* **Lemma 7** — index time is ``O(n log² n + m log n)`` and size
  ``O(n log² n)``: on a ladder of planted graphs with fixed average
  degree, time and memory per node must grow no faster than
  polylogarithmically.
* **Lemma 12** — per-update cost is ``O(Σ_{x∈U'} deg(x))``, the affected
  set only: as the graph grows, the average number of touched nodes per
  random weight update must grow (much) more slowly than ``n`` — the
  locality that produces the UPDATE-vs-RECONSTRUCT gap of Fig 8.
"""

import random
import statistics
import time

import pytest

from repro.bench.reporting import format_table, save_result
from repro.graph.generators import planted_partition
from repro.index.pyramid import PyramidIndex

LADDER = (125, 250, 500, 1000, 2000)
AVG_DEGREE = 8.0


def _graph_of(n: int):
    communities = max(2, n // 20)
    size = n / communities
    p_in = min(0.9, 0.75 * AVG_DEGREE / max(1.0, size - 1))
    p_out = 0.25 * AVG_DEGREE / max(1.0, n - size)
    graph, _ = planted_partition(
        n, communities, p_in=p_in, p_out=p_out, seed=n, min_size=4
    )
    return graph


@pytest.fixture(scope="module")
def ladder_rows():
    rows = []
    # Warm-up so the smallest point is not inflated.
    g0 = _graph_of(LADDER[0])
    PyramidIndex(g0, {e: 1.0 for e in g0.edges()}, k=2, seed=0)
    for n in LADDER:
        graph = _graph_of(n)
        weights = {e: 1.0 for e in graph.edges()}
        start = time.perf_counter()
        index = PyramidIndex(graph, weights, k=2, seed=0)
        build_s = time.perf_counter() - start

        rng = random.Random(1)
        edges = list(graph.edges())
        touched = []
        update_s = 0.0
        for _ in range(30):
            e = rng.choice(edges)
            w = rng.choice([0.3, 0.6, 1.7, 3.0])
            start = time.perf_counter()
            touched.append(index.update_edge_weight(*e, w))
            update_s += time.perf_counter() - start
        rows.append(
            {
                "n": n,
                "m": graph.m,
                "build_seconds": build_s,
                "bytes_per_node": index.memory_cost() / n,
                "build_us_per_node": 1e6 * build_s / n,
                "mean_touched": statistics.mean(touched),
                "update_ms": 1000 * update_s / 30,
            }
        )
    return rows


def test_lemma7_index_cost_scaling(benchmark, ladder_rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ladder_rows,
            ["n", "m", "build_seconds", "build_us_per_node", "bytes_per_node",
             "mean_touched", "update_ms"],
            title="Scalability ladder (k=2, avg degree ~8)",
            float_fmt="{:.3f}",
        )
    )
    save_result("scalability_ladder", {"rows": ladder_rows})

    first, last = ladder_rows[0], ladder_rows[-1]
    n_ratio = last["n"] / first["n"]  # 16x
    # Near-linear build: per-node time grows at most polylog — allow one
    # decade of slack over the 16x ladder.
    assert last["build_us_per_node"] < 10 * first["build_us_per_node"], (
        first, last,
    )
    # Memory per node grows only with log^2(n): bounded by a small factor.
    assert last["bytes_per_node"] < 4 * first["bytes_per_node"]


def test_lemma12_update_locality(benchmark, ladder_rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    first, last = ladder_rows[0], ladder_rows[-1]
    n_ratio = last["n"] / first["n"]
    touched_ratio = max(1.0, last["mean_touched"]) / max(1.0, first["mean_touched"])
    # The affected set grows far sublinearly in n.
    assert touched_ratio < n_ratio / 2, (touched_ratio, n_ratio)
    # And the per-update wall time must not scale like the graph either.
    time_ratio = last["update_ms"] / first["update_ms"]
    assert time_ratio < n_ratio, (time_ratio, n_ratio)
