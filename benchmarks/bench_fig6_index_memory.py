"""Figure 6 — index memory cost vs number of pyramids k.

Reports the nominal index payload (modeled flat-array bytes, excluding
the graph itself, as the paper excludes it) for k ∈ {4, 8, 16} across the
dataset ladder.

Qualitative claims asserted:

* memory grows linearly with k;
* memory is driven by the vertex count (Lemma 7's O(n log² n)): datasets
  with more nodes cost more at fixed k;
* the dataset-to-index size ratio stays within a constant band across
  datasets (the paper reports an average ratio of ~0.53 on its graphs).
"""

import pytest

from repro.bench.reporting import format_table, save_result
from repro.index.pyramid import PyramidIndex
from repro.workloads.datasets import load_dataset

DATASETS = ("CO", "CA", "LA", "CM", "DB")
K_VALUES = (4, 8, 16)


@pytest.fixture(scope="module")
def rows():
    out = []
    for name in DATASETS:
        data = load_dataset(name)
        weights = {e: 1.0 for e in data.graph.edges()}
        # Model the dataset's own size: 8 bytes per edge endpoint pair.
        dataset_bytes = 8 * data.graph.m
        for k in K_VALUES:
            index = PyramidIndex(data.graph, weights, k=k, seed=0)
            out.append(
                {
                    "dataset": name,
                    "n": data.graph.n,
                    "m": data.graph.m,
                    "k": k,
                    "index_bytes": index.memory_cost(),
                    "dataset_bytes": dataset_bytes,
                }
            )
    return out


def test_fig6_index_memory(benchmark, rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(
        format_table(
            rows,
            ["dataset", "n", "m", "k", "index_bytes", "dataset_bytes"],
            title="Figure 6: Index Memory Cost vs pyramids k",
        )
    )
    save_result("fig6_index_memory", {"rows": rows})

    by = {(r["dataset"], r["k"]): r["index_bytes"] for r in rows}
    for name in DATASETS:
        # Linear in k (the shared weight table is the only sublinear part).
        ratio = by[(name, 16)] / by[(name, 4)]
        assert 2.5 < ratio < 4.5, (name, ratio)
    # More vertices => more memory at fixed k.
    sizes = [(load_dataset(n).graph.n, by[(n, 4)]) for n in DATASETS]
    sizes.sort()
    memory_in_n_order = [b for _, b in sizes]
    assert memory_in_n_order == sorted(memory_in_n_order)


def test_dataset_to_index_ratio_band(benchmark, rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ratios = [
        r["dataset_bytes"] / r["index_bytes"] for r in rows if r["k"] == 4
    ]
    # A constant band: no dataset is wildly off the pack (within 10x of
    # the mean), mirroring the paper's stable ~0.53 average ratio.
    mean = sum(ratios) / len(ratios)
    for ratio in ratios:
        assert mean / 10 < ratio < mean * 10


def test_benchmark_memory_accounting(benchmark):
    data = load_dataset("CA")
    weights = {e: 1.0 for e in data.graph.edges()}
    index = PyramidIndex(data.graph, weights, k=4, seed=0)
    total = benchmark(index.memory_cost)
    assert total > 0
