"""Table III — clustering quality on static networks.

Reproduces the Table III procedure at stand-in scale: SCAN, ATTR, LOUV,
LWEP and ANCF with rep ∈ {1, 5, 9} on the ground-truth datasets
(LA, DB, AM, YT stand-ins — we run the two smaller ones to keep pure
Python fast; the other two are covered by the smoke bench below), scoring
Modularity, Conductance, NMI, Purity and F1 after removing noise clusters
(< 3 nodes).

Qualitative claims asserted (the paper's shape):

* increasing ``rep`` does not hurt ANCF quality (paper: monotone gains);
* LOUV wins Modularity (it optimizes it directly);
* LOUV reports (far) fewer clusters than ground truth;
* ANCF is competitive on ground-truth measures (within the baseline
  envelope rather than dominated).
"""

import pytest

from repro.bench.harness import static_quality_rows
from repro.bench.reporting import format_table, save_result

DATASETS = ("LA", "CA")  # LA is a paper Table III set; CA keeps runtime low.
COLUMNS = [
    "dataset",
    "method",
    "modularity",
    "conductance",
    "nmi",
    "purity",
    "f1",
    "clusters",
    "seconds",
]


@pytest.fixture(scope="module")
def rows():
    return static_quality_rows(DATASETS, reps=(1, 5, 9), attractor_iterations=20)


def test_table3_static_quality(benchmark, rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(format_table(rows, COLUMNS, title="Table III: Performance on Static Networks"))
    save_result("table3_static_quality", {"rows": rows})

    by = {(r["dataset"], r["method"]): r for r in rows}
    for dataset in DATASETS:
        # rep improves (or at least does not hurt) ANCF's NMI.
        assert by[(dataset, "ANCF9")]["nmi"] >= by[(dataset, "ANCF1")]["nmi"] - 0.05
        # Louvain wins modularity (it optimizes it directly).
        louv_q = by[(dataset, "LOUV")]["modularity"]
        for method in ("SCAN", "LWEP", "ANCF9"):
            assert louv_q >= by[(dataset, method)]["modularity"] - 0.05
        # ANCF's best NMI is within the baseline envelope.
        best_baseline_nmi = max(
            by[(dataset, m)]["nmi"] for m in ("SCAN", "ATTR", "LOUV", "LWEP")
        )
        assert by[(dataset, "ANCF9")]["nmi"] >= 0.5 * best_baseline_nmi


def test_louvain_finds_few_clusters(benchmark, rows):
    """The paper's LOUV critique: far fewer clusters than ground truth."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.workloads.datasets import load_dataset

    by = {(r["dataset"], r["method"]): r for r in rows}
    for dataset in DATASETS:
        truth_count = len(load_dataset(dataset).truth_clusters())
        assert by[(dataset, "LOUV")]["clusters"] <= truth_count


def test_benchmark_ancf_static_build(benchmark):
    """pytest-benchmark target: one ANCF static clustering (rep=1)."""
    from repro.bench.harness import anc_static_clusters
    from repro.workloads.datasets import load_dataset

    data = load_dataset("CA")
    clusters = benchmark.pedantic(
        lambda: anc_static_clusters(data, rep=1), rounds=1, iterations=2
    )
    assert sum(len(c) for c in clusters) == data.graph.n
