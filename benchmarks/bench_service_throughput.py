"""Service benchmark — throughput and latency of the streaming server.

Unlike the paper-figure benches, this one measures the *serving layer*
added on top of the engines (``repro.service``): a real ``repro-anc
serve`` subprocess is driven over TCP with a mixed ingest/query workload
and we record

* ingest throughput (acknowledged activations per second, i.e. WAL
  append + backpressured enqueue),
* end-to-end query latency percentiles (client-measured ``clusters`` and
  ``local`` round trips racing the ingest stream),
* apply lag (how long ``sync`` takes to drain the tail after the last
  ingest).

The results land in ``bench_results/service_throughput.json``.  A second
target SIGKILLs the server mid-stream and asserts the restarted process
serves the *identical* cluster output at the same granularity — the
service's durability contract, exercised at benchmark scale.

Qualitative claims asserted:

* every acknowledged activation is applied (ingested == applied after
  one sync barrier);
* micro-batching holds query latency bounded while ingest runs (p99
  below a generous wall);
* kill -9 + restart reproduces ``clusters()`` byte-for-byte;
* the :mod:`repro.faults` hook points are dark by default — with the
  package imported but every plan disarmed, the durable-ingest hot path
  stays within 3 % of a hookless baseline (the disarmed hook is one
  attribute check; ``bench_results/service_fault_overhead.json``).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.bench.reporting import format_table, save_result
from repro.core.activation import Activation
from repro.faults import FaultPlan, FaultSpec
from repro.graph.generators import planted_partition
from repro.service import ServiceClient
from repro.service.snapshots import WriteAheadLog
from repro.workloads.streams import community_biased_stream

SRC = Path(__file__).resolve().parent.parent / "src"

NODES, COMMUNITIES = 150, 6
TIMESTAMPS = 40
INGEST_CHUNK = 25
QUERY_EVERY = 4  # issue one clusters + one local query per N chunks


def _percentile(values, p):
    data = sorted(values)
    return data[max(0, min(len(data) - 1, int(round(p / 100 * (len(data) - 1)))))]


@pytest.fixture(scope="module")
def workload():
    graph, labels = planted_partition(
        NODES, COMMUNITIES, p_in=0.4, p_out=0.01, seed=5
    )
    stream = community_biased_stream(
        graph, labels, timestamps=TIMESTAMPS, fraction=0.05, seed=2
    )
    return graph, [[a.u, a.v, a.t] for a in stream]


@pytest.fixture()
def server_factory(workload, tmp_path):
    """Start ``repro-anc serve`` subprocesses over the workload graph."""
    graph, _ = workload
    edgelist = tmp_path / "graph.txt"
    edgelist.write_text("".join(f"{u} {v}\n" for u, v in graph.edges()))
    procs = []

    def start(data_dir):
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve", str(edgelist),
                "--port", "0", "--data-dir", str(data_dir),
                "--rep", "1", "--pyramids", "2",
                "--batch-size", "64", "--max-latency", "0.02",
                "--checkpoint-every", "500", "--metrics-interval", "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=dict(os.environ, PYTHONPATH=str(SRC)),
            text=True,
        )
        procs.append(proc)
        announce = proc.stdout.readline().split()
        assert announce and announce[0] == "SERVING", announce
        return proc, announce[1], int(announce[2])

    yield start
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def test_service_throughput(benchmark, workload, server_factory, tmp_path):
    graph, items = workload
    proc, host, port = server_factory(tmp_path / "data")
    query_latencies = []
    with ServiceClient(host, port) as client:
        level = client.clusters_info()["level"]

        ingest_started = time.perf_counter()
        for i in range(0, len(items), INGEST_CHUNK):
            client.ingest_batch(items[i : i + INGEST_CHUNK])
            if (i // INGEST_CHUNK) % QUERY_EVERY == 0:
                node = items[i][0]
                for op in (
                    lambda: client.clusters(level),
                    lambda: client.local(node, level),
                ):
                    started = time.perf_counter()
                    op()
                    query_latencies.append(time.perf_counter() - started)
        ingest_seconds = time.perf_counter() - ingest_started

        sync_started = time.perf_counter()
        applied = client.sync()
        sync_seconds = time.perf_counter() - sync_started
        metrics = client.metrics()
        stats = client.stats()

        # pytest-benchmark target: one live local-cluster round trip.
        benchmark.pedantic(
            lambda: client.local(items[0][0], level), rounds=20, iterations=1
        )
        client.shutdown()
    assert proc.wait(timeout=30) == 0

    throughput = len(items) / ingest_seconds
    row = {
        "activations": len(items),
        "ingest_s": ingest_seconds,
        "ingest_per_s": throughput,
        "sync_s": sync_seconds,
        "queries": len(query_latencies),
        "query_p50_ms": _percentile(query_latencies, 50) * 1e3,
        "query_p99_ms": _percentile(query_latencies, 99) * 1e3,
    }
    print()
    print(
        format_table(
            [row],
            title=f"Service throughput ({NODES}-node graph, live TCP server)",
            float_fmt="{:.2f}",
        )
    )
    save_result(
        "service_throughput",
        {
            "graph": {"n": graph.n, "m": graph.m},
            "workload": row,
            "server_metrics": {
                "counters": metrics["counters"],
                "histograms": metrics["histograms"],
            },
        },
    )

    # Durable ingest keeps up and nothing acknowledged is lost.
    assert applied == len(items)
    assert stats["applied"] == len(items)
    assert throughput > 0
    # Micro-batching bounds query latency while ingest is running.  The
    # wall is generous (pure-Python engine) but a regression to per-
    # activation index rebuilds or a blocked writer would blow through it.
    assert row["query_p99_ms"] < 5000
    assert metrics["counters"]["batches_applied"] >= 1
    assert metrics["histograms"]["batch_flush_seconds"]["count"] >= 1


def test_fault_hooks_dark_overhead(benchmark, tmp_path):
    """The resilience-layer acceptance gate (docs/faults.md): with
    :mod:`repro.faults` importable but disarmed — the state every
    production process runs in — the hook points must be dark.

    The hottest hook site is ``wal.append`` (one hit per acknowledged
    activation), so the measured unit is the writer loop exactly as the
    engine host runs it — durable append, then engine apply — against a
    *hookless* baseline: a WAL subclass whose ``append`` does
    byte-identical work minus the ``faults`` check, i.e. the code as it
    was before this layer existed.  Best-of-``REPEATS`` minima are
    compared; the shipped (disarmed) path must stay within 3 %."""
    from repro.core.anc import ANCO, ANCParams
    from repro.service.snapshots import _wal_record

    REPEATS, ACTIVATIONS = 5, 1500
    graph, _ = planted_partition(60, 4, p_in=0.5, p_out=0.02, seed=11)
    edges = list(graph.edges())
    acts = [
        Activation(*edges[i % len(edges)], float(1 + i // len(edges)))
        for i in range(ACTIVATIONS)
    ]

    class HooklessWal(WriteAheadLog):
        """`append` exactly as shipped, with the hook check elided."""

        def append(self, act):
            seq = self.entries
            record = _wal_record(seq, act)
            self._fh.write(record)
            self._fh.flush()
            self.entries = seq + 1
            return seq

    # repro.faults is imported (module top) — the criterion's "importable
    # but disarmed" state — and the plan type is constructible.
    assert FaultPlan([FaultSpec("wal.append", "fsync-loss", at_count=1)]).armed

    best = {}
    for mode, cls in (("hookless", HooklessWal), ("disarmed", WriteAheadLog)):
        for run in range(REPEATS):
            wal = cls(tmp_path / f"{mode}-{run}.wal")
            engine = ANCO(graph, ANCParams(rep=1, k=2, seed=0, rescale_every=128))
            started = time.perf_counter()
            for act in acts:
                wal.append(act)
                engine.process(act)
            elapsed = time.perf_counter() - started
            wal.close()
            best[mode] = min(best.get(mode, float("inf")), elapsed)

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        {
            "mode": mode,
            "activations": ACTIVATIONS,
            "best_seconds": seconds,
            "acts_per_s": ACTIVATIONS / seconds,
        }
        for mode, seconds in best.items()
    ]
    print()
    print(
        format_table(
            rows,
            title="Fault-hook overhead on wal.append (disarmed vs hookless)",
            float_fmt="{:.6f}",
        )
    )
    save_result(
        "service_fault_overhead",
        {"activations": ACTIVATIONS, "repeats": REPEATS, "rows": rows},
    )
    assert best["disarmed"] <= best["hookless"] * 1.03, best


def test_kill9_mid_stream_recovers_identically(
    benchmark, workload, server_factory, tmp_path
):
    """The durability contract at bench scale: SIGKILL the server while
    it is mid-stream, restart on the same data dir, and the recovered
    process serves the same clusters at the same granularity."""
    graph, items = workload
    data_dir = tmp_path / "data"
    cut = (2 * len(items)) // 3

    proc, host, port = server_factory(data_dir)
    with ServiceClient(host, port) as client:
        client.ingest_batch(items[:cut])  # auto-checkpoints at 500
        client.sync()
        before = client.clusters_info()
        level = before["level"]
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=10)

    def restart_and_compare():
        proc, host, port = server_factory(data_dir)
        with ServiceClient(host, port) as client:
            after = client.clusters_info(level=level)
            client.shutdown()
        assert proc.wait(timeout=30) == 0
        return after

    after = benchmark.pedantic(restart_and_compare, rounds=1, iterations=1)
    assert after["applied"] == before["applied"] == cut
    assert after["t"] == before["t"]
    assert after["clusters"] == before["clusters"]

    # The recovered server is live: it absorbs the rest of the stream.
    proc, host, port = server_factory(data_dir)
    with ServiceClient(host, port) as client:
        client.ingest_batch(items[cut:])
        assert client.sync() == len(items)
        client.shutdown()
    assert proc.wait(timeout=30) == 0
