"""Service benchmark — throughput and latency of the streaming server.

Unlike the paper-figure benches, this one measures the *serving layer*
added on top of the engines (``repro.service``): a real ``repro-anc
serve`` subprocess is driven over TCP with a mixed ingest/query workload
and we record

* ingest throughput (acknowledged activations per second, i.e. WAL
  append + backpressured enqueue),
* end-to-end query latency percentiles (client-measured ``clusters`` and
  ``local`` round trips racing the ingest stream),
* apply lag (how long ``sync`` takes to drain the tail after the last
  ingest).

The results land in ``bench_results/service_throughput.json``.  A second
target SIGKILLs the server mid-stream and asserts the restarted process
serves the *identical* cluster output at the same granularity — the
service's durability contract, exercised at benchmark scale.

Qualitative claims asserted:

* every acknowledged activation is applied (ingested == applied after
  one sync barrier);
* micro-batching holds query latency bounded while ingest runs (p99
  below a generous wall);
* kill -9 + restart reproduces ``clusters()`` byte-for-byte.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.bench.reporting import format_table, save_result
from repro.graph.generators import planted_partition
from repro.service import ServiceClient
from repro.workloads.streams import community_biased_stream

SRC = Path(__file__).resolve().parent.parent / "src"

NODES, COMMUNITIES = 150, 6
TIMESTAMPS = 40
INGEST_CHUNK = 25
QUERY_EVERY = 4  # issue one clusters + one local query per N chunks


def _percentile(values, p):
    data = sorted(values)
    return data[max(0, min(len(data) - 1, int(round(p / 100 * (len(data) - 1)))))]


@pytest.fixture(scope="module")
def workload():
    graph, labels = planted_partition(
        NODES, COMMUNITIES, p_in=0.4, p_out=0.01, seed=5
    )
    stream = community_biased_stream(
        graph, labels, timestamps=TIMESTAMPS, fraction=0.05, seed=2
    )
    return graph, [[a.u, a.v, a.t] for a in stream]


@pytest.fixture()
def server_factory(workload, tmp_path):
    """Start ``repro-anc serve`` subprocesses over the workload graph."""
    graph, _ = workload
    edgelist = tmp_path / "graph.txt"
    edgelist.write_text("".join(f"{u} {v}\n" for u, v in graph.edges()))
    procs = []

    def start(data_dir):
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve", str(edgelist),
                "--port", "0", "--data-dir", str(data_dir),
                "--rep", "1", "--pyramids", "2",
                "--batch-size", "64", "--max-latency", "0.02",
                "--checkpoint-every", "500", "--metrics-interval", "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=dict(os.environ, PYTHONPATH=str(SRC)),
            text=True,
        )
        procs.append(proc)
        announce = proc.stdout.readline().split()
        assert announce and announce[0] == "SERVING", announce
        return proc, announce[1], int(announce[2])

    yield start
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def test_service_throughput(benchmark, workload, server_factory, tmp_path):
    graph, items = workload
    proc, host, port = server_factory(tmp_path / "data")
    query_latencies = []
    with ServiceClient(host, port) as client:
        level = client.clusters_info()["level"]

        ingest_started = time.perf_counter()
        for i in range(0, len(items), INGEST_CHUNK):
            client.ingest_batch(items[i : i + INGEST_CHUNK])
            if (i // INGEST_CHUNK) % QUERY_EVERY == 0:
                node = items[i][0]
                for op in (
                    lambda: client.clusters(level),
                    lambda: client.local(node, level),
                ):
                    started = time.perf_counter()
                    op()
                    query_latencies.append(time.perf_counter() - started)
        ingest_seconds = time.perf_counter() - ingest_started

        sync_started = time.perf_counter()
        applied = client.sync()
        sync_seconds = time.perf_counter() - sync_started
        metrics = client.metrics()
        stats = client.stats()

        # pytest-benchmark target: one live local-cluster round trip.
        benchmark.pedantic(
            lambda: client.local(items[0][0], level), rounds=20, iterations=1
        )
        client.shutdown()
    assert proc.wait(timeout=30) == 0

    throughput = len(items) / ingest_seconds
    row = {
        "activations": len(items),
        "ingest_s": ingest_seconds,
        "ingest_per_s": throughput,
        "sync_s": sync_seconds,
        "queries": len(query_latencies),
        "query_p50_ms": _percentile(query_latencies, 50) * 1e3,
        "query_p99_ms": _percentile(query_latencies, 99) * 1e3,
    }
    print()
    print(
        format_table(
            [row],
            title=f"Service throughput ({NODES}-node graph, live TCP server)",
            float_fmt="{:.2f}",
        )
    )
    save_result(
        "service_throughput",
        {
            "graph": {"n": graph.n, "m": graph.m},
            "workload": row,
            "server_metrics": {
                "counters": metrics["counters"],
                "histograms": metrics["histograms"],
            },
        },
    )

    # Durable ingest keeps up and nothing acknowledged is lost.
    assert applied == len(items)
    assert stats["applied"] == len(items)
    assert throughput > 0
    # Micro-batching bounds query latency while ingest is running.  The
    # wall is generous (pure-Python engine) but a regression to per-
    # activation index rebuilds or a blocked writer would blow through it.
    assert row["query_p99_ms"] < 5000
    assert metrics["counters"]["batches_applied"] >= 1
    assert metrics["histograms"]["batch_flush_seconds"]["count"] >= 1


def test_kill9_mid_stream_recovers_identically(
    benchmark, workload, server_factory, tmp_path
):
    """The durability contract at bench scale: SIGKILL the server while
    it is mid-stream, restart on the same data dir, and the recovered
    process serves the same clusters at the same granularity."""
    graph, items = workload
    data_dir = tmp_path / "data"
    cut = (2 * len(items)) // 3

    proc, host, port = server_factory(data_dir)
    with ServiceClient(host, port) as client:
        client.ingest_batch(items[:cut])  # auto-checkpoints at 500
        client.sync()
        before = client.clusters_info()
        level = before["level"]
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=10)

    def restart_and_compare():
        proc, host, port = server_factory(data_dir)
        with ServiceClient(host, port) as client:
            after = client.clusters_info(level=level)
            client.shutdown()
        assert proc.wait(timeout=30) == 0
        return after

    after = benchmark.pedantic(restart_and_compare, rounds=1, iterations=1)
    assert after["applied"] == before["applied"] == cut
    assert after["t"] == before["t"]
    assert after["clusters"] == before["clusters"]

    # The recovered server is live: it absorbs the rest of the stream.
    proc, host, port = server_factory(data_dir)
    with ServiceClient(host, port) as client:
        client.ingest_batch(items[cut:])
        assert client.sync() == len(items)
        client.shutdown()
    assert proc.wait(timeout=30) == 0
