"""Table IV — time costs on activation networks.

Reproduces the Table IV procedure: an activation stream is fed to offline
recomputation methods (SCAN, LOUV, ANCF) and online methods (DYNA, LWEP,
ANCOR, ANCO); the amortized time per activation is reported.  ATTR is
skipped in the timing run (the paper also shows it slowest by far —
1140 s on MI — and it adds nothing to the ordering claim here).

Two workload points are measured:

* **CO @ 5 %/step** — the paper's exact stream shape on the smallest
  dataset.  At 200 nodes, per-activation costs of all methods are within
  an order of magnitude (the asymptotic gap needs scale to show).
* **DB @ 0.1 %/step** — a larger stand-in with sparse activation batches,
  the regime where the paper's point bites: the baselines pay the O(m)
  full-table decay scan per timestamp regardless of how few activations
  arrive, while ANC pays only for the activations (global decay factor).

Qualitative claims asserted: ANCO is the fastest online method on the
sparse-batch workload, and is >10× faster per activation than DYNA and
LWEP there (the paper reports 3-6 orders of magnitude at 10⁶-10⁹ edges;
the gap grows with m, which the two workload points demonstrate).
"""

import pytest

from repro.bench.harness import run_activation_experiment
from repro.bench.reporting import format_table, save_result
from repro.core.anc import ANCParams
from repro.workloads.datasets import load_dataset

WORKLOADS = [
    # (dataset, fraction per step, methods)
    ("CO", 0.05, ("ANCF", "ANCOR", "ANCO", "DYNA", "LWEP", "SCAN", "LOUV")),
    ("DB", 0.001, ("ANCO", "DYNA", "LWEP")),
]


@pytest.fixture(scope="module")
def runs():
    params = ANCParams(rep=2, k=2, seed=0, rescale_every=512, eps=0.25, mu=2)
    out = {}
    for name, fraction, methods in WORKLOADS:
        data = load_dataset(name)
        out[name] = run_activation_experiment(
            data,
            timestamps=10,
            fraction=fraction,
            params=params,
            methods=methods,
            evaluate_every=10**9,  # timing only; Fig 4 handles quality
            seed=0,
        )
    return out


def test_table4_time_costs(benchmark, runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name, dataset_runs in runs.items():
        for run in dataset_runs:
            kind = "offline" if run.method in ("ANCF", "SCAN", "LOUV", "ATTR") else "online"
            rows.append(
                {
                    "dataset": name,
                    "kind": kind,
                    "method": run.method,
                    "sec_per_activation": run.amortized_update_seconds,
                }
            )
    print()
    print(
        format_table(
            rows,
            ["dataset", "kind", "method", "sec_per_activation"],
            title="Table IV: Time Costs on Activation Networks (amortized / activation)",
            float_fmt="{:.6f}",
        )
    )
    save_result("table4_activation_time", {"rows": rows})

    # Sparse-batch regime: the decisive ordering of the paper.
    t_db = {run.method: run.amortized_update_seconds for run in runs["DB"]}
    assert t_db["ANCO"] <= t_db["DYNA"]
    assert t_db["ANCO"] <= t_db["LWEP"]
    assert t_db["DYNA"] / t_db["ANCO"] > 10, t_db
    assert t_db["LWEP"] / t_db["ANCO"] > 10, t_db

    # Dense-batch small graph: ANCO must still be within the online pack
    # (no order-of-magnitude regression), and ANCF dominates the offline
    # recomputation costs as it re-reinforces per snapshot.
    t_co = {run.method: run.amortized_update_seconds for run in runs["CO"]}
    assert t_co["ANCO"] < 10 * min(t_co["DYNA"], t_co["LWEP"])
    assert t_co["ANCOR"] >= t_co["ANCO"] * 0.95


def test_gap_grows_with_graph_size(benchmark, runs):
    """The six-orders-of-magnitude claim is a scaling claim: the
    DYNA/ANCO ratio must grow from the small dense workload to the large
    sparse one."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    t_co = {run.method: run.amortized_update_seconds for run in runs["CO"]}
    t_db = {run.method: run.amortized_update_seconds for run in runs["DB"]}
    ratio_small = t_co["DYNA"] / t_co["ANCO"]
    ratio_large = t_db["DYNA"] / t_db["ANCO"]
    assert ratio_large > 2 * ratio_small, (ratio_small, ratio_large)


def test_benchmark_anco_per_activation(benchmark, quick_params):
    """pytest-benchmark target: single-activation online update."""
    from repro.core.activation import Activation
    from repro.core.anc import ANCO

    data = load_dataset("CO")
    engine = ANCO(data.graph, quick_params)
    stream = list(data.default_stream(timestamps=50))
    state = {"i": 0}

    def one_activation():
        act = stream[state["i"] % len(stream)]
        # Re-time-stamp monotonically to keep the clock moving forward.
        state["i"] += 1
        engine.process(Activation(act.u, act.v, engine.now + 0.01))

    benchmark.pedantic(one_activation, rounds=50, iterations=1)
    engine.index.check_consistency()
