"""Hard-mode static quality — LFR benchmark graphs.

`bench_table3_static_quality.py` showed that on *clean* planted
partitions the structure-only baselines are near ceiling, so the paper's
"ANCF beats baselines on NMI" could not be observed (EXPERIMENTS.md).
This bench re-runs the comparison on LFR-style graphs — power-law
degrees, power-law community sizes, and a mixing parameter that blurs
community boundaries — the standard hard benchmark for community
detection and a closer model of the paper's real graphs.

Qualitative claims asserted (partial restoration of Table III's shape):

* ANCF's best-granularity NMI beats ATTR and LOUV on the mixed graph;
* ANCF's purity is the best or tied-best of all methods;
* quality degrades for every method as mixing grows (sanity of the
  workload).
"""

import pytest

from repro.bench.reporting import format_table, save_result
from repro.baselines import attractor, louvain, scan
from repro.core.anc import ANCF, ANCParams
from repro.evalm import score_clustering
from repro.graph.generators import lfr_like

MIXINGS = (0.15, 0.35)
N = 350


def best_anc_scores(graph, truth, rep):
    params = ANCParams(rep=rep, k=4, seed=0, eps=0.2, mu=2)
    engine = ANCF(graph, params)
    best = None
    for level in range(1, engine.queries.num_levels + 1):
        scores = score_clustering(engine.clusters(level), truth, min_size=3)
        if best is None or scores["nmi"] > best["nmi"]:
            best = scores
    return best


@pytest.fixture(scope="module")
def rows():
    out = []
    for mixing in MIXINGS:
        graph, labels = lfr_like(N, mixing=mixing, avg_degree=10, seed=11)
        truth = {v: labels[v] for v in graph.nodes()}
        runs = [
            ("SCAN", score_clustering(scan(graph, eps=0.5, mu=3).clusters, truth, min_size=3)),
            ("ATTR", score_clustering(attractor(graph, max_iterations=30), truth, min_size=3)),
            ("LOUV", score_clustering(louvain(graph), truth, min_size=3)),
            ("ANCF1", best_anc_scores(graph, truth, rep=1)),
        ]
        for method, scores in runs:
            out.append({"mixing": mixing, "method": method, **scores})
    return out


def test_lfr_quality(benchmark, rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(
        format_table(
            rows,
            ["mixing", "method", "nmi", "purity", "f1", "ari", "clusters"],
            title="Static quality on LFR graphs (hard mode)",
        )
    )
    save_result("lfr_quality", {"rows": rows})

    by = {(r["mixing"], r["method"]): r for r in rows}
    for mixing in MIXINGS:
        anc = by[(mixing, "ANCF1")]
        # ANCF beats the dynamics/modularity baselines on NMI here.
        assert anc["nmi"] > by[(mixing, "ATTR")]["nmi"] - 0.02, (mixing, anc)
        assert anc["nmi"] > by[(mixing, "LOUV")]["nmi"] - 0.02, (mixing, anc)
        # And its purity leads or ties.
        best_purity = max(r["purity"] for (m, _), r in by.items() if m == mixing)
        assert anc["purity"] >= best_purity - 0.05

    # More mixing hurts everyone (workload sanity).
    for method in ("SCAN", "LOUV", "ANCF1"):
        assert by[(0.35, method)]["nmi"] <= by[(0.15, method)]["nmi"] + 0.05


def test_benchmark_lfr_generation(benchmark):
    graph, labels = benchmark(
        lambda: lfr_like(N, mixing=0.25, avg_degree=10, seed=3)
    )
    assert graph.n == N
