"""Observability overhead — instrumentation must be (nearly) free.

The PR's acceptance gate for ``repro.obs``: on the Table IV workload
shape (ANCO over a uniform activation stream), an engine that merely
*carries* an observability bundle (metrics registered, tracer disabled —
the production default) must stay within 5 % of the un-instrumented
per-activation cost, and full tracing (every span recorded, sample 1.0)
within 20 %.

Methodology: the same stream is replayed through a fresh engine per
configuration, best-of-``REPEATS`` to damp scheduler noise (overhead
ratios compare minima, the standard trick for micro-benchmarks on shared
machines).  Results land in ``bench_results/obs_overhead.json``.
"""

import pytest

from repro.bench.harness import timed
from repro.bench.reporting import format_table, save_result
from repro.core.anc import ANCO, ANCParams
from repro.obs import MetricsRegistry, Observability, Tracer
from repro.workloads.datasets import load_dataset
from repro.workloads.streams import uniform_stream

REPEATS = 5
TIMESTAMPS = 10
FRACTION = 0.05


def _workload():
    dataset = load_dataset("CO")
    stream = uniform_stream(
        dataset.graph, timestamps=TIMESTAMPS, fraction=FRACTION, seed=0
    )
    return dataset.graph, list(stream.batches_by_timestamp()), len(stream)


def _obs_for(mode):
    if mode == "dark":
        return None
    if mode == "metrics":
        # The production default: registry live, tracer off.
        return Observability(
            registry=MetricsRegistry(), tracer=Tracer(enabled=False)
        )
    if mode == "tracing":
        return Observability(
            registry=MetricsRegistry(),
            tracer=Tracer(enabled=True, capacity=65536, sample=1.0),
        )
    raise ValueError(mode)


@pytest.fixture(scope="module")
def overhead_rows():
    graph, batches, n_acts = _workload()
    params = ANCParams(rep=2, k=2, seed=0, rescale_every=512, eps=0.25, mu=2)
    rows = []
    for mode in ("dark", "metrics", "tracing"):
        best = float("inf")
        for _ in range(REPEATS):
            engine = ANCO(graph, params, obs=_obs_for(mode))

            def replay(e=engine):
                for _, batch in batches:
                    e.process_batch(batch)

            seconds, _ = timed(replay, label=f"obs_overhead.{mode}")
            best = min(best, seconds)
        rows.append(
            {
                "mode": mode,
                "best_seconds": best,
                "sec_per_activation": best / n_acts,
                "activations": n_acts,
            }
        )
    return rows


def test_obs_overhead_within_budget(benchmark, overhead_rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_mode = {row["mode"]: row["sec_per_activation"] for row in overhead_rows}
    rows = [
        {**row, "overhead_pct": 100.0 * (row["sec_per_activation"] / by_mode["dark"] - 1.0)}
        for row in overhead_rows
    ]
    print()
    print(
        format_table(
            rows,
            ["mode", "activations", "sec_per_activation", "overhead_pct"],
            title="Observability overhead (ANCO, Table IV workload shape)",
            float_fmt="{:.6f}",
        )
    )
    save_result(
        "obs_overhead",
        {
            "workload": {
                "dataset": "CO",
                "timestamps": TIMESTAMPS,
                "fraction": FRACTION,
                "repeats": REPEATS,
            },
            "rows": rows,
        },
    )
    # The acceptance budgets: carrying the bundle is free-ish; full
    # tracing costs bounded, predictable overhead.
    assert by_mode["metrics"] <= by_mode["dark"] * 1.05, by_mode
    assert by_mode["tracing"] <= by_mode["dark"] * 1.20, by_mode
