"""Observability overhead — instrumentation must be (nearly) free.

The PR's acceptance gate for ``repro.obs``: on the Table IV workload
shape (ANCO over a uniform activation stream), an engine that merely
*carries* an observability bundle (metrics registered, tracer disabled —
the production default) must stay within 5 % of the un-instrumented
per-activation cost, and full tracing (every span recorded, sample 1.0)
within 20 %.

Methodology: the same stream is replayed through a fresh engine per
configuration, best-of-``REPEATS`` to damp scheduler noise (overhead
ratios compare minima, the standard trick for micro-benchmarks on shared
machines).  Results land in ``bench_results/obs_overhead.json``.
"""

import pytest

from repro.bench.harness import timed
from repro.bench.reporting import format_table, save_result
from repro.core.anc import ANCO, ANCParams
from repro.obs import (
    MetricsRegistry,
    Observability,
    SamplingProfiler,
    TraceContext,
    Tracer,
    new_span_id,
)
from repro.workloads.datasets import load_dataset
from repro.workloads.streams import uniform_stream

REPEATS = 5
TIMESTAMPS = 10
FRACTION = 0.05
#: Activations per simulated wire request in the propagation bench —
#: the shape an ``ingest`` batch takes through ``ServiceClient``.
CHUNK = 16


def _workload():
    dataset = load_dataset("CO")
    stream = uniform_stream(
        dataset.graph, timestamps=TIMESTAMPS, fraction=FRACTION, seed=0
    )
    return dataset.graph, list(stream.batches_by_timestamp()), len(stream)


def _obs_for(mode):
    if mode == "dark":
        return None
    if mode == "metrics":
        # The production default: registry live, tracer off.
        return Observability(
            registry=MetricsRegistry(), tracer=Tracer(enabled=False)
        )
    if mode == "tracing":
        return Observability(
            registry=MetricsRegistry(),
            tracer=Tracer(enabled=True, capacity=65536, sample=1.0),
        )
    raise ValueError(mode)


@pytest.fixture(scope="module")
def overhead_rows():
    graph, batches, n_acts = _workload()
    params = ANCParams(rep=2, k=2, seed=0, rescale_every=512, eps=0.25, mu=2)
    rows = []
    for mode in ("dark", "metrics", "tracing"):
        best = float("inf")
        for _ in range(REPEATS):
            engine = ANCO(graph, params, obs=_obs_for(mode))

            def replay(e=engine):
                for _, batch in batches:
                    e.process_batch(batch)

            seconds, _ = timed(replay, label=f"obs_overhead.{mode}")
            best = min(best, seconds)
        rows.append(
            {
                "mode": mode,
                "best_seconds": best,
                "sec_per_activation": best / n_acts,
                "activations": n_acts,
            }
        )
    return rows


def test_obs_overhead_within_budget(benchmark, overhead_rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_mode = {row["mode"]: row["sec_per_activation"] for row in overhead_rows}
    rows = [
        {**row, "overhead_pct": 100.0 * (row["sec_per_activation"] / by_mode["dark"] - 1.0)}
        for row in overhead_rows
    ]
    print()
    print(
        format_table(
            rows,
            ["mode", "activations", "sec_per_activation", "overhead_pct"],
            title="Observability overhead (ANCO, Table IV workload shape)",
            float_fmt="{:.6f}",
        )
    )
    save_result(
        "obs_overhead",
        {
            "workload": {
                "dataset": "CO",
                "timestamps": TIMESTAMPS,
                "fraction": FRACTION,
                "repeats": REPEATS,
            },
            "rows": rows,
        },
    )
    # The acceptance budgets: carrying the bundle is free-ish; full
    # tracing costs bounded, predictable overhead.
    assert by_mode["metrics"] <= by_mode["dark"] * 1.05, by_mode
    assert by_mode["tracing"] <= by_mode["dark"] * 1.20, by_mode


# ---------------------------------------------------------------------------
# Trace-context propagation overhead (the PR 8 wire path)
# ---------------------------------------------------------------------------
#
# Every wire request now mints/binds a TraceContext even when nothing is
# sampled ("dark" propagation — the production default), and a sampled
# request additionally records one wire span per hop.  This bench
# replays the same stream as simulated requests of CHUNK activations
# and gates the machinery: dark propagation <5 %, fully sampled tracing
# <20 %, and a constructed-but-stopped profiler ~0 % (it is a plain
# object until started).


def _chunks(batches):
    for _, batch in batches:
        for i in range(0, len(batch), CHUNK):
            yield batch[i : i + CHUNK]


def _propagation_replay(mode, graph, batches, params):
    tracer = Tracer(enabled=False, capacity=65536)
    engine = ANCO(graph, params, obs=None)
    profiler = SamplingProfiler(97.0, tracer=tracer) if mode == "profiler_off" else None
    assert profiler is None or not profiler.running  # never started

    def replay():
        seq = 0
        for chunk in _chunks(batches):
            if mode in ("propagate", "sampled"):
                seq += 1
                ctx = TraceContext(
                    f"bench:{seq:x}", new_span_id(), mode == "sampled"
                )
                with tracer.wire_span("server.ingest", ctx, n=len(chunk)):
                    engine.process_batch(chunk)
            else:
                engine.process_batch(chunk)

    return replay


@pytest.fixture(scope="module")
def propagation_rows():
    graph, batches, n_acts = _workload()
    params = ANCParams(rep=2, k=2, seed=0, rescale_every=512, eps=0.25, mu=2)
    modes = ("dark", "propagate", "sampled", "profiler_off")
    # Round-robin the repeats across modes: thermal/scheduler drift over
    # the bench's lifetime then hits every mode equally instead of
    # biasing whichever mode ran last.
    best = {mode: float("inf") for mode in modes}
    for _ in range(REPEATS):
        for mode in modes:
            replay = _propagation_replay(mode, graph, batches, params)
            seconds, _ = timed(replay, label=f"obs_propagation.{mode}")
            best[mode] = min(best[mode], seconds)
    return [
        {
            "mode": mode,
            "best_seconds": best[mode],
            "sec_per_activation": best[mode] / n_acts,
            "activations": n_acts,
        }
        for mode in modes
    ]


def test_propagation_overhead_within_budget(benchmark, propagation_rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_mode = {row["mode"]: row["sec_per_activation"] for row in propagation_rows}
    rows = [
        {**row, "overhead_pct": 100.0 * (row["sec_per_activation"] / by_mode["dark"] - 1.0)}
        for row in propagation_rows
    ]
    print()
    print(
        format_table(
            rows,
            ["mode", "activations", "sec_per_activation", "overhead_pct"],
            title=f"Trace propagation overhead ({CHUNK} activations per request)",
            float_fmt="{:.6f}",
        )
    )
    save_result(
        "obs_propagation_overhead",
        {
            "workload": {
                "dataset": "CO",
                "timestamps": TIMESTAMPS,
                "fraction": FRACTION,
                "chunk": CHUNK,
                "repeats": REPEATS,
            },
            "rows": rows,
        },
    )
    # Dark propagation (context minted, nothing recorded) is free-ish;
    # a recorded wire span per request stays within the tracing budget;
    # a profiler that was never started costs nothing.
    assert by_mode["propagate"] <= by_mode["dark"] * 1.05, by_mode
    assert by_mode["sampled"] <= by_mode["dark"] * 1.20, by_mode
    assert by_mode["profiler_off"] <= by_mode["dark"] * 1.05, by_mode
