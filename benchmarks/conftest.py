"""Shared configuration for the paper-reproduction benchmarks.

Each ``bench_*.py`` module regenerates one table or figure of the paper's
evaluation section at stand-in scale: it prints the same rows/series the
paper reports (run with ``-s`` to see them), persists the data as JSON
under ``bench_results/``, asserts the paper's *qualitative* claims, and
exposes at least one pytest-benchmark target for the timing-shaped
experiments.

Scale knobs are deliberately small so the full suite finishes in minutes
of pure Python; the claims under test are relative (who wins, how things
scale), never absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.core.anc import ANCParams


@pytest.fixture(scope="session")
def quick_params() -> ANCParams:
    """Cheap, shared ANC parameters for the timing benchmarks."""
    return ANCParams(rep=1, k=2, seed=0, rescale_every=512, eps=0.25, mu=2)


@pytest.fixture(scope="session")
def paper_params() -> ANCParams:
    """Defaults matching the paper's Table II (k=4, rep=7)."""
    return ANCParams(rep=7, k=4, seed=0, rescale_every=1024, eps=0.25, mu=2)
