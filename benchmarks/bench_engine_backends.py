"""Dict-vs-array engine backend speedup — the ROADMAP item 1 gate.

The structure-of-arrays backend (``repro.core.arrays`` +
``repro.index.array_index``) exists to kill the per-edge dict/tuple
overhead that ``bench_profile.py`` attributed to ``reinforce`` (~65%)
and ``index_repair`` (~26%).  This bench measures exactly that claim,
with the same sampling idiom:

* **Profile-attributed ratio (the gate).**  Both backends replay the
  same uniform stream on the dense MI dataset (avg degree ~40 — the
  regime where the dict backend's ``common_neighbors`` merge and
  per-edge hash probes dominate) under a
  :class:`~repro.obs.profiler.SamplingProfiler`; the span stack
  attributes every sample to an engine phase.  With equal replay counts
  the per-phase ``est_s`` are directly comparable, and the committed
  gate is **combined ``reinforce`` + ``index_repair`` time >= 5x
  faster** on the array backend.  (``index_repair`` alone plateaus
  around 2-3x: the Dijkstra repair wave is identical code on both
  backends — only its weight/adjacency reads get cheaper.)
* **Dict no-regression floor.**  The dict path is the permanent
  correctness oracle, so it must not have been slowed by the refactor:
  a disarmed (no-profiler) CO replay must still clear a conservative
  throughput floor relative to the ~6-7k acts/s measured when the
  profile was first committed, and the array backend must beat the
  dict backend on the same wall-clock workload.

Results land in ``bench_results/engine_backend_speedup.json``.
"""

import time

import pytest

from repro.bench.reporting import format_table, save_result
from repro.core.anc import ANCO, ANCParams
from repro.obs import MetricsRegistry, Observability, SamplingProfiler, Tracer
from repro.workloads.datasets import load_dataset
from repro.workloads.streams import uniform_stream

TIMESTAMPS = 20
FRACTION = 0.05
HZ = 997.0
PROFILE_DATASET = "MI"
PROFILE_REPLAYS = 3  # identical for both backends: est_s stay comparable
WALL_DATASET = "CO"
HOT_PHASES = ("reinforce", "index_repair")
#: The committed acceptance gate: combined hot-phase speedup.
MIN_HOT_SPEEDUP = 5.0
#: Dict-oracle floor: half of the ~3.5-4k acts/s the dict path measures
#: on this workload (cf. ``bench_results/obs_overhead.json`` dark mode),
#: so machine jitter cannot fail the bench while a real regression will.
MIN_DICT_ACTS_PER_S = 2000.0


def _params(backend: str) -> ANCParams:
    return ANCParams(
        rep=2, k=2, seed=0, rescale_every=512, eps=0.25, mu=2,
        engine_backend=backend,
    )


def _profile_backend(backend: str, batches, graph_loader):
    tracer = Tracer(enabled=True, capacity=4096, sample=1.0)
    obs = Observability(registry=MetricsRegistry(), tracer=tracer)
    profiler = SamplingProfiler(HZ, tracer=tracer)
    # Engines are built outside the profiling window: the gate is about
    # the online path, not index construction.
    engines = [
        ANCO(graph_loader(), _params(backend), obs=obs)
        for _ in range(PROFILE_REPLAYS)
    ]
    for engine in engines:
        profiler.start()
        for _, batch in batches:
            engine.process_batch(batch)
        profiler.stop()
    return profiler.report()


def _wall_backend(backend: str, batches, graph) -> float:
    engine = ANCO(graph, _params(backend))
    start = time.perf_counter()
    for _, batch in batches:
        engine.process_batch(batch)
    return time.perf_counter() - start


@pytest.fixture(scope="module")
def backend_speedup():
    dataset = load_dataset(PROFILE_DATASET)
    stream = uniform_stream(
        dataset.graph, timestamps=TIMESTAMPS, fraction=FRACTION, seed=0
    )
    batches = list(stream.batches_by_timestamp())
    loader = lambda: load_dataset(PROFILE_DATASET).graph  # noqa: E731
    reports = {
        backend: _profile_backend(backend, batches, loader)
        for backend in ("dict", "array")
    }
    phase_rows = []
    hot = {"dict": 0.0, "array": 0.0}
    names = sorted(
        set(reports["dict"]["phases"]) | set(reports["array"]["phases"])
    )
    for name in names:
        d = reports["dict"]["phases"].get(name, {}).get("est_s", 0.0)
        a = reports["array"]["phases"].get(name, {}).get("est_s", 0.0)
        phase_rows.append(
            {
                "phase": name,
                "dict_s": d,
                "array_s": a,
                "speedup": (d / a) if a else float("inf"),
                "gated": name in HOT_PHASES,
            }
        )
        if name in HOT_PHASES:
            hot["dict"] += d
            hot["array"] += a
    hot_speedup = hot["dict"] / hot["array"]

    wall_graph = load_dataset(WALL_DATASET).graph
    wall_stream = uniform_stream(
        wall_graph, timestamps=TIMESTAMPS, fraction=FRACTION, seed=0
    )
    wall_batches = list(wall_stream.batches_by_timestamp())
    acts = len(wall_stream)
    wall = {
        backend: _wall_backend(backend, wall_batches, wall_graph)
        for backend in ("dict", "array")
    }
    return {
        "workload": {
            "profile_dataset": PROFILE_DATASET,
            "wall_dataset": WALL_DATASET,
            "timestamps": TIMESTAMPS,
            "fraction": FRACTION,
            "replays": PROFILE_REPLAYS,
            "hz": HZ,
            "activations_per_wall_replay": acts,
        },
        "phases": phase_rows,
        "hot_phases": list(HOT_PHASES),
        "hot_dict_s": hot["dict"],
        "hot_array_s": hot["array"],
        "hot_speedup": hot_speedup,
        "samples": {b: reports[b]["samples"] for b in reports},
        "wall_s": wall,
        "wall_acts_per_s": {b: acts / wall[b] for b in wall},
        "gates": {
            "min_hot_speedup": MIN_HOT_SPEEDUP,
            "min_dict_acts_per_s": MIN_DICT_ACTS_PER_S,
        },
    }


def test_engine_backend_speedup_committed(benchmark, backend_speedup):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    doc = backend_speedup
    print()
    print(
        format_table(
            doc["phases"],
            ["phase", "dict_s", "array_s", "speedup", "gated"],
            title=(
                f"Engine phases, dict vs array "
                f"(ANCO/{PROFILE_DATASET}, {PROFILE_REPLAYS} replays each)"
            ),
            float_fmt="{:.4f}",
        )
    )
    print(
        f"hot combined ({'+'.join(doc['hot_phases'])}): "
        f"dict={doc['hot_dict_s']:.3f}s array={doc['hot_array_s']:.3f}s "
        f"speedup={doc['hot_speedup']:.2f}x"
    )
    print(
        f"wall ({WALL_DATASET}): "
        + " ".join(
            f"{b}={doc['wall_acts_per_s'][b]:.0f} acts/s" for b in doc["wall_s"]
        )
    )
    save_result("engine_backend_speedup", doc)
    # The ROADMAP item 1 gate: hot phases at least 5x faster.
    assert doc["hot_speedup"] >= MIN_HOT_SPEEDUP, doc["hot_speedup"]
    # Dict oracle did not regress, and array wins on wall-clock too.
    dict_rate = doc["wall_acts_per_s"]["dict"]
    assert dict_rate >= MIN_DICT_ACTS_PER_S, dict_rate
    assert doc["wall_s"]["array"] <= doc["wall_s"]["dict"], doc["wall_s"]
