"""Figure 11 / Section VI-C — case study on a DB2 collaboration subgraph.

Replays the paper's 29-author, 735-activation, 30-year scenario through
the online engine and reports, for the monitored author v8 and its five
neighbors, cluster co-membership at t10 / t20 / t30 on granularity
levels l2 and l3 — the exact panel structure of Figure 11.

Qualitative claims asserted (the paper's narrative):

* t10: v8 clusters with v7 (live collaboration) at l3;
* t20: v8 has left v7's cluster and joined v0's at l3;
* t30: v8 clusters with v26 at l3;
* l2 is coarser than l3 (the l2 cluster of v8 always contains the l3
  one), showing the zoom semantics of the paper's level comparison.
"""

import pytest

from repro.bench.reporting import format_table, save_result
from repro.core.anc import ANCOR, ANCParams
from repro.workloads.case_study import FOCAL, TRACKED, build_case_study

CHECKPOINTS = (10, 20, 30)
LEVELS = (2, 3)


@pytest.fixture(scope="module")
def panel():
    cs = build_case_study()
    params = ANCParams(lam=0.1, rep=3, k=4, seed=2, eps=0.12, mu=2)
    engine = ANCOR(cs.graph, params, reinforce_interval=5.0)
    batches = dict(cs.stream.batches_by_timestamp())
    snapshots = {}
    for year in range(1, 31):
        engine.process_batch(batches.get(float(year), []))
        if year in CHECKPOINTS:
            snapshots[year] = {
                level: tuple(engine.cluster_of(FOCAL, level)) for level in LEVELS
            }
    return cs, snapshots


def test_fig11_case_study_panel(benchmark, panel):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cs, snapshots = panel
    rows = []
    for year in CHECKPOINTS:
        for level in LEVELS:
            cluster = snapshots[year][level]
            rows.append(
                {
                    "year": f"t{year}",
                    "level": f"l{level}",
                    "cluster_size": len(cluster),
                    **{f"with_v{v}": v in cluster for v in TRACKED},
                }
            )
    columns = ["year", "level", "cluster_size"] + [f"with_v{v}" for v in TRACKED]
    print()
    print(format_table(rows, columns, title="Figure 11: case study — v8's cluster"))
    save_result("fig11_case_study", {"rows": rows})

    # The collaboration narrative at the finer granularity l3.
    assert 7 in snapshots[10][3]          # v8-v7 live at t10
    assert 7 not in snapshots[20][3]      # decayed by t20
    assert 0 in snapshots[20][3]          # v8-v0 live at t20
    assert 26 in snapshots[30][3]         # v8-v26 live at t30


def test_l2_coarser_than_l3(benchmark, panel):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _, snapshots = panel
    for year in CHECKPOINTS:
        l2 = set(snapshots[year][2])
        l3 = set(snapshots[year][3])
        assert l3 <= l2, (year, sorted(l3 - l2))


def test_benchmark_case_study_replay(benchmark):
    """pytest-benchmark target: the full 30-year replay."""

    def replay():
        cs = build_case_study()
        params = ANCParams(lam=0.1, rep=1, k=2, seed=1, eps=0.2, mu=2)
        engine = ANCOR(cs.graph, params, reinforce_interval=5.0)
        engine.process_stream(cs.stream)
        return engine

    engine = benchmark.pedantic(replay, rounds=1, iterations=1)
    assert engine.activations_processed == 735
