"""Figure 4 — clustering quality on activation networks over time.

Reproduces the Fig 4 procedure at stand-in scale: a uniform activation
stream on CO, evaluated every few timestamps against spectral-clustering
ground truth of the current activeness snapshot (2·√n clusters), for the
online methods (ANCO, ANCOR, DYNA, LWEP) and offline methods (ANCF,
SCAN, LOUV).

Qualitative claims asserted:

* every method produces valid scores in [0, 1] at every checkpoint;
* the ANC engines stay competitive with the online baselines on NMI
  (within the envelope: mean ANC NMI >= 60 % of the best online baseline);
* ANCOR is at least as good as ANCO on average (the paper: the periodic
  reinforcement trades time for quality).
"""

import statistics

import pytest

from repro.bench.harness import run_activation_experiment
from repro.bench.reporting import format_series, save_result, sparkline_block
from repro.core.anc import ANCParams
from repro.workloads.datasets import load_dataset

METHODS = ("ANCF", "ANCOR", "ANCO", "DYNA", "LWEP", "SCAN", "LOUV")


@pytest.fixture(scope="module")
def runs():
    params = ANCParams(rep=2, k=4, seed=0, rescale_every=512, eps=0.25, mu=2)
    data = load_dataset("CO")
    return run_activation_experiment(
        data,
        timestamps=20,
        fraction=0.05,
        params=params,
        methods=METHODS,
        evaluate_every=5,
        seed=0,
    )


def test_fig4_quality_series(benchmark, runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    for measure in ("nmi", "purity", "f1"):
        series = {
            run.method: [q[measure] for q in run.quality_by_time] for run in runs
        }
        x = [q["t"] for q in runs[0].quality_by_time]
        print(
            format_series(
                series,
                x_values=x,
                x_label="t",
                title=f"Figure 4 ({measure.upper()}) on CO over time",
            )
        )
        print(sparkline_block(series))
        print()
    save_result(
        "fig4_quality_over_time",
        {
            run.method: run.quality_by_time for run in runs
        },
    )
    for run in runs:
        assert run.quality_by_time, run.method
        for q in run.quality_by_time:
            for measure in ("nmi", "purity", "f1"):
                assert 0.0 <= q[measure] <= 1.0, (run.method, q)


def test_anc_methods_competitive(benchmark, runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    mean_nmi = {
        run.method: statistics.mean(q["nmi"] for q in run.quality_by_time)
        for run in runs
    }
    best_online_baseline = max(mean_nmi["DYNA"], mean_nmi["LWEP"])
    assert mean_nmi["ANCOR"] >= 0.6 * best_online_baseline, mean_nmi
    assert mean_nmi["ANCO"] >= 0.5 * best_online_baseline, mean_nmi
    # ANCOR's periodic reinforcement should not lose to plain ANCO by much.
    assert mean_nmi["ANCOR"] >= mean_nmi["ANCO"] - 0.1, mean_nmi
