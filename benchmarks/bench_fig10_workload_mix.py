"""Figure 10 — total time of mixed update/query workloads.

The paper replays a day of activations on TW2 with 1 %-32 % of the
activations replaced by local-cluster queries, comparing total processing
time of ANCO, DYNA and LWEP.  We replay the same mix shape on the DB
stand-in with sparse per-step batches (the regime where the baselines'
per-step O(m) recomputation binds, see bench_table4).

Qualitative claims asserted:

* ANCO processes the whole workload fastest at every query percentage
  (the paper: "ANCO is constantly the fastest and 270× faster than DYNA
  on average");
* ANCO's total time does not grow as the query percentage rises —
  queries are local and cheaper than updates (the paper: total time
  *decreases* by 32 % from 1 % to 32 % replacement).
"""

import pytest

from repro.bench.harness import run_mixed_workload
from repro.bench.reporting import format_table, save_result
from repro.core.anc import ANCParams
from repro.workloads.datasets import load_dataset

FRACTIONS = (0.01, 0.04, 0.16, 0.32)


@pytest.fixture(scope="module")
def rows():
    params = ANCParams(rep=1, k=2, seed=0, rescale_every=512, eps=0.25, mu=2)
    data = load_dataset("DB")
    return run_mixed_workload(
        data,
        query_fractions=FRACTIONS,
        timestamps=8,
        fraction=0.002,
        methods=("ANCO", "DYNA", "LWEP"),
        params=params,
        seed=0,
    )


def test_fig10_workload_mix(benchmark, rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(
        format_table(
            rows,
            ["query_fraction", "method", "seconds"],
            title="Figure 10: Mixed workload total time on DB stand-in",
            float_fmt="{:.4f}",
        )
    )
    save_result("fig10_workload_mix", {"rows": rows})

    by = {(r["query_fraction"], r["method"]): r["seconds"] for r in rows}
    for qf in FRACTIONS:
        assert by[(qf, "ANCO")] < by[(qf, "DYNA")], qf
        assert by[(qf, "ANCO")] < by[(qf, "LWEP")], qf

    # Queries are cheaper than updates for ANCO: total time at 32% queries
    # must not exceed the 1% point by much (paper: it decreases).
    assert by[(0.32, "ANCO")] < 1.5 * by[(0.01, "ANCO")]


def test_benchmark_local_query(benchmark):
    """pytest-benchmark target: one local cluster query."""
    from repro.core.anc import ANCO

    data = load_dataset("DB")
    params = ANCParams(rep=1, k=2, seed=0, eps=0.25, mu=2)
    engine = ANCO(data.graph, params)
    level = engine.queries.sqrt_n_level()
    state = {"v": 0}

    def one_query():
        state["v"] = (state["v"] + 37) % data.graph.n
        return engine.queries.cluster_of(state["v"], level)

    cluster = benchmark.pedantic(one_query, rounds=30, iterations=1)
    assert cluster
