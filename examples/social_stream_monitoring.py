#!/usr/bin/env python
"""Monitoring a bursty social activation stream in real time.

Simulates a day of social-network interactions (diurnal rate with Pareto
bursts, the Fig 9 workload), absorbs them minute by minute with the
online engine, and demonstrates the operational side of the system:

* per-minute batch latency (bounded by the affected set, not the graph);
* the real-time vote table reporting which edges flipped cluster
  membership each hour (the "Remarks" feature of Section V-C);
* live local queries against the current index.

Run:  python examples/social_stream_monitoring.py
"""

import time

from repro import ANCO, ANCParams
from repro.graph.generators import planted_partition
from repro.index.voting import VoteTable
from repro.workloads.streams import day_trace

MINUTES = 180  # 3 simulated hours


def main() -> None:
    graph, groups = planted_partition(250, 10, p_in=0.35, p_out=0.01, seed=3)
    print(f"Social network: {graph.n} users, {graph.m} friendships")

    params = ANCParams(lam=0.01, rep=2, k=4, seed=0, eps=0.25, mu=2)
    engine = ANCO(graph, params)
    votes = VoteTable(engine.index)
    watch_level = engine.queries.sqrt_n_level()
    print(f"Watching cluster changes at level {watch_level} (sqrt-n granularity)\n")

    stream = day_trace(
        graph, minutes=MINUTES, base_per_minute=10, seed=9, burst_probability=0.04
    )

    latencies = []
    processed = 0
    flip_log = []
    for minute, batch in stream.batches_by_timestamp():
        start = time.perf_counter()
        engine.process_batch(batch)
        touched = {a.u for a in batch} | {a.v for a in batch}
        votes.refresh_around(touched, level=watch_level)
        latencies.append(time.perf_counter() - start)
        processed += len(batch)

        flipped = votes.changed_edges(watch_level)
        if flipped:
            flip_log.append((minute, len(flipped)))
        if int(minute) % 60 == 0:
            hour = int(minute) // 60
            lat = sorted(latencies[-60:])
            p95 = lat[int(len(lat) * 0.95)] if lat else 0.0
            print(
                f"hour {hour}: {processed} activations so far, "
                f"p95 minute latency {p95 * 1000:.1f} ms, "
                f"{sum(n for _, n in flip_log)} vote flips this hour"
            )
            flip_log.clear()

    lat = sorted(latencies)
    print(
        f"\nDay summary: {processed} activations, "
        f"median minute latency {lat[len(lat) // 2] * 1000:.1f} ms, "
        f"p99 {lat[int(len(lat) * 0.99)] * 1000:.1f} ms"
    )

    # Live queries against the final state.
    user = 42
    community = engine.cluster_of(user)
    print(
        f"\nUser {user}'s active community right now "
        f"({len(community)} users): {community[:10]}"
        f"{'...' if len(community) > 10 else ''}"
    )
    finer = engine.cluster_of(user, engine.zoom_in(watch_level))
    print(f"Zoomed in: {len(finer)} users")
    engine.index.check_consistency()
    print("Index verified consistent after the full day.")


if __name__ == "__main__":
    main()
