#!/usr/bin/env python
"""Quickstart: cluster an activation network online with ANC.

Builds a small social-network stand-in with planted friend groups, feeds
it a community-biased activation stream (friends chat with friends), and
runs the three query types of the paper's Problem 1:

1. report all clusters at the Θ(√n) granularity;
2. zoom in / zoom out;
3. local cluster queries for one user.

Run:  python examples/quickstart.py
(Set REPRO_EXAMPLE_QUICK=1 for a scaled-down run, as the test suite's
examples smoke test does.)
"""

import os

from repro import ANCO, ANCParams
from repro.evalm import score_clustering
from repro.graph.generators import planted_partition
from repro.workloads.streams import community_biased_stream

QUICK = os.environ.get("REPRO_EXAMPLE_QUICK") == "1"


def main() -> None:
    # --- the relation network: users in friend groups --------------------
    users, groups_n, timestamps = (120, 6, 10) if QUICK else (300, 12, 30)
    graph, groups = planted_partition(
        users, groups_n, p_in=0.35, p_out=0.01, seed=7
    )
    print(f"Relation network: {graph.n} users, {graph.m} friendships")

    # --- the activation stream of chats ----------------------------------
    stream = community_biased_stream(
        graph, groups, timestamps=timestamps, fraction=0.1, intra_bias=0.9,
        seed=1,
    )
    print(f"Activation stream: {len(stream)} chats over {timestamps} timestamps")

    # --- the online engine ----------------------------------------------
    params = ANCParams(
        lam=0.1, rep=1 if QUICK else 3, k=2 if QUICK else 4,
        seed=0, eps=0.25, mu=2,
    )
    engine = ANCO(graph, params)
    engine.process_stream(stream)
    print(
        f"Processed {engine.activations_processed} activations "
        f"({engine.metric.clock.rescale_count} batched rescales)"
    )

    # --- Problem 1, query 1: report all clusters -------------------------
    clusters = engine.clusters()  # Θ(√n) granularity by default
    sizes = sorted((len(c) for c in clusters), reverse=True)
    print(f"\nClusters at the sqrt-n granularity: {len(clusters)}")
    print(f"Largest cluster sizes: {sizes[:8]}")

    truth = {v: groups[v] for v in graph.nodes()}
    scores = score_clustering(clusters, truth)
    print(
        f"Against the planted groups: NMI={scores['nmi']:.3f} "
        f"purity={scores['purity']:.3f} F1={scores['f1']:.3f}"
    )

    # --- zoom in and out ---------------------------------------------------
    level = engine.queries.sqrt_n_level()
    finer = engine.zoom_in(level)
    coarser = engine.zoom_out(level)
    print(
        f"\nGranularity levels: 1..{engine.queries.num_levels} "
        f"(sqrt-n level = {level})"
    )
    print(f"  zoom out -> level {coarser}: {len(engine.clusters(coarser))} clusters")
    print(f"  current  -> level {level}: {len(clusters)} clusters")
    print(f"  zoom in  -> level {finer}: {len(engine.clusters(finer))} clusters")

    # --- Problem 1, query 2: local clusters ---------------------------------
    user = 0
    level_s, smallest = engine.queries.smallest_cluster_of(user)
    community = engine.cluster_of(user)
    print(f"\nUser {user}:")
    print(f"  smallest cluster (level {level_s}): {smallest}")
    print(f"  active community at sqrt-n level ({len(community)} users): "
          f"{community[:12]}{'...' if len(community) > 12 else ''}")
    same_group = [v for v in community if groups[v] == groups[user]]
    print(f"  {len(same_group)}/{len(community)} of them are true group-mates")


if __name__ == "__main__":
    main()
