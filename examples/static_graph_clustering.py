#!/usr/bin/env python
"""Clustering a static graph: ANC's S_0 versus the classic baselines.

The paper's similarity initialization (S_0 with `rep` reinforcement
sweeps) doubles as a static-graph clustering method (ANCF on a graph with
no activations).  This example compares it against Louvain, SCAN,
Attractor and spectral clustering on a planted-partition benchmark and
prints the Table III measure set for each.

Run:  python examples/static_graph_clustering.py
(Set REPRO_EXAMPLE_QUICK=1 to run a reduced method panel, as the test
suite's examples smoke test does.)
"""

import os
import time

from repro.baselines import attractor, louvain, scan, spectral_clustering
from repro.bench.harness import anc_static_clusters
from repro.core.anc import ANCParams
from repro.evalm import score_clustering, structural_scores
from repro.workloads.datasets import load_dataset


def evaluate(name, clusters, graph, truth, seconds):
    q = score_clustering(clusters, truth, min_size=3)
    s = structural_scores(graph, clusters, min_size=3)
    print(
        f"{name:<8} Q={s['modularity']:.3f}  cond={s['conductance']:.3f}  "
        f"NMI={q['nmi']:.3f}  purity={q['purity']:.3f}  F1={q['f1']:.3f}  "
        f"clusters={int(q['clusters'])}  ({seconds:.2f}s)"
    )


def main() -> None:
    data = load_dataset("LA")  # one of the paper's ground-truth datasets
    graph, truth = data.graph, data.truth()
    print(
        f"Dataset LA stand-in: {graph.n} nodes, {graph.m} edges, "
        f"{len(data.truth_clusters())} ground-truth communities\n"
    )

    quick = os.environ.get("REPRO_EXAMPLE_QUICK") == "1"
    runners = [
        ("LOUV", lambda: louvain(graph)),
        ("SCAN", lambda: scan(graph, eps=0.5, mu=3).clusters),
    ]
    if not quick:
        runners += [
            ("ATTR", lambda: attractor(graph, max_iterations=25)),
            ("SPEC", lambda: spectral_clustering(graph, len(data.truth_clusters()), seed=0)),
        ]
    for rep in (1,) if quick else (1, 5, 9):
        runners.append(
            (
                f"ANCF{rep}",
                lambda r=rep: anc_static_clusters(
                    data, r, ANCParams(k=4, seed=0, eps=0.25, mu=2)
                ),
            )
        )

    for name, runner in runners:
        start = time.perf_counter()
        clusters = runner()
        evaluate(name, clusters, graph, truth, time.perf_counter() - start)

    print(
        "\nNote: on planted partitions the structure-only baselines are "
        "near-ceiling; the paper's real graphs are noisier, which is where "
        "the reinforcement propagation pays off (see EXPERIMENTS.md)."
    )


if __name__ == "__main__":
    main()
