#!/usr/bin/env python
"""Quickstart for the streaming service: serve, ingest, query, recover.

Spawns a real ``repro-anc serve`` process over a small social network,
talks to it through :class:`repro.service.ServiceClient`, then restarts
it against the same data directory to show that checkpoints + the
write-ahead log reproduce the exact same clustering.

Run:  python examples/service_quickstart.py
(The full protocol and operational knobs are in docs/service.md.)
"""

import os
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.graph.generators import planted_partition
from repro.service import ServiceClient
from repro.workloads.streams import community_biased_stream

SRC = Path(__file__).resolve().parent.parent / "src"


def start_server(edgelist: Path, data_dir: Path) -> subprocess.Popen:
    """Launch ``repro-anc serve`` and wait for its announce line."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", str(edgelist),
            "--port", "0", "--data-dir", str(data_dir),
            "--rep", "1", "--pyramids", "2", "--batch-size", "32",
            "--checkpoint-every", "200", "--metrics-interval", "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=dict(os.environ, PYTHONPATH=str(SRC)),
        text=True,
    )
    announce = proc.stdout.readline().split()  # "SERVING <host> <port>"
    proc.host, proc.port = announce[1], int(announce[2])
    return proc


def main() -> None:
    graph, groups = planted_partition(80, 4, p_in=0.45, p_out=0.02, seed=5)
    stream = community_biased_stream(
        graph, groups, timestamps=20, fraction=0.08, seed=1
    )
    workdir = Path(tempfile.mkdtemp(prefix="anc-service-"))
    edgelist = workdir / "graph.txt"
    edgelist.write_text(
        "".join(f"user{u} user{v}\n" for u, v in graph.edges())
    )
    data_dir = workdir / "data"

    # --- serve and stream -------------------------------------------------
    server = start_server(edgelist, data_dir)
    print(f"Server up on {server.host}:{server.port} (data in {data_dir})")
    with ServiceClient(server.host, server.port) as client:
        items = [[f"user{a.u}", f"user{a.v}", a.t] for a in stream]
        client.ingest_batch(items)
        applied = client.sync()  # barrier: everything ingested is visible
        print(f"Ingested and applied {applied} activations")

        info = client.clusters_info(min_size=3)
        print(
            f"Clusters at level {info['level']} (t={info['t']:g}): "
            f"{len(info['clusters'])} of size >= 3"
        )
        community = client.local("user0")
        print(f"user0's community ({len(community)} users): {community[:8]}...")

        metrics = client.metrics()
        flush = metrics["histograms"]["batch_flush_seconds"]
        print(
            f"Service metrics: {metrics['counters']['batches_applied']:.0f} "
            f"micro-batches, flush p50={flush['p50'] * 1e3:.1f}ms"
        )
        before = client.clusters_info()
        client.shutdown()
    server.wait(timeout=30)
    print("Server shut down (final checkpoint written)")

    # --- restart: recovery reproduces the exact same clustering -----------
    server = start_server(edgelist, data_dir)
    with ServiceClient(server.host, server.port) as client:
        after = client.clusters_info(level=before["level"])
        identical = after["clusters"] == before["clusters"]
        print(
            f"After restart: {after['applied']} activations recovered, "
            f"clusters identical: {identical}"
        )
        client.shutdown()
    server.wait(timeout=30)
    if not identical:
        raise SystemExit("recovery mismatch — this should never happen")


if __name__ == "__main__":
    main()
