#!/usr/bin/env python
"""Growing network + live monitoring: the extensions tour.

A startup's internal chat network grows while people talk: new employees
join teams (edge insertion into the live index), conversations shift
activeness, and an observer watches two people's communities with the
change-feed machinery of §V-C's Remarks.  Along the way the pyramid
index doubles as a distance oracle ("who is organizationally closest?").

Run:  python examples/dynamic_network_growth.py
"""

import random

from repro import ANCO, ANCParams, Activation
from repro.graph.generators import planted_partition
from repro.index import add_relation_edge, rank_by_estimated_distance
from repro.monitor import ClusterWatcher


def main() -> None:
    rng = random.Random(5)
    graph, teams = planted_partition(120, 6, p_in=0.45, p_out=0.01, seed=13)
    print(f"Company chat network: {graph.n} people, {graph.m} pairs, 6 teams")

    engine = ANCO(graph, ANCParams(lam=0.1, rep=2, k=4, seed=1, eps=0.2, mu=2))
    watcher = ClusterWatcher(engine)
    alice, bob = 0, 1
    print(f"Watching person {alice} (team {teams[alice]}) "
          f"and person {bob} (team {teams[bob]})")
    watcher.watch(alice)
    watcher.watch(bob)

    # Bob will gradually move from his team to Alice's: first new edges
    # (meeting her teammates), then sustained conversation.
    alice_team = [v for v in graph.nodes() if teams[v] == teams[alice]][:6]
    t = 0.0
    intra = [e for e in graph.edges() if teams[e[0]] == teams[e[1]]]
    for week in range(1, 13):
        t += 1.0
        batch = []
        # Background: teams keep chatting among themselves.
        for e in sorted(rng.sample(intra, 40)):
            batch.append(Activation(e[0], e[1], t))
        # From week 4, Bob befriends Alice's teammates and chats with them.
        if week == 4:
            for target in alice_team[:3]:
                if add_relation_edge(engine, bob, target) >= 0:
                    print(f"week {week}: {bob} connected to {target} "
                          f"(new relation edge, index repaired in place)")
        if week >= 4:
            extra = []
            for target in alice_team[:3]:
                if engine.graph.has_edge(bob, target):
                    extra.append(Activation.of(bob, target, t))
            batch.extend(sorted(extra))
            batch.sort()
        changes = watcher.process_batch(sorted(batch))
        for change in changes:
            print(f"week {week}: {change.summary}")

    print("\nFinal communities:")
    for person in (alice, bob):
        cluster = sorted(watcher.current_cluster(person))
        print(f"  person {person}: cluster of {len(cluster)}: {cluster[:15]}"
              f"{'...' if len(cluster) > 15 else ''}")

    level = watcher.levels[0]
    together = bob in watcher.current_cluster(alice)
    print(f"\nSame community at the fine level {level}? {together}")
    coarser = engine.zoom_out(level)
    together_coarse = bob in engine.cluster_of(alice, coarser)
    print(f"Same community one zoom-out (level {coarser})? {together_coarse}")

    print("\nDistance-oracle view (who is closest to Bob?):")
    candidates = alice_team[:3] + [v for v in graph.nodes() if teams[v] == teams[bob]][:3]
    for node, bound in rank_by_estimated_distance(engine.index, bob, candidates):
        print(f"  person {node:>3} (team {teams[node]}): "
              f"distance bound {bound:.4f}")

    engine.index.check_consistency()
    print("\nIndex verified consistent after growth + stream.")


if __name__ == "__main__":
    main()
