#!/usr/bin/env python
"""Estrangement and polarization: the paper's introduction, simulated.

"Without interactions, two users along an edge drift apart with time.
Lacking interactions sometimes reflects estrangement and even hostility:
with polarized political ideas, even family members may not talk to each
other just to avoid conflicts."

This example builds one tight community (an extended family) embedded in
a wider social graph, runs years of normal interaction, then lets a
political rift stop all conversation across the two halves of the family
while each half keeps talking internally.  The clustering tracks the
split: one family cluster early, two clusters after the rift — with the
relation edges never changing, only their activeness.

Run:  python examples/polarization_drift.py
"""

import random

from repro import ANCO, ANCParams, Activation
from repro.graph.generators import planted_partition
from repro.graph.graph import Graph


def build_world(rng):
    """A 16-person family clique inside a 120-person social graph."""
    base, groups = planted_partition(104, 6, p_in=0.3, p_out=0.01, seed=8)
    n = base.n + 16
    graph = Graph(n)
    for u, v in base.edges():
        graph.add_edge(u, v)
    family = list(range(base.n, n))
    half_a, half_b = family[:8], family[8:]
    # Each household half is a clique; the halves meet through a handful
    # of cross ties (holiday gatherings, the parents, the cousins).
    for half in (half_a, half_b):
        for i, u in enumerate(half):
            for v in half[i + 1 :]:
                graph.add_edge(u, v)
    # The cross ties form a small bipartite block (the three eldest of
    # each half all know each other), so every cross edge sits on
    # triangles — σ needs common neighbors to register the gatherings.
    for i in range(3):
        for j in range(3):
            graph.add_edge(half_a[i], half_b[j])
    # The family is connected to the wider world through a few friends.
    for u in family[::4]:
        graph.add_edge(u, rng.randrange(base.n))
    return graph, family, groups


def main() -> None:
    rng = random.Random(17)
    graph, family, groups = build_world(rng)
    half_a, half_b = family[:8], family[8:]
    print(f"World: {graph.n} people; family of {len(family)} "
          f"(members {family[0]}..{family[-1]})")

    # ANCO (per-activation reinforcement only): an edge nobody activates
    # is never reinforced again, so estrangement shows as relative decay.
    engine = ANCO(graph, ANCParams(lam=0.2, rep=2, k=4, seed=3, eps=0.15, mu=2))
    level = engine.queries.sqrt_n_level()

    family_edges = [
        (u, v) for u, v in graph.edges() if u in set(family) and v in set(family)
    ]
    cross = [(u, v) for u, v in family_edges
             if (u in set(half_a)) != (v in set(half_a))]
    within = [e for e in family_edges if e not in set(cross)]
    world_edges = [e for e in graph.edges() if e not in set(family_edges)]

    rift_year = 8
    for year in range(1, 21):
        t = float(year)
        batch = []
        # The wider world keeps humming.
        batch.extend(Activation(u, v, t) for u, v in rng.sample(world_edges, 60))
        if year < rift_year:
            # Whole family talks: the halves' internal chatter plus every
            # cross tie (the family actually gathers).
            batch.extend(Activation(u, v, t) for u, v in within)
            # Gatherings hit every cross tie twice: few ties, much use.
            batch.extend(Activation(u, v, t) for u, v in cross)
            batch.extend(Activation(u, v, t) for u, v in cross)
        else:
            # The rift: each half only talks internally.
            batch.extend(Activation(u, v, t) for u, v in within)
        engine.process_batch(sorted(batch))

        cluster_of_a = set(engine.cluster_of(half_a[0], level))
        same = sum(1 for v in half_b if v in cluster_of_a)
        marker = "RIFT" if year >= rift_year else "    "
        print(f"year {year:>2} {marker}: {half_a[0]}'s cluster holds "
              f"{same}/{len(half_b)} members of the other half")

    print("\nThe relation network never changed — only who kept talking.")
    a_final = set(engine.cluster_of(half_a[0], level))
    b_final = set(engine.cluster_of(half_b[0], level))
    print(f"half A cluster: {sorted(a_final & set(family))}")
    print(f"half B cluster: {sorted(b_final & set(family))}")
    overlap = a_final & b_final & set(family)
    print(f"family members still shared between the two clusters: {sorted(overlap) or 'none'}")


if __name__ == "__main__":
    main()
