#!/usr/bin/env python
"""The paper's Section VI-C case study: 30 years of collaborations.

Replays the 29-author DB2 collaboration subgraph (735 activations over
30 yearly time steps) through the online engine and prints, for the
monitored author v8, the evolving cluster membership at granularity
levels l2 and l3 — the textual version of the paper's Figure 11 panels.

The narrative to watch:
  * years 5-11 : v8 collaborates with v7   -> same cluster at t10
  * years 11-30: v8 collaborates with v0   -> same cluster at t20, t30
  * years 11-22: v8 collaborates with v11
  * years 17-26: v8 collaborates with v5
  * years 23-30: v8 collaborates with v26  -> same cluster at t30

Run:  python examples/collaboration_case_study.py
"""

from repro import ANCOR, ANCParams
from repro.workloads.case_study import FOCAL, PHASES, TRACKED, build_case_study


def membership_line(cluster, year: int) -> str:
    flags = []
    for v in TRACKED:
        live = PHASES[v][0] <= year <= PHASES[v][1]
        marker = "*" if live else " "
        flags.append(f"v{v}{marker}:{'Y' if v in cluster else '.'}")
    return "  ".join(flags)


def main() -> None:
    case = build_case_study()
    print(
        f"Collaboration subgraph: {case.graph.n} authors, "
        f"{case.graph.m} collaborations, {len(case.stream)} activations "
        f"over 30 years"
    )
    print(f"Monitoring v{FOCAL} against neighbors {list(TRACKED)}")
    print("('*' marks a live collaboration phase that year; Y = same cluster)\n")

    params = ANCParams(lam=0.1, rep=3, k=4, seed=2, eps=0.12, mu=2)
    engine = ANCOR(case.graph, params, reinforce_interval=5.0)

    batches = dict(case.stream.batches_by_timestamp())
    header = f"{'year':>4} | {'level':>5} | {'size':>4} | membership"
    print(header)
    print("-" * len(header))
    for year in range(1, 31):
        engine.process_batch(batches.get(float(year), []))
        if year % 5 == 0:
            for level in (2, 3):
                cluster = engine.cluster_of(FOCAL, level)
                print(
                    f"{year:>4} | l{level:<4} | {len(cluster):>4} | "
                    f"{membership_line(cluster, year)}"
                )
            print()

    print("Similarity of v8's edges at the end (anchored S_t):")
    for v in TRACKED:
        s = engine.metric.anchored_value(FOCAL, v)
        start, end = PHASES[v]
        print(f"  v8-v{v:<2} (collab years {start}-{end}): S* = {s:.4f}")


if __name__ == "__main__":
    main()
