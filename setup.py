"""Shim for legacy editable installs (offline environments without `wheel`).

All metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-build-isolation --no-use-pep517`` works on
machines where the PEP 660 editable path (which needs the `wheel`
package) is unavailable.
"""

from setuptools import setup

setup()
