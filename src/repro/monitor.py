"""Cluster monitoring: watch nodes, get change events (§V-C Remarks).

The paper's Remarks sketch the application the index's locality enables:
"maintain a voting count for each level, each edge in real time.  This
allows us to report changes on user specified nodes at a cost equal to
the reporting."  This module builds that application end to end:

* :class:`ClusterWatcher` — register nodes of interest at a granularity
  level; after each processed batch it refreshes the vote table around
  the touched region and re-derives the watched nodes' local clusters
  *only if* a vote incident to their current cluster flipped — the
  "cost equal to the reporting" property;
* :class:`ClusterChange` — the emitted event: node, level, time, nodes
  joined and left.

The watcher wraps any ANC engine; see
``examples/dynamic_network_growth.py`` for a full tour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .core.activation import Activation, ActivationStream
from .core.anc import ANCEngineBase
from .index.clustering import local_cluster
from .index.voting import VoteTable
from .obs.trace import perf_counter

__all__ = ["ClusterChange", "ClusterWatcher"]


@dataclass(frozen=True)
class ClusterChange:
    """One watched node's cluster changed during a batch."""

    node: int
    level: int
    t: float
    joined: FrozenSet[int]
    left: FrozenSet[int]

    @property
    def summary(self) -> str:
        """Human-readable one-liner."""
        parts = [f"t={self.t:g} node {self.node} (level {self.level}):"]
        if self.joined:
            parts.append(f"+{sorted(self.joined)}")
        if self.left:
            parts.append(f"-{sorted(self.left)}")
        return " ".join(parts)


class ClusterWatcher:
    """Watch nodes' local clusters on a live engine.

    Parameters
    ----------
    engine:
        Any ANC engine.  The watcher processes batches *through* the
        engine (:meth:`process_batch`), so it sees exactly which nodes
        each batch touched.
    levels:
        Granularity levels to watch (default: the √n level).
    """

    def __init__(
        self,
        engine: ANCEngineBase,
        *,
        levels: Optional[Sequence[int]] = None,
    ) -> None:
        self.engine = engine
        if levels is None:
            levels = [engine.queries.sqrt_n_level()]
        bad = [l for l in levels if not 1 <= l <= engine.queries.num_levels]
        if bad:
            raise ValueError(f"levels out of range: {bad}")
        self.levels: Tuple[int, ...] = tuple(sorted(set(levels)))
        self.votes = VoteTable(engine.index)
        # watched[level] = set of nodes; clusters[(node, level)] = frozenset
        self._watched: Dict[int, Set[int]] = {l: set() for l in self.levels}
        self._clusters: Dict[Tuple[int, int], FrozenSet[int]] = {}
        self._events: List[ClusterChange] = []

    # ------------------------------------------------------------------
    def watch(self, node: int, level: Optional[int] = None) -> FrozenSet[int]:
        """Start watching ``node``; returns its current cluster."""
        if not self.engine.graph.has_node(node):
            raise ValueError(f"unknown node {node}")
        level = self.levels[0] if level is None else level
        if level not in self._watched:
            raise ValueError(f"level {level} is not watched by this watcher")
        self._watched[level].add(node)
        cluster = frozenset(local_cluster(self.engine.index, node, level))
        self._clusters[(node, level)] = cluster
        return cluster

    def unwatch(self, node: int, level: Optional[int] = None) -> None:
        """Stop watching ``node`` (no-op if not watched)."""
        level = self.levels[0] if level is None else level
        self._watched.get(level, set()).discard(node)
        self._clusters.pop((node, level), None)

    def current_cluster(self, node: int, level: Optional[int] = None) -> FrozenSet[int]:
        """The watched node's cluster as of the last processed batch."""
        level = self.levels[0] if level is None else level
        try:
            return self._clusters[(node, level)]
        except KeyError:
            raise KeyError(f"node {node} is not watched at level {level}") from None

    # ------------------------------------------------------------------
    def process_batch(self, batch: Sequence[Activation]) -> List[ClusterChange]:
        """Feed a batch through the engine, then report watched changes.

        Returns the changes detected in this batch (also appended to
        :meth:`events`).  The refresh cost is proportional to the batch's
        touched region plus the size of the re-derived clusters — never
        the graph.
        """
        self.engine.process_batch(batch)
        return self.observe_applied(batch)

    def observe_applied(self, batch: Sequence[Activation]) -> List[ClusterChange]:
        """Report watched changes for a batch the engine *already* absorbed.

        Drivers that own the engine's update schedule (the service's
        :class:`~repro.service.engine_host.EngineHost` applies batches on
        a writer thread with deterministic batch-end hooks) call this
        after applying each batch instead of :meth:`process_batch`, so
        the watcher observes without double-processing the stream.

        When the engine carries an enabled observability bundle, each
        refresh records its cost — ``watcher_refresh_seconds`` and the
        ``watcher_*`` counters — turning the paper's §V-C "cost equal to
        the reporting" remark into a measured quantity (compare
        ``watcher_touched_nodes`` against ``watcher_reported_nodes``).
        """
        obs = self.engine.obs
        if not obs.enabled:
            return self._observe(batch)[0]
        start = perf_counter()
        with obs.tracer.span("watcher_refresh", batch_size=len(batch)):
            changes, touched_count = self._observe(batch)
        registry = obs.registry
        registry.histogram("watcher_refresh_seconds").observe(
            perf_counter() - start
        )
        registry.counter("watcher_batches").inc()
        registry.counter("watcher_touched_nodes").inc(float(touched_count))
        registry.counter("watcher_changes").inc(float(len(changes)))
        registry.counter("watcher_reported_nodes").inc(
            float(sum(len(c.joined) + len(c.left) for c in changes))
        )
        return changes

    def _observe(
        self, batch: Sequence[Activation]
    ) -> Tuple[List[ClusterChange], int]:
        """The refresh itself; returns (changes, touched-region size)."""
        # The refresh region is the index's actual affected set (Lemma 11
        # — possibly wider than the batch endpoints when updates re-seat
        # distant nodes) plus the endpoints themselves.
        touched = {a.u for a in batch} | {a.v for a in batch}
        touched |= self.engine.index.drain_affected()
        changes: List[ClusterChange] = []
        t = self.engine.now
        # Refresh every level in one pass so the vote table stays globally
        # exact (cost: touched-incident edges × levels, still local).
        if touched:
            self.votes.refresh_around(touched)
        for level in self.levels:
            flipped_edges = self.votes.changed_edges(level)
            flipped_nodes = {v for e in flipped_edges for v in e}
            for node in self._watched[level]:
                old = self._clusters[(node, level)]
                # Re-derive only when a flipped edge touches the node's
                # current cluster (otherwise its component is unchanged:
                # votes define the component structure).
                if flipped_nodes and not (flipped_nodes & old):
                    continue
                if not flipped_nodes:
                    continue
                new = frozenset(local_cluster(self.engine.index, node, level))
                if new != old:
                    change = ClusterChange(
                        node=node,
                        level=level,
                        t=t,
                        joined=frozenset(new - old),
                        left=frozenset(old - new),
                    )
                    changes.append(change)
                    self._clusters[(node, level)] = new
        self._events.extend(changes)
        return changes, len(touched)

    def process_stream(self, stream: ActivationStream) -> List[ClusterChange]:
        """Feed a whole stream batch-by-timestamp; returns all changes."""
        all_changes: List[ClusterChange] = []
        for _, batch in stream.batches_by_timestamp():
            all_changes.extend(self.process_batch(batch))
        return all_changes

    @property
    def events(self) -> List[ClusterChange]:
        """Every change emitted since construction (chronological)."""
        return list(self._events)

    def drain_events(self) -> List[ClusterChange]:
        """Return and clear the accumulated events."""
        out = list(self._events)
        self._events.clear()
        return out
