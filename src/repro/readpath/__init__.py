"""Read-path routing tier over the replica fleet (docs/replication.md).

``repro.readpath`` turns PR 5's warm standbys into serving capacity: a
:class:`ReadRouter` sends writes to the primary and fans snapshot reads
across the follower fleet under explicit consistency bounds — session
tokens for read-your-writes, ``max_staleness`` for bounded staleness —
degrading to the primary under a budget and to a typed ``RETRY_AFTER``
after that, never to silently-stale data.
"""

from .router import ReadRouter, ReadRouterConfig, Upstream

__all__ = ["ReadRouter", "ReadRouterConfig", "Upstream"]
