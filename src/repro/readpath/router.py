"""The read-path router: lag-aware reads over a primary + follower fleet.

The router speaks the **same TCP/JSON-lines protocol** as a single
:class:`~repro.service.server.ANCServer` — clients built against
:mod:`repro.service.client` work unchanged.  Per request it either
*routes a read* (``clusters`` / ``local`` / ``watch`` go to a follower
picked by lag-aware weighted round-robin) or *passes through* to the
primary (ingest, ``sync``, admin — anything that must see the writable
head).

Consistency contract (docs/replication.md § Read routing):

* the client's session ``token`` (its last write's ``seq + 1``) rides
  the request; the serving node refuses with a typed ``STALE`` unless
  its applied watermark has passed it — the router then tries the next
  follower or the primary, so a read is never *silently* older than the
  session's own writes;
* ``max_staleness`` (the router's configured bound, tightened by a
  per-request field) bounds how many records a serving follower may
  trail the primary by, enforced by the follower against its own
  replication lag;
* the **degradation ladder**: eligible follower → next follower (on
  ``STALE`` / transport failure / open breaker) → primary under a
  token-bucket read budget → typed ``RETRY_AFTER``.  The rungs are all
  typed; none of them is "serve old data and hope".

Fleet awareness: a heartbeat loop pings every upstream (role + epoch +
applied from the envelope) and reads the primary's ``replicas`` op —
the same per-follower applied/lag bookkeeping behind the PR 5
``replica_lag_<id>`` gauges — both to compute follower lag and to
**auto-register** followers whose replica id is a ``host:port`` (the
server's default).  Failover needs no router restart: ``promote`` /
``fence`` are observed through envelope epochs and roles, and the
router re-resolves the primary as the node claiming ``primary`` at the
highest epoch that is not fenced.

Envelope conventions: responses are stamped ``role="readpath-router"``,
``epoch=0`` (a router never participates in fencing — epoch 0 is below
every real epoch, so client stale-epoch rotation never arms against
it) and ``followers=N`` (live follower count).
"""

from __future__ import annotations

import asyncio
import json
import logging
import re
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..obs.propagate import TraceContext, current_context
from ..obs.trace import Observability, Tracer
from ..service.client import CircuitBreaker
from ..service.errors import (
    BadRequest,
    Overloaded,
    ServiceFault,
    Unavailable,
    fault_response,
)
from ..obs.instruments import MetricsRegistry

__all__ = ["READ_OPS", "ReadRouter", "ReadRouterConfig", "Upstream"]

log = logging.getLogger("repro.readpath")

_LIMIT = 4 * 1024 * 1024

#: Transport-layer failures that fail one upstream attempt.
_TRANSPORT_ERRORS = (OSError, asyncio.IncompleteReadError, json.JSONDecodeError)

#: Snapshot-read ops fanned across the follower fleet; every other op
#: passes through to the primary.
READ_OPS = frozenset({"clusters", "local", "watch"})

#: ``host:port`` replica ids (the server's default) auto-register.
_ENDPOINT_ID = re.compile(r"^(?P<host>[\w.\-]+):(?P<port>\d{1,5})$")


@dataclass
class ReadRouterConfig:
    """Operational knobs of the read-routing tier."""

    host: str = "127.0.0.1"
    #: Port to bind; 0 picks a free port (read :attr:`ReadRouter.port`).
    port: int = 0
    #: Cadence of the upstream heartbeat (ping + primary ``replicas``).
    heartbeat_interval: float = 0.25
    #: Per-heartbeat deadline; a missed beat marks the upstream down.
    heartbeat_timeout: float = 2.0
    #: Per-attempt deadline of one forwarded request; 0 = no deadline.
    forward_timeout: float = 30.0
    #: Passthrough (write-path) attempts across primary re-resolution.
    primary_attempts: int = 6
    #: Base of the exponential backoff between passthrough attempts.
    retry_backoff: float = 0.05
    #: Router-imposed staleness bound (records behind the primary) for
    #: routed reads; ``None`` = only what the request itself asks for.
    max_staleness: Optional[int] = None
    #: Token-bucket budget for reads shed to the primary when no
    #: follower can serve: sustained reads/second (0 = unlimited).
    primary_read_rate: float = 200.0
    #: Burst capacity of the primary-read bucket.
    primary_read_burst: float = 64.0
    #: ``retry_after`` hint when the ladder ends in a typed shed.
    shed_retry_after: float = 0.1
    #: Consecutive failures that open one upstream's circuit breaker.
    failure_threshold: int = 3
    #: Breaker cooldown before a half-open probe.
    breaker_cooldown: float = 1.0
    #: Idle pooled connections kept per upstream.
    pool_capacity: int = 8
    #: Evict a client whose response write does not drain (0 = never).
    write_timeout: float = 30.0
    #: Span ring-buffer capacity of the router tracer.
    trace_capacity: int = 8192


class Upstream:
    """Router-side state of one fleet node (primary or follower).

    Holds the last envelope facts (role / epoch / applied), the derived
    replication lag, a per-node :class:`CircuitBreaker`, the smooth
    weighted-round-robin credit, and a small pool of idle connections
    (pooling, not one serialized link, so concurrent reads to the same
    follower overlap instead of queueing).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        role: str = "follower",
        failure_threshold: int = 3,
        cooldown: float = 1.0,
        pool_capacity: int = 8,
    ) -> None:
        self.host = str(host)
        self.port = int(port)
        self.role = role
        self.epoch = 0
        self.fenced_by = 0
        #: Applied watermark from the last answer/heartbeat.
        self.applied = 0
        #: Records behind the primary's committed head (heartbeat-fed).
        self.lag = 0
        self.alive = False
        self.reads_served = 0
        self.breaker = CircuitBreaker(
            failure_threshold=failure_threshold, cooldown=cooldown
        )
        #: Smooth-WRR credit (error diffusion; no PRNG).
        self.wrr = 0.0
        self.last_error: Optional[ServiceFault] = None
        self._pool_capacity = max(0, int(pool_capacity))
        self._idle: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        #: Connections currently carrying a request (so shutdown can
        #: abort them; an idle-only sweep would leave a forward parked
        #: against a dead upstream holding its handler open).
        self._inflight: Set[asyncio.StreamWriter] = set()

    @property
    def key(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def fenced(self) -> bool:
        return self.fenced_by > self.epoch

    async def acquire(self) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        """An idle pooled connection, or a fresh one."""
        while self._idle:
            reader, writer = self._idle.pop()
            if not writer.is_closing():
                self._inflight.add(writer)
                return reader, writer
            writer.transport.abort()
        reader, writer = await asyncio.open_connection(
            self.host, self.port, limit=_LIMIT
        )
        self._inflight.add(writer)
        return reader, writer

    def release(
        self, conn: Tuple[asyncio.StreamReader, asyncio.StreamWriter]
    ) -> None:
        """Return a healthy connection to the pool (or drop it)."""
        reader, writer = conn
        self._inflight.discard(writer)
        if len(self._idle) < self._pool_capacity and not writer.is_closing():
            self._idle.append((reader, writer))
        else:
            writer.transport.abort()

    def forget(
        self, conn: Tuple[asyncio.StreamReader, asyncio.StreamWriter]
    ) -> None:
        """Abort a connection that failed mid-request."""
        _reader, writer = conn
        self._inflight.discard(writer)
        writer.transport.abort()

    def abort_pool(self) -> None:
        """Drop every idle connection (the upstream went away)."""
        for _reader, writer in self._idle:
            writer.transport.abort()
        self._idle.clear()

    def abort_connections(self) -> None:
        """Abort everything, idle *and* in flight (router shutdown).

        Failing the in-flight requests is the point: a forward parked
        against a dead upstream would otherwise pin its connection
        handler — and the server's close — for ``forward_timeout``.
        """
        self.abort_pool()
        for writer in list(self._inflight):
            writer.transport.abort()
        self._inflight.clear()

    def status(self) -> Dict[str, object]:
        """This upstream's row in the ``route_status`` admin op."""
        return {
            "role": self.role,
            "epoch": self.epoch,
            "fenced_by": self.fenced_by,
            "applied": self.applied,
            "lag": self.lag,
            "alive": self.alive,
            "breaker": self.breaker.state,
            "reads_served": self.reads_served,
        }


class ReadRouter:
    """Asyncio front tier fanning reads across one replicated fleet."""

    def __init__(
        self,
        primary: Tuple[str, int],
        *,
        followers: Sequence[Tuple[str, int]] = (),
        config: Optional[ReadRouterConfig] = None,
    ) -> None:
        self.config = config or ReadRouterConfig()

        self.metrics = MetricsRegistry()
        self.tracer = Tracer(enabled=False, capacity=self.config.trace_capacity)
        self.obs = Observability(registry=self.metrics, tracer=self.tracer)

        self._upstreams: Dict[str, Upstream] = {}
        self._primary_key = self._register(primary[0], primary[1], role="primary")
        for host, port in followers:
            self._register(host, port, role="follower")

        #: The primary's committed WAL head (from its ``replicas`` op);
        #: follower lag is computed against this watermark.
        self._primary_entries = 0

        # Primary-read token bucket (the shed-to-primary budget).
        self._budget_tokens = float(self.config.primary_read_burst)
        self._budget_stamp = time.monotonic()

        self._refresh_lock = asyncio.Lock()

        self._c_requests = self.metrics.counter("readpath_requests")
        self._c_follower_reads = self.metrics.counter("readpath_follower_reads")
        self._c_primary_reads = self.metrics.counter("readpath_primary_reads")
        self._c_stale_bounces = self.metrics.counter("readpath_stale_bounces")
        self._c_shed = self.metrics.counter("readpath_shed_total")
        self._c_reresolves = self.metrics.counter("readpath_reresolves")
        self._c_passthrough = self.metrics.counter("readpath_passthrough")
        self._c_heartbeats = self.metrics.counter("readpath_heartbeats")
        self._c_upstream_errors = self.metrics.counter("readpath_upstream_errors")
        self._h_forward = self.metrics.histogram("readpath_forward_seconds")
        self.metrics.gauge(
            "readpath_followers_alive",
            lambda: float(len(self._live_followers())),
        )
        self.metrics.gauge(
            "readpath_primary_epoch",
            lambda: float(max((u.epoch for u in self._upstreams.values()), default=0)),
        )
        self.metrics.gauge("readpath_budget_tokens", lambda: self._budget_tokens)

        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._background: List[asyncio.Task] = []
        self._stop = asyncio.Event()
        self._conns: Set[asyncio.StreamWriter] = set()

    # ------------------------------------------------------------------
    # Fleet bookkeeping
    # ------------------------------------------------------------------
    def _register(self, host: str, port: int, *, role: str) -> str:
        """Add one upstream (idempotent); returns its key."""
        key = f"{host}:{int(port)}"
        if key in self._upstreams:
            return key
        up = Upstream(
            host,
            port,
            role=role,
            failure_threshold=self.config.failure_threshold,
            cooldown=self.config.breaker_cooldown,
            pool_capacity=self.config.pool_capacity,
        )
        self._upstreams[key] = up
        slug = re.sub(r"\W", "_", key)
        self.metrics.gauge(
            f"readpath_lag_{slug}",
            lambda k=key: float(self._upstreams[k].lag),  # type: ignore[misc]
        )
        self.metrics.gauge(
            f"readpath_reads_{slug}",
            lambda k=key: float(self._upstreams[k].reads_served),  # type: ignore[misc]
        )
        log.info("registered upstream %s as %s", key, role)
        return key

    def _live_followers(self) -> List[Upstream]:
        return [
            up
            for up in self._upstreams.values()
            if up.role == "follower" and up.alive
        ]

    def _has_followers(self) -> bool:
        return any(up.role == "follower" for up in self._upstreams.values())

    def _current_primary(self) -> Optional[Upstream]:
        """The node claiming ``primary`` at the highest unfenced epoch.

        Role re-resolution after ``promote``/``fence`` lives here: the
        heartbeat (and every forwarded answer) refreshes role/epoch from
        envelopes, and this picks the winner — a deposed-but-answering
        old primary loses to the promoted follower's strictly higher
        epoch, and a fenced node is never selected.
        """
        best: Optional[Upstream] = None
        for up in self._upstreams.values():
            if up.role != "primary" or up.fenced or not up.alive:
                continue
            if best is None or up.epoch > best.epoch:
                best = up
        if best is not None:
            return best
        # Nothing alive claims primary (e.g. before the first heartbeat
        # lands, or mid-failover): fall back to the configured one so
        # the forward itself can discover the truth.
        return self._upstreams.get(self._primary_key)

    def _observe(self, up: Upstream, response: Mapping[str, object]) -> None:
        """Fold one response envelope into the upstream's state."""
        role = response.get("role")
        if isinstance(role, str) and role in ("primary", "follower"):
            if role != up.role:
                self._c_reresolves.inc()
                log.info("upstream %s role %s -> %s", up.key, up.role, role)
            up.role = role
        epoch = response.get("epoch")
        if isinstance(epoch, int):
            up.epoch = max(up.epoch, epoch)
        fenced_by = response.get("fenced_by")
        if isinstance(fenced_by, int):
            up.fenced_by = max(up.fenced_by, fenced_by)
        applied = response.get("applied")
        if isinstance(applied, int):
            up.applied = max(up.applied, applied)
        up.alive = True
        up.last_error = None
        if up.role == "primary":
            self._primary_entries = max(self._primary_entries, up.applied)
        up.lag = (
            0
            if up.role == "primary"
            else max(0, self._primary_entries - up.applied)
        )

    def _note_down(self, up: Upstream, fault: ServiceFault) -> None:
        """One failed upstream exchange: breaker, pool, liveness."""
        self._c_upstream_errors.inc()
        up.breaker.record_failure()
        up.abort_pool()
        up.alive = False
        up.last_error = fault

    # ------------------------------------------------------------------
    # Upstream I/O (pooled)
    # ------------------------------------------------------------------
    async def _upstream_request(
        self,
        up: Upstream,
        payload: Mapping[str, object],
        *,
        timeout: Optional[float] = None,
        record: bool = True,
    ) -> Dict[str, object]:
        """One request over a pooled connection; returns the raw envelope.

        Transport failures raise (the caller decides the next rung); a
        request cancelled or failed mid-flight aborts its connection so
        a late response can never be read by the next request.
        ``record=False`` keeps background probes (heartbeats, fleet
        polls) out of the forward histogram, which measures only
        client-driven forwards.
        """
        if self._stop.is_set():
            # Shutdown already aborted the upstream connections; starting
            # another rung here would only re-park the handler.
            raise Unavailable("read router is shutting down")
        data = json.dumps(payload).encode() + b"\n"
        deadline = timeout if timeout is not None else self.config.forward_timeout
        reader, writer = await asyncio.wait_for(up.acquire(), deadline or None)
        # The forward histogram times the upstream wire round-trip —
        # request bytes out to response bytes in, i.e. what the upstream
        # and the network cost — not this router's own encode/decode CPU.
        started = time.monotonic()
        try:
            writer.write(data)
            await asyncio.wait_for(writer.drain(), deadline or None)
            line = await asyncio.wait_for(reader.readline(), deadline or None)
        except BaseException:
            up.forget((reader, writer))
            raise
        if record:
            self._h_forward.observe(time.monotonic() - started)
        if not line:
            up.forget((reader, writer))
            raise ConnectionResetError(
                f"upstream {up.key} closed the connection mid-request"
            )
        try:
            response = json.loads(line)
        except json.JSONDecodeError:
            up.forget((reader, writer))
            raise
        if not isinstance(response, dict):
            up.forget((reader, writer))
            raise ConnectionResetError(
                f"upstream {up.key} sent a non-object response"
            )
        up.release((reader, writer))
        return response

    async def _forward(
        self, up: Upstream, payload: Mapping[str, object]
    ) -> Dict[str, object]:
        """Forward with trace propagation; folds the envelope in."""
        op = str(payload.get("op"))
        with self.tracer.wire_span("readpath.forward", op=op, upstream=up.key):
            bound = current_context()
            if bound is not None:
                payload = {**payload, "trace": bound.to_wire()}
            response = await self._upstream_request(up, payload)
        self._observe(up, response)
        return response

    # ------------------------------------------------------------------
    # Heartbeats + follower auto-registration
    # ------------------------------------------------------------------
    async def _refresh_once(self) -> None:
        """Ping every upstream; learn the fleet from the primary."""
        async with self._refresh_lock:
            self._c_heartbeats.inc()
            for up in list(self._upstreams.values()):
                try:
                    response = await self._upstream_request(
                        up,
                        {"op": "ping"},
                        timeout=self.config.heartbeat_timeout,
                        record=False,
                    )
                except asyncio.TimeoutError:
                    self._note_down(
                        up, Unavailable(f"heartbeat to {up.key} timed out")
                    )
                    continue
                except _TRANSPORT_ERRORS as exc:
                    self._note_down(
                        up, Unavailable(f"heartbeat to {up.key} failed: {exc}")
                    )
                    continue
                self._observe(up, response)
                up.breaker.record_success()
            await self._learn_fleet()

    async def _learn_fleet(self) -> None:
        """Read the primary's ``replicas`` view: lag facts + new followers.

        The per-follower ``applied`` here is the same bookkeeping behind
        the primary's ``replica_lag_<id>`` gauges; ids shaped like
        ``host:port`` (the server's default ``replica_id``) are
        auto-registered as routable followers.
        """
        primary = self._current_primary()
        if primary is None or not primary.alive:
            return
        try:
            response = await self._upstream_request(
                primary,
                {"op": "replicas"},
                timeout=self.config.heartbeat_timeout,
                record=False,
            )
        except asyncio.TimeoutError:
            self._note_down(
                primary, Unavailable(f"replicas poll of {primary.key} timed out")
            )
            return
        except _TRANSPORT_ERRORS as exc:
            self._note_down(
                primary, Unavailable(f"replicas poll of {primary.key} failed: {exc}")
            )
            return
        if not response.get("ok", False):
            return
        entries = response.get("entries")
        if isinstance(entries, int):
            self._primary_entries = max(self._primary_entries, entries)
        replicas = response.get("replicas")
        if not isinstance(replicas, Mapping):
            return
        for replica_id, info in replicas.items():
            match = _ENDPOINT_ID.match(str(replica_id))
            if match is not None and str(replica_id) not in self._upstreams:
                self._register(
                    match.group("host"), int(match.group("port")), role="follower"
                )
            up = self._upstreams.get(str(replica_id))
            if up is None or not isinstance(info, Mapping):
                continue
            applied = info.get("applied")
            if isinstance(applied, int):
                up.applied = max(up.applied, applied)
            up.lag = max(0, self._primary_entries - up.applied)

    async def _heartbeat_loop(self, interval: float) -> None:
        while True:
            await asyncio.sleep(interval)
            await self._refresh_once()

    # ------------------------------------------------------------------
    # The read path
    # ------------------------------------------------------------------
    def _effective_staleness(self, request: Mapping[str, object]) -> Optional[int]:
        """The tighter of the router's bound and the request's own."""
        bound = self.config.max_staleness
        asked = request.get("max_staleness")
        if isinstance(asked, int):
            bound = asked if bound is None else min(bound, asked)
        return bound

    def _follower_order(self, required: int) -> List[Upstream]:
        """Live followers in lag-aware smooth-WRR order.

        Weight is ``1 / (1 + lag)``; every candidate accrues its weight
        and the winner pays the round's total — deterministic smooth
        weighted round-robin (no PRNG).  Followers known to satisfy the
        session token sort ahead of ones last seen behind it (they may
        have caught up since, so they stay in the list as fallbacks).
        """
        followers = [
            up for up in self._live_followers() if up.breaker.allow()
        ]
        if not followers:
            return []
        total = 0.0
        for up in followers:
            weight = 1.0 / (1.0 + max(0, up.lag))
            total += weight
            up.wrr += weight
        followers.sort(
            key=lambda u: (u.applied < required, -u.wrr, u.key)
        )
        followers[0].wrr -= total
        return followers

    def _budget_take(self) -> bool:
        """One token from the primary-read bucket (True = spend it)."""
        rate = self.config.primary_read_rate
        if rate <= 0:
            return True
        now = time.monotonic()
        self._budget_tokens = min(
            float(self.config.primary_read_burst),
            self._budget_tokens + (now - self._budget_stamp) * rate,
        )
        self._budget_stamp = now
        if self._budget_tokens >= 1.0:
            self._budget_tokens -= 1.0
            return True
        return False

    async def _route_read(self, request: Dict) -> Dict[str, object]:
        """The degradation ladder behind every routed snapshot read."""
        token = request.get("token")
        required = int(token) if isinstance(token, int) else 0
        payload = {k: v for k, v in request.items() if k not in ("id", "trace")}
        bound = self._effective_staleness(request)
        if bound is not None:
            payload["max_staleness"] = bound
        stale_doc: Optional[Dict[str, object]] = None

        for up in self._follower_order(required):
            try:
                response = await self._forward(up, payload)
            except asyncio.TimeoutError:
                self._note_down(up, Unavailable(f"read on {up.key} timed out"))
                continue
            except _TRANSPORT_ERRORS as exc:
                self._note_down(
                    up, Unavailable(f"read on {up.key} failed: {exc}")
                )
                continue
            up.breaker.record_success()
            if response.get("ok", False):
                up.reads_served += 1
                self._c_follower_reads.inc()
                response["served_by"] = up.key
                return response
            error_type = str(response.get("error_type", ""))
            if error_type == "STALE":
                # Typed bounce, never a silent downgrade: remember the
                # freshest refusal and try the next rung.
                self._c_stale_bounces.inc()
                stale_doc = response
                continue
            if error_type in (
                "FENCED",
                "READ_ONLY",
                "DIVERGED",
                "RETRY_AFTER",
                "UNAVAILABLE",
            ):
                # This follower cannot serve (role confusion, diverged
                # state, shedding, or mid-shutdown); the envelope already
                # updated our view of it.  Next rung.
                continue
            # Anything else (BAD_REQUEST, ...) is the client's to see.
            return response

        # All followers exhausted: shed to the primary under the budget.
        primary = self._current_primary()
        if primary is not None and (
            not self._has_followers() or self._budget_take()
        ):
            try:
                response = await self._forward(primary, payload)
            except asyncio.TimeoutError:
                self._note_down(
                    primary, Unavailable(f"read on {primary.key} timed out")
                )
            except _TRANSPORT_ERRORS as exc:
                self._note_down(
                    primary, Unavailable(f"read on {primary.key} failed: {exc}")
                )
            else:
                primary.breaker.record_success()
                if response.get("ok", False):
                    primary.reads_served += 1
                    self._c_primary_reads.inc()
                    response["served_by"] = primary.key
                    return response
                if str(response.get("error_type", "")) == "STALE":
                    # A deposed primary behind the session token still
                    # answers *typed*; surface its watermark.
                    self._c_stale_bounces.inc()
                    stale_doc = response
                else:
                    return response

        self._c_shed.inc()
        if stale_doc is not None:
            # Every rung refused with a typed STALE: hand the freshest
            # refusal (watermark included) to the client, which retries
            # with backoff.
            return stale_doc
        raise Overloaded(
            "no follower can serve within the staleness bound and the "
            "primary read budget is exhausted; retry shortly",
            retry_after=self.config.shed_retry_after,
        )

    # ------------------------------------------------------------------
    # The write/admin passthrough
    # ------------------------------------------------------------------
    async def _op_passthrough(self, request: Dict) -> Dict[str, object]:
        """Forward to the current primary, re-resolving roles on refusal.

        Survives ``promote``/``fence`` mid-stream: a ``FENCED`` /
        ``READ_ONLY`` refusal or a dead primary triggers a fleet refresh
        and the retry lands on whichever node now claims the highest
        epoch — the client never has to know a failover happened.
        """
        payload = {k: v for k, v in request.items() if k not in ("id", "trace")}
        attempts = max(1, self.config.primary_attempts)
        last_fault: Optional[ServiceFault] = None
        for attempt in range(attempts):
            if attempt > 0:
                await asyncio.sleep(
                    self.config.retry_backoff * (2 ** (attempt - 1))
                )
                await self._refresh_once()
            primary = self._current_primary()
            if primary is None:
                last_fault = Unavailable("no primary known to the read router")
                continue
            try:
                response = await self._forward(primary, payload)
            except asyncio.TimeoutError:
                self._note_down(
                    primary,
                    Unavailable(f"primary {primary.key} timed out"),
                )
                last_fault = primary.last_error
                continue
            except _TRANSPORT_ERRORS as exc:
                self._note_down(
                    primary,
                    Unavailable(f"primary {primary.key} unreachable: {exc}"),
                )
                last_fault = primary.last_error
                continue
            primary.breaker.record_success()
            if response.get("ok", False):
                self._c_passthrough.inc()
                return response
            error_type = str(response.get("error_type", ""))
            if error_type in ("FENCED", "READ_ONLY", "UNAVAILABLE"):
                self._c_reresolves.inc()
                if error_type == "READ_ONLY":
                    # The node told us outright it is a follower.
                    primary.role = "follower"
                last_fault = Unavailable(
                    f"{primary.key} refused with {error_type}; "
                    f"re-resolving the primary"
                )
                continue
            # Typed server error (RETRY_AFTER, BAD_REQUEST, ...): the
            # client's to handle.
            return response
        if last_fault is None:
            last_fault = Unavailable("primary passthrough failed")
        raise last_fault

    # ------------------------------------------------------------------
    # Router-local ops
    # ------------------------------------------------------------------
    async def _op_read(self, request: Dict) -> Dict[str, object]:
        return await self._route_read(request)

    async def _op_metrics(self, request: Dict) -> Dict[str, object]:
        rate_key = request.get("rate_key")
        return {
            "metrics": self.metrics.snapshot(
                rate_key=str(rate_key) if rate_key is not None else None
            )
        }

    async def _op_metrics_text(self, request: Dict) -> Dict[str, object]:
        from ..obs.export import render_prometheus

        namespace = str(request.get("namespace", "anc"))
        return {"text": render_prometheus(self.metrics, namespace=namespace)}

    async def _op_route_status(self, request: Dict) -> Dict[str, object]:
        """The router's live view of the fleet (CLI + CI smoke)."""
        primary = self._current_primary()
        return {
            "primary": primary.key if primary is not None else None,
            "entries": self._primary_entries,
            "followers_alive": len(self._live_followers()),
            "budget_tokens": round(self._budget_tokens, 3),
            "max_staleness": self.config.max_staleness,
            "upstreams": {
                key: up.status() for key, up in sorted(self._upstreams.items())
            },
        }

    async def _op_shutdown(self, request: Dict) -> Dict[str, object]:
        self.request_stop()
        return {"stopping": True}

    _OPS: Dict[str, Callable] = {
        "clusters": _op_read,
        "local": _op_read,
        "watch": _op_read,
        "metrics": _op_metrics,
        "metrics_text": _op_metrics_text,
        "route_status": _op_route_status,
        "shutdown": _op_shutdown,
    }

    # ------------------------------------------------------------------
    # Lifecycle (mirrors ANCServer so CLI/bench harnesses carry over)
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Probe the fleet once, then bind and start heartbeating."""
        await self._refresh_once()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=_LIMIT,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.heartbeat_interval > 0:
            self._background.append(
                asyncio.create_task(
                    self._heartbeat_loop(self.config.heartbeat_interval)
                )
            )
        log.info(
            "read router serving on %s:%d (%d upstreams, %d live followers)",
            self.config.host,
            self.port,
            len(self._upstreams),
            len(self._live_followers()),
        )

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._stop.wait()
        await self._shutdown()

    async def run(self, *, announce: Optional[Callable[[str], object]] = None) -> None:
        """Start, announce ``SERVING <host> <port>``, serve until stopped."""
        await self.start()
        emit = announce if announce is not None else lambda line: print(line, flush=True)
        for key, up in sorted(self._upstreams.items()):
            emit(f"UPSTREAM {up.role} {key}")
        emit(f"SERVING {self.config.host} {self.port}")
        await self.serve_forever()

    def request_stop(self) -> None:
        self._stop.set()

    async def stop(self) -> None:
        self.request_stop()
        if self._server is not None:
            await self._shutdown()

    async def _shutdown(self) -> None:
        if self._server is None:
            return
        server, self._server = self._server, None
        server.close()
        # Fail the in-flight work *before* waiting for the server: on
        # 3.11 ``wait_closed()`` blocks until every connection handler
        # returns, and a handler can be parked in a forward against a
        # dead upstream for the whole ``forward_timeout``.  Aborting the
        # upstream connections snaps those forwards (the stop-check in
        # ``_upstream_request`` keeps the ladder from re-parking), and
        # aborting the client transports unblocks handlers mid-read.
        for up in self._upstreams.values():
            up.abort_connections()
        for writer in list(self._conns):
            writer.transport.abort()
        try:
            await asyncio.wait_for(server.wait_closed(), timeout=5.0)
        except asyncio.TimeoutError:
            log.warning(
                "read-router connections did not drain within 5s; "
                "abandoning them"
            )
        for task in self._background:
            task.cancel()
        for task in self._background:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._background.clear()

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._conns.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                response = await self._handle_request(line)
                writer.write(json.dumps(response).encode() + b"\n")
                try:
                    await asyncio.wait_for(
                        writer.drain(), self.config.write_timeout or None
                    )
                except asyncio.TimeoutError:
                    log.warning("evicting slow read-router client")
                    writer.transport.abort()
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):  # anclint: disable=service-exception-discipline — peer went away mid-conversation; closing our side below is the handling
            pass
        finally:
            self._conns.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # anclint: disable=service-exception-discipline — close handshake racing the peer's reset; nothing to map
                pass

    async def _handle_request(self, raw: bytes) -> Dict[str, object]:
        request_id: object = None
        self._c_requests.inc()
        try:
            request = json.loads(raw)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            request_id = request.get("id")
            op = request.get("op")
            if not isinstance(op, str):
                raise BadRequest(f"request needs a string 'op', got {op!r}")
            handler = self._OPS.get(op, ReadRouter._op_passthrough)
            ctx = TraceContext.from_wire(request.get("trace"))
            with self.tracer.wire_span(f"readpath.{op}", ctx, op=op):
                response = await handler(self, request)
            response.setdefault("ok", True)
        except Exception as exc:  # protocol boundary: map to a typed envelope
            response = fault_response(exc)
        # Router envelope: epoch 0 never trips client fencing heuristics
        # (module docstring); ``followers`` advertises live capacity.
        response["epoch"] = 0
        response["role"] = "readpath-router"
        response["followers"] = len(self._live_followers())
        if request_id is not None:
            response["id"] = request_id
        return response
