"""Failover orchestration: fence the deposed primary, promote a follower.

:func:`promote` is the runbook behind ``repro-anc promote``:

1. **Fence** the old primary at ``epoch + 1`` (best-effort — the usual
   reason to fail over is that the primary is already dead). A fenced
   primary refuses every further write down in the WAL itself, so no
   in-flight handler can commit a record the promoted follower never
   sees (split-brain prevention).
2. **Drain**: wait for the follower to apply every record the fenced
   primary had committed. Skipped when the primary was unreachable —
   the follower's recovered log is then the authoritative prefix.
3. **Promote** the follower under an epoch strictly above both nodes';
   it re-opens its WAL for writes, stamps the new epoch on every
   subsequent record, and starts answering ingest.

Everything speaks the ordinary blocking :class:`ServiceClient`, so the
helper works from the CLI, from tests, and from the chaos harness alike.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

from ..service.client import RetryPolicy, ServiceClient, ServiceError
from .link import ReplicationError

__all__ = ["promote", "replication_status"]

Endpoint = Tuple[str, int]


def _client(endpoint: Endpoint, timeout: float) -> ServiceClient:
    return ServiceClient(
        endpoint[0],
        int(endpoint[1]),
        timeout=timeout,
        retry=RetryPolicy(attempts=2, base_delay=0.05),
    )


def promote(
    follower: Endpoint,
    *,
    old_primary: Optional[Endpoint] = None,
    timeout: float = 5.0,
    catchup_timeout: float = 10.0,
) -> Dict[str, object]:
    """Fence ``old_primary`` (if reachable) and promote ``follower``.

    Returns a summary dict: the promoted endpoint, its new epoch,
    whether the old primary was actually fenced, and the committed
    entry count the follower was required to reach before promotion.

    Raises :class:`ReplicationError` when the follower cannot drain the
    fenced primary's committed log within ``catchup_timeout`` — the
    operator must not promote a follower missing acknowledged writes.
    """
    old_epoch = 0
    old_entries: Optional[int] = None
    fenced = False
    if old_primary is not None:
        try:
            with _client(old_primary, timeout) as old:
                ping = old.ping()
                old_epoch = int(ping.get("epoch", 0))  # type: ignore[arg-type]
                old.request("fence", epoch=old_epoch + 1, idempotent=False)
                old_entries = int(  # type: ignore[arg-type]
                    old.stats().get("wal_entries", 0)
                )
                fenced = True
        except (ServiceError, OSError):  # anclint: disable=service-exception-discipline — a dead primary is the *expected* failover trigger; fencing is best-effort and the summary records fenced_old=False
            pass
    with _client(follower, timeout) as target:
        ping = target.ping()
        follower_epoch = int(ping.get("epoch", 0))  # type: ignore[arg-type]
        if fenced and old_entries is not None:
            _wait_caught_up(target, old_entries, catchup_timeout)
        new_epoch = max(old_epoch, follower_epoch) + 1
        resp = target.request("promote", epoch=new_epoch, idempotent=False)
        return {
            "promoted": f"{follower[0]}:{follower[1]}",
            "epoch": int(resp.get("epoch", new_epoch)),  # type: ignore[arg-type]
            "fenced_old": fenced,
            "old_epoch": old_epoch,
            "old_entries": old_entries,
        }


def _wait_caught_up(
    target: ServiceClient, entries: int, catchup_timeout: float
) -> None:
    deadline = time.monotonic() + catchup_timeout
    while True:
        stats = target.stats()
        applied = int(stats.get("wal_entries", stats.get("ingested", 0)))  # type: ignore[arg-type]
        if applied >= entries:
            return
        if time.monotonic() >= deadline:
            raise ReplicationError(
                f"follower stuck at {applied}/{entries} committed records "
                f"after {catchup_timeout:.1f}s; refusing to promote it"
            )
        time.sleep(0.05)


def replication_status(
    endpoint: Endpoint, *, timeout: float = 5.0
) -> Dict[str, object]:
    """One node's view of the topology (the ``repro-anc replicas`` body)."""
    with _client(endpoint, timeout) as client:
        resp = client.request("replicas")
        return {
            "endpoint": f"{endpoint[0]}:{endpoint[1]}",
            "role": resp.get("role"),
            "epoch": resp.get("epoch"),
            "entries": resp.get("entries"),
            "replicas": resp.get("replicas", {}),
        }
