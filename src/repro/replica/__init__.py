"""Primary→standby replication for the clustering service.

The paper's incremental index maintenance (per-activation updates up to
six orders of magnitude cheaper than rebuilds) only pays off while the
incrementally-maintained state survives — PR 4 made one node crash-safe,
and this package removes the node itself as the single point of failure:

* a **primary** (an ordinary :class:`~repro.service.server.ANCServer`)
  streams its committed WAL records to followers through the same
  JSON-lines protocol (``wal_fetch`` / ``replica_ack`` ops);
* a **follower** (:class:`ReplicationLink`) bootstraps from the latest
  checkpoint + WAL tail, applies records through its own engine host,
  serves read-only snapshot queries, and continuously audits its engine
  signature against the primary's;
* **failover** (:func:`promote`) fences the deposed primary by epoch and
  promotes a caught-up follower; the hardened client fails over across a
  multi-endpoint list.

Topology, epoch/fencing semantics, lag metrics and the promote runbook
are documented in ``docs/replication.md``.
"""

from .admin import promote, replication_status
from .link import ReplicationError, ReplicationLink

__all__ = [
    "ReplicationError",
    "ReplicationLink",
    "promote",
    "replication_status",
]
