"""The follower side of WAL-shipping replication.

:class:`ReplicationLink` runs inside the follower's event loop (started
by :meth:`ANCServer.start` when the server is configured with
``role="follower"`` and a primary endpoint). Its whole life is one loop:

    fetch a chunk of committed WAL records from the primary
      → verify the chunk is a contiguous extension of our log
      → apply each record through :meth:`ANCServer.apply_replicated`
      → ack our applied watermark (feeds the primary's lag gauges)
      → periodically audit our engine signature against the primary's

The link *pulls*: the primary keeps no per-follower cursor beyond the
lag bookkeeping, so a follower that crashes and restarts simply resumes
fetching from wherever its own recovered WAL ends. Chunks that arrive
reordered or gapped (the ``replica.fetch`` fault site exercises both)
are discarded wholesale and refetched — the WAL's seq contiguity check
makes partial application impossible, so discarding is always safe.

Divergence auditing compares :func:`~repro.service.snapshots.signature_digest`
values, but only when both sides report the same applied count — a lagging
follower is *behind*, not *wrong*. A genuine mismatch trips the server's
sticky ``diverged`` state: the follower keeps replicating (so the operator
can inspect how the logs disagree) but refuses snapshot queries.
"""

from __future__ import annotations

import asyncio
import json
import logging
from typing import Dict, List, Optional, Tuple

from ..core.activation import Activation
from ..obs.propagate import TraceContext, current_context, new_span_id
from ..service.snapshots import WalRecord

log = logging.getLogger("repro.replica")

__all__ = ["ReplicationError", "ReplicationLink"]


class ReplicationError(RuntimeError):
    """A replication-protocol violation (refused fetch, stale primary...).

    Raised inside the link's session loop and handled there: the session
    is torn down and retried after ``reconnect_backoff``. It never
    propagates out of :meth:`ReplicationLink.run`.
    """


def _decode_record(raw: object) -> WalRecord:
    """Decode one ``wal_fetch`` wire record ``[seq, u, v, t, epoch, key]``."""
    if not isinstance(raw, (list, tuple)) or len(raw) != 6:
        raise ReplicationError(f"malformed wal_fetch record: {raw!r}")
    seq, u, v, t, epoch, key = raw
    try:
        return WalRecord(
            int(seq),  # type: ignore[arg-type]
            Activation(int(u), int(v), float(t)),  # type: ignore[arg-type]
            int(epoch),  # type: ignore[arg-type]
            key if isinstance(key, str) and key else None,
        )
    except (TypeError, ValueError) as exc:
        raise ReplicationError(f"malformed wal_fetch record: {raw!r}") from exc


class ReplicationLink:
    """Pull committed WAL records from a primary into a follower server.

    Parameters
    ----------
    server:
        The follower's :class:`~repro.service.server.ANCServer`. The link
        reads ``server.role`` / ``server.crashed`` to know when to stop
        and applies records via ``server.apply_replicated``.
    primary:
        ``(host, port)`` of the primary to replicate from.
    replica_id:
        Identity sent with every fetch/ack; keys the primary's
        per-follower lag gauge.
    """

    def __init__(
        self,
        server: "object",
        primary: Tuple[str, int],
        *,
        replica_id: str,
        poll_interval: float = 0.02,
        fetch_max: int = 512,
        audit_interval: float = 0.25,
        reconnect_backoff: float = 0.2,
    ) -> None:
        from ..service.server import ANCServer  # deferred: server imports us lazily

        if not isinstance(server, ANCServer):
            raise TypeError("ReplicationLink needs an ANCServer")
        self.server = server
        self.primary = (str(primary[0]), int(primary[1]))
        self.replica_id = replica_id
        self.poll_interval = float(poll_interval)
        self.fetch_max = max(1, int(fetch_max))
        self.audit_interval = float(audit_interval)
        self.reconnect_backoff = float(reconnect_backoff)
        self._stopped = False
        self._last_audit = 0.0
        self._primary_entries = 0
        # Deterministic trace roots for the replication lane: one
        # context per fetch, sampled by the follower tracer's fraction
        # through an error-diffusion accumulator (no PRNG).
        self._trace_seq = 0
        self._trace_acc = 0.0
        m = server.metrics
        self._c_applied = m.counter("replica_records_applied")
        self._c_refetches = m.counter("replica_refetches")
        self._c_errors = m.counter("replica_link_errors")
        self._c_audits = m.counter("replica_audits")
        m.gauge("replication_lag", self._lag)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Ask the link to exit its loop (promotion calls this)."""
        self._stopped = True

    def _active(self) -> bool:
        return (
            not self._stopped
            and self.server.role == "follower"
            and not self.server.crashed
        )

    def _lag(self) -> float:
        return float(max(0, self._primary_entries - self.server.host.ingested))

    @property
    def lag(self) -> int:
        """Records this follower trails the primary's committed head by.

        Computed against the ``entries`` watermark of the *last
        successful fetch* — the same number the ``replication_lag``
        gauge publishes.  The server's ``max_staleness`` read-bound
        check (docs/replication.md § Read routing) consumes this.
        """
        return int(self._lag())

    async def run(self) -> None:
        """Reconnect loop: run sessions until stopped/promoted/crashed."""
        while self._active():
            try:
                await self._session()
            except asyncio.CancelledError:
                raise
            except (
                OSError,
                ConnectionError,
                EOFError,
                asyncio.IncompleteReadError,
                json.JSONDecodeError,
                ReplicationError,
            ) as exc:
                if not self._active():
                    break
                self._c_errors.inc()
                log.warning(
                    "replication session to %s:%d failed (%s); reconnecting",
                    self.primary[0],
                    self.primary[1],
                    exc,
                )
            except Exception as exc:  # anclint: disable=service-exception-discipline — an injected crash in apply_replicated already crashed the server (checked below); anything else is logged and retried because a follower must outlive a flaky primary
                if not self._active():
                    break
                self._c_errors.inc()
                log.warning("replication session error (%s); reconnecting", exc)
            if self._active():
                await asyncio.sleep(self.reconnect_backoff)
        log.info("replication link to %s:%d stopped", *self.primary)

    # ------------------------------------------------------------------
    # One connection's worth of work
    # ------------------------------------------------------------------
    async def _session(self) -> None:
        reader, writer = await asyncio.open_connection(*self.primary)
        try:
            while self._active():
                progressed = await self._fetch_once(reader, writer)
                await self._maybe_audit(reader, writer)
                if not progressed and self._active():
                    await asyncio.sleep(self.poll_interval)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):  # anclint: disable=service-exception-discipline — the peer may have reset first; the socket is gone either way
                pass

    async def _request(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        doc: Dict[str, object],
    ) -> Dict[str, object]:
        writer.write(json.dumps(doc).encode("utf-8") + b"\n")
        await writer.drain()
        line = await reader.readline()
        if not line:
            raise ReplicationError("primary closed the connection mid-request")
        decoded = json.loads(line.decode("utf-8"))
        if not isinstance(decoded, dict):
            raise ReplicationError(f"malformed response: {decoded!r}")
        return decoded

    def _mint_trace(self) -> Optional[TraceContext]:
        """A root trace context for one fetch (None = tracing off).

        Armed by enabling the *follower's* tracer: each fetch then
        carries a ``trace`` envelope sampled at the tracer's fraction,
        so the primary's ``server.wal_fetch`` span lands in the same
        trace as the follower's ``replica.wal_fetch`` — the
        follower → primary lane of a fleet trace.
        """
        tracer = self.server.tracer
        if not tracer.enabled:
            return None
        self._trace_seq += 1
        self._trace_acc += tracer.sample
        sampled = self._trace_acc >= 1.0 - 1e-12
        if sampled:
            self._trace_acc -= 1.0
        trace_id = f"{self.replica_id}:wal:{self._trace_seq:x}"
        return TraceContext(trace_id, new_span_id(), sampled)

    async def _fetch_once(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """Fetch + apply one chunk. Returns True when progress was made."""
        start = self.server.host.ingested
        doc: Dict[str, object] = {
            "op": "wal_fetch",
            "from_seq": start,
            "max": self.fetch_max,
            "follower": self.replica_id,
        }
        ctx = self._mint_trace()
        if ctx is None:
            resp = await self._request(reader, writer, doc)
        else:
            with self.server.tracer.wire_span(
                "replica.wal_fetch", ctx, from_seq=start
            ):
                bound = current_context()
                if bound is not None:
                    doc["trace"] = bound.to_wire()
                resp = await self._request(reader, writer, doc)
        if not resp.get("ok", False):
            raise ReplicationError(
                f"wal_fetch refused: {resp.get('error_type')}: {resp.get('error')}"
            )
        self._primary_entries = int(resp.get("entries", 0))  # type: ignore[arg-type]
        peer_epoch = int(resp.get("epoch", 0))  # type: ignore[arg-type]
        if peer_epoch and peer_epoch < self.server.epoch:
            # A deposed primary still answering: its *committed* prefix is
            # legal to consume, but our own epoch can only come from the
            # records themselves — refusing here keeps a stale node from
            # feeding us anything past the fence (apply_replicated would
            # also refuse, record by record).
            raise ReplicationError(
                f"primary at stale epoch {peer_epoch} < ours {self.server.epoch}"
            )
        raw = resp.get("records")
        if not isinstance(raw, list) or not raw:
            return False
        records: List[WalRecord] = [_decode_record(r) for r in raw]
        if [r.seq for r in records] != list(range(start, start + len(records))):
            # Gapped or reordered chunk (e.g. the replica.fetch "reorder"
            # injector). Nothing was applied — discard and refetch.
            self._c_refetches.inc()
            log.warning(
                "discarding non-contiguous chunk from seq %d (%d records)",
                start,
                len(records),
            )
            return True
        for record in records:
            await self.server.apply_replicated(record)
        self._c_applied.inc(len(records))
        await self._request(
            reader,
            writer,
            {
                "op": "replica_ack",
                "follower": self.replica_id,
                "applied": self.server.host.ingested,
            },
        )
        return True

    # ------------------------------------------------------------------
    # Divergence auditing
    # ------------------------------------------------------------------
    async def _maybe_audit(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        if self.audit_interval <= 0:
            return
        now = asyncio.get_running_loop().time()
        if now - self._last_audit < self.audit_interval:
            return
        self._last_audit = now
        resp = await self._request(reader, writer, {"op": "signature"})
        if not resp.get("ok", False):
            # A primary mid-shutdown may refuse; auditing is best-effort.
            return
        ours = await self.server.host.signature()
        self._c_audits.inc()
        if int(resp.get("applied", -1)) != int(  # type: ignore[arg-type]
            ours.get("applied", -2)  # type: ignore[arg-type]
        ):
            return  # lagging, not diverged — compare only like with like
        theirs: Optional[object] = resp.get("digest")
        if isinstance(theirs, str) and theirs != ours.get("digest"):
            self.server.mark_diverged(
                f"signature mismatch at applied={ours.get('applied')}: "
                f"primary {theirs[:12]}… vs follower "
                f"{str(ours.get('digest'))[:12]}…"
            )
