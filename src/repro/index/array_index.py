"""Array-backed pyramid index: batched per-level touch/repair (ROADMAP item 1).

:class:`ArrayPyramidIndex` keeps the :class:`~repro.index.pyramid.PyramidIndex`
contract (and its dict weight table, which persistence and the
consistency checker read) but mirrors every weight into a flat
``List[float]`` indexed by the shared :class:`~repro.core.arrays.EdgeSpace`
edge id, and replaces the per-partition ``apply_weight_change`` dispatch
with an inlined Update-Decrease / Update-Increase that walks the
space's *paired* adjacency slices (``nbr[x][i]`` / ``neid[x][i]``): one
list index per relaxed edge instead of a tuple build plus two dict
probes through the weight closure.

Bit-for-bit parity with :class:`~repro.index.voronoi.VoronoiPartition`
is load-bearing (cluster assignments feed ``engine_signature``); the
inlined loops below replicate the exact probe arithmetic, the
``(dist, seed)`` lexicographic tie-breaks, the stale-pop skips, the
heap push order, and — crucially — the ``_children`` *set mutation
history*, because Update-Increase's subtree BFS iterates those sets and
Python set iteration order depends on the sequence of adds and
discards.  Any behavioral edit to ``voronoi.py`` must be mirrored here
(the ``backend-parity-discipline`` anclint rule holds the line).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from ..core.arrays import EdgeSpace
from ..graph.graph import Edge, Graph, edge_key
from ..graph.traversal import INF
from .pyramid import PyramidIndex
from .voronoi import VoronoiPartition

__all__ = ["ArrayPyramidIndex"]


class ArrayPyramidIndex(PyramidIndex):
    """A :class:`PyramidIndex` whose repair hot path runs over flat arrays.

    The dict ``_weights`` table remains authoritative for persistence
    (checkpoint bytes are produced from its insertion order), for the
    partitions' weight closure (rebuild / consistency checks) and for
    the parallel updater; ``_w`` is the eid-indexed mirror the inlined
    repair reads.  :meth:`_store_weight` is the single mutation point
    that keeps the two in lockstep.
    """

    def __init__(
        self,
        graph: Graph,
        weights: Dict[Edge, float],
        *,
        k: int = 4,
        seed: int = 0,
        support: float = 0.7,
        space: EdgeSpace,
    ) -> None:
        super().__init__(graph, weights, k=k, seed=seed, support=support)
        self._bind_space(space)

    def _bind_space(self, space: EdgeSpace) -> None:
        """Attach the shared edge space and build the flat weight mirror.

        Split out of ``__init__`` so persistence can restore an instance
        via ``__new__`` (filling the base fields first) and then bind.
        """
        self._space = space
        self._w: List[float] = [0.0] * len(space.edges)
        eid = space.eid
        for key, value in self._weights.items():
            self._w[eid[key]] = value
        # The partition set is fixed for the index's lifetime (levels and
        # pyramids never grow); cache the flat list the per-activation
        # repair loop walks.
        self._parts: List[Tuple[int, VoronoiPartition]] = list(
            self.partitions_with_levels()
        )
        # level -> partition count, ascending — the same key-creation
        # order the base per-partition `_record_repair` loop produces
        # (pyramid-major iteration meets each level in ascending order
        # on the first update), so the counter dicts stay key-order
        # identical across backends.
        counts: Dict[int, int] = {}
        for level, _ in self._parts:
            counts[level] = counts.get(level, 0) + 1
        self._level_counts: List[Tuple[int, int]] = sorted(counts.items())
        # True once every level key exists in the counter dicts (after
        # the first recorded update); lets all-no-op updates skip the
        # identity writes to the touched table.
        self._levels_seeded = bool(self.touched_by_level)
        space.add_listener(self._on_edge_added)

    def _on_edge_added(self, e: int, u: int, v: int) -> None:
        if e == len(self._w):
            self._w.append(0.0)

    def _store_weight(self, key: Edge, value: float) -> None:
        super()._store_weight(key, value)
        self._w[self._space.eid[key]] = value

    # ------------------------------------------------------------------
    # Batched repair (inlined Update-Decrease / Update-Increase)
    # ------------------------------------------------------------------
    def update_edge_weight(self, u: int, v: int, new_weight: float) -> int:
        if new_weight <= 0:
            raise ValueError(f"weight must be positive, got {new_weight}")
        key = edge_key(u, v)
        old = self._weights[key]
        if new_weight == old:  # anclint: allow-float-equality — exact no-op guard, mirrors PyramidIndex
            return 0
        self._store_weight(key, new_weight)
        e_uv = self._space.eid[key]
        touched = 0
        moved_at: Optional[Dict[int, int]] = None
        affected_acc = self.affected_since_drain
        w_uv = new_weight
        if new_weight < old:
            for level, part in self._parts:
                # Read-only no-move test: a repair mutates state only if
                # at least one initial probe succeeds, and the second
                # probe sees unmodified state exactly when the first
                # failed — so failing both here proves the full repair
                # would be a no-op for this partition.
                dist = part.dist
                seed = part.seed
                o = seed[v]
                if o >= 0:
                    d = dist[v] + w_uv
                    cur = dist[u]
                    if d < cur or (d == cur and o < seed[u]):
                        moved = self._repair_decrease(part, u, v, e_uv)
                        touched += moved
                        if moved_at is None:
                            moved_at = {level: moved}
                        else:
                            moved_at[level] = moved_at.get(level, 0) + moved
                        affected_acc |= part.last_affected
                        continue
                o = seed[u]
                if o >= 0:
                    d = dist[u] + w_uv
                    cur = dist[v]
                    if d < cur or (d == cur and o < seed[v]):
                        moved = self._repair_decrease(part, u, v, e_uv)
                        touched += moved
                        if moved_at is None:
                            moved_at = {level: moved}
                        else:
                            moved_at[level] = moved_at.get(level, 0) + moved
                        affected_acc |= part.last_affected
                        continue
                part.last_touched = 0
                part.last_affected = set()
        else:
            for level, part in self._parts:
                parent = part.parent
                if parent[u] != v and parent[v] != u:
                    # No tree edge severed: Update-Increase exits before
                    # touching anything.
                    part.last_touched = 0
                    part.last_affected = set()
                    continue
                moved = self._repair_increase(part, u, v)
                touched += moved
                if moved_at is None:
                    moved_at = {level: moved}
                else:
                    moved_at[level] = moved_at.get(level, 0) + moved
                affected_acc |= part.last_affected
        # Batched counter bookkeeping: one pass per level instead of one
        # per partition, with the exact totals the base accounting
        # accumulates (a no-op repair still creates/keeps the level key).
        tbl = self.touched_by_level
        rbl = self.repairs_by_level
        if moved_at is None:
            if self._levels_seeded:
                # All-no-op update past the first: the touched table is
                # unchanged (every increment is +0) — only the dispatch
                # counters move.
                for level, cnt in self._level_counts:
                    rbl[level] = rbl.get(level, 0) + cnt
            else:
                for level, cnt in self._level_counts:
                    tbl[level] = tbl.get(level, 0)
                    rbl[level] = rbl.get(level, 0) + cnt
                self._levels_seeded = True
        else:
            for level, cnt in self._level_counts:
                tbl[level] = tbl.get(level, 0) + moved_at.get(level, 0)
                rbl[level] = rbl.get(level, 0) + cnt
            self._levels_seeded = True
        self.total_touched += touched
        self.update_count += 1
        if new_weight > old:
            self.update_increases += 1
        else:
            self.update_decreases += 1
        return touched

    def _probe_endpoint(
        self, part: VoronoiPartition, a: int, b: int, w_ab: float
    ) -> bool:
        """Inlined ``VoronoiPartition.probe(a, b)`` with the edge weight given."""
        seed = part.seed
        o = seed[b]
        if o < 0:
            return False
        dist = part.dist
        d = dist[b] + w_ab
        cur = dist[a]
        if d < cur or (d == cur and o < seed[a]):
            seed[a] = o
            dist[a] = d
            parent = part.parent
            old = parent[a]
            if old != b:  # replicate _set_parent's children-set op history
                children = part._children
                if old >= 0:
                    children[old].discard(a)
                parent[a] = b
                children[b].add(a)
            return True
        return False

    def _repair_decrease(
        self, part: VoronoiPartition, u: int, v: int, e_uv: int
    ) -> int:
        space = self._space
        w = self._w
        dist = part.dist
        seed = part.seed
        parent = part.parent
        children = part._children
        touched = 0
        affected = set()
        pq: List[Tuple[float, int, int]] = []
        push = heappush
        pop = heappop
        w_uv = w[e_uv]
        # Initial probes, inlined (``VoronoiPartition.probe`` semantics,
        # children-set op history replicated via the _set_parent shape).
        for a_, b_ in ((u, v), (v, u)):
            o = seed[b_]
            if o < 0:
                continue
            d = dist[b_] + w_uv
            cur = dist[a_]
            if d < cur or (d == cur and o < seed[a_]):
                seed[a_] = o
                dist[a_] = d
                old = parent[a_]
                if old != b_:
                    if old >= 0:
                        children[old].discard(a_)
                    parent[a_] = b_
                    children[b_].add(a_)
                affected.add(a_)
                push(pq, (d, o, a_))
        nbr = space.nbr
        neid = space.neid
        while pq:
            d, s, x = pop(pq)
            if d > dist[x] or (d == dist[x] and s > seed[x]):
                continue  # stale entry
            touched += 1
            # dist[x]/seed[x] are stable across x's relaxation loop: the
            # probes below only ever write y-side state (y != x).
            dx = dist[x]
            sx = seed[x]
            for y, ey in zip(nbr[x], neid[x]):
                dy = dx + w[ey]
                cur = dist[y]
                if dy < cur or (dy == cur and sx < seed[y]):
                    seed[y] = sx
                    dist[y] = dy
                    old = parent[y]
                    if old != x:
                        if old >= 0:
                            children[old].discard(y)
                        parent[y] = x
                        children[x].add(y)
                    affected.add(y)
                    push(pq, (dy, sx, y))
        part.last_touched = touched
        part.last_affected = affected
        return touched

    def _repair_increase(self, part: VoronoiPartition, u: int, v: int) -> int:
        space = self._space
        w = self._w
        dist = part.dist
        seed = part.seed
        parent = part.parent
        children = part._children
        if parent[u] == v:
            orphan = u
        elif parent[v] == u:
            orphan = v
        else:
            part.last_touched = 0
            part.last_affected = set()
            return 0
        # Subtree BFS — iterates the children sets exactly as the dict
        # backend does (identical op history ⇒ identical iteration order).
        impacted = [orphan]
        head = 0
        while head < len(impacted):
            for c in children[impacted[head]]:
                impacted.append(c)
            head += 1
        impacted_set = set(impacted)
        nbr = space.nbr
        neid = space.neid
        for x in impacted:
            dist[x] = INF
            seed[x] = -1
            old = parent[x]
            if old != -1:
                if old >= 0:
                    children[old].discard(x)
                parent[x] = -1
        pq: List[Tuple[float, int, int]] = []
        push = heappush
        pop = heappop
        for x in impacted:
            for y in nbr[x]:
                if y not in impacted_set:
                    push(pq, (dist[y], seed[y], y))
        touched = len(impacted)
        while pq:
            d, s, x = pop(pq)
            if d > dist[x] or (d == dist[x] and s > seed[x]):
                continue
            sx = seed[x]
            if sx < 0:
                # Seedless frontier node: every probe from it fails the
                # o < 0 guard, so skipping its loop is an exact shortcut.
                continue
            dx = dist[x]
            for y, ey in zip(nbr[x], neid[x]):
                dy = dx + w[ey]
                cur = dist[y]
                if dy < cur or (dy == cur and sx < seed[y]):
                    seed[y] = sx
                    dist[y] = dy
                    old = parent[y]
                    if old != x:
                        if old >= 0:
                            children[old].discard(y)
                        parent[y] = x
                        children[x].add(y)
                    touched += 1
                    push(pq, (dy, sx, y))
        part.last_touched = touched
        part.last_affected = impacted_set
        return touched

    # ------------------------------------------------------------------
    def on_rescale(self, g: float) -> None:
        factor = 1.0 / g
        weights = self._weights
        for key in weights:
            weights[key] *= factor
        w = self._w
        for i in range(len(w)):
            w[i] *= factor  # INF * factor == INF: unset-dist semantics hold
        for partition in self.partitions():
            partition.absorb_scale(factor)

    def set_all_weights(self, weights: Dict[Edge, float]) -> None:
        super().set_all_weights(weights)
        w = self._w
        for i in range(len(w)):
            w[i] = 0.0
        eid = self._space.eid
        for key, value in self._weights.items():
            w[eid[key]] = value
