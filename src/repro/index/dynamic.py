"""Relation-network growth: inserting new edges into a live index.

The paper fixes the relation network ``E`` and streams activations over
it (the case study stresses "there is no edge/node insertion/deletion").
Real deployments eventually meet a *new* friendship or first-time
collaboration, so this module extends the live structures with edge
insertion — the natural extension the model needs in practice:

* a brand-new edge enters every Voronoi partition as a weight *decrease*
  from +∞, so Algorithm 1 (Update-Decrease) already repairs the
  partitions with the same bounded, affected-set-only cost (Lemma 12);
* the metric side seeds the edge with the model's initial conditions —
  current activeness 1 and current similarity 1, exactly how every
  original edge started at t = 0.

Deletion is intentionally not offered: severing a relationship in an
activation network is modelled by its activeness decaying to nothing,
not by structural removal (and the paper's partitions rely on the edge
set only growing).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.metric import SimilarityFunction
from ..graph.graph import edge_key
from .pyramid import PyramidIndex

__all__ = [
    "insert_edge_into_index",
    "register_edge_in_metric",
    "add_relation_edge",
]

if TYPE_CHECKING:  # avoid the core.anc <-> index circular import at runtime
    from ..core.anc import ANCEngineBase


def insert_edge_into_index(
    index: PyramidIndex, u: int, v: int, weight: float
) -> int:
    """Add a new edge to a live pyramid index.

    The edge must already exist in ``index.graph`` (insert it there
    first) and must not yet have a weight.  Every partition repairs via
    Update-Decrease, since a new finite weight can only shorten paths.
    Returns the total number of touched nodes across partitions.
    """
    if weight <= 0:
        raise ValueError(f"weight must be positive, got {weight}")
    if not index.graph.has_edge(u, v):
        raise ValueError(f"edge ({u}, {v}) is not in the relation graph")
    key = edge_key(u, v)
    if key in index._weights:
        raise ValueError(f"edge {key} already has a weight; use update_edge_weight")
    index._store_weight(key, weight)
    touched = 0
    for level, partition in index.partitions_with_levels():
        moved = partition.update_decrease(u, v)
        touched += moved
        index._record_repair(level, moved)
        index.affected_since_drain |= partition.last_affected
    # The endpoints gained an edge even if no assignment changed: vote
    # tables must (re)count the new edge.
    index.affected_since_drain.add(u)
    index.affected_since_drain.add(v)
    index.total_touched += touched
    index.update_count += 1
    index.update_decreases += 1
    return touched


def register_edge_in_metric(metric: SimilarityFunction, u: int, v: int) -> float:
    """Seed a newly inserted edge in the metric pipeline.

    Gives the edge the t = 0 initial conditions *at the current time*:
    actual activeness 1 and actual similarity 1 (anchored via the global
    decay factor, so they decay from now on like any other value).
    Updates the cached node strengths.  Returns the new anchored
    reciprocal weight for the index.
    """
    if not metric.graph.has_edge(u, v):
        raise ValueError(f"edge ({u}, {v}) is not in the relation graph")
    key = edge_key(u, v)
    if key in metric.similarity:
        raise ValueError(f"edge {key} is already registered")
    anchored_activeness = metric.activeness.store.to_anchored(1.0)
    metric.activeness.store.set_anchored(u, v, anchored_activeness)
    metric.sigma.on_activation_delta(u, v, anchored_activeness)
    metric.similarity.set_actual(u, v, 1.0)
    return 1.0 / metric.similarity.anchored(u, v)


def add_relation_edge(engine: "ANCEngineBase", u: int, v: int) -> int:
    """Grow a live engine's relation network by one edge.

    Inserts the edge into the graph, the metric and the index, keeping
    all three consistent.  Returns the number of index nodes touched by
    the repair.  No-op (returns 0) if the edge already exists.
    """
    if engine.graph.has_edge(u, v):
        return 0
    engine.graph.add_edge(u, v)
    if engine.metric.space is not None:
        # Array backend: intern the edge id *before* the metric/index
        # writes so every flat store grows (and σ caches invalidate) in
        # lockstep with the graph.
        engine.metric.space.ensure_edge(u, v)
    weight = register_edge_in_metric(engine.metric, u, v)
    return insert_edge_into_index(engine.index, u, v, weight)
