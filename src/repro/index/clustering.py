"""Clustering with pyramids (Section V-B): even/power clustering, zooming,
and local cluster queries.

Given the voted subgraph at a granularity level:

* **Even clustering** reports its connected components.  Simple, but a
  single mis-voted edge can merge two clusters (the error amplification
  the paper warns about).
* **Power clustering** (``DirectedCluster`` in the experiments) directs
  every voted edge from the higher-degree endpoint to the lower-degree
  endpoint (node id breaks ties), then scans nodes from high rank to low:
  each still-unclustered node starts a cluster and absorbs every
  unclustered node reachable along directed edges.  High-degree "leader"
  nodes anchor clusters, so one bad vote cannot chain two leaders'
  territories together.

Both run in ``O(m log n)`` (Lemma 8) and both are search-based, so a
*local* query — the cluster of one node — costs time proportional to the
neighborhood of the reported nodes only (Lemma 9).  Zoom-in and zoom-out
move one granularity level up or down.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from ..graph.graph import Graph
from ..obs.trace import DISABLED_OBS, Observability, perf_counter
from .pyramid import PyramidIndex
from .voting import voted_adjacency

__all__ = [
    "node_rank_order",
    "even_clustering",
    "power_clustering",
    "local_cluster",
    "ClusterQueryEngine",
    "ZoomSession",
]

Clustering = List[List[int]]


def node_rank_order(graph: Graph) -> List[int]:
    """Nodes ordered from high degree to low, node id breaking ties."""
    return sorted(graph.nodes(), key=lambda v: (-graph.degree(v), v))


def even_clustering(index: PyramidIndex, level: int) -> Clustering:
    """Connected components of the voted subgraph at ``level``.

    Each cluster is a sorted node list; clusters are ordered by their
    minimum node.  Every node appears in exactly one cluster (isolated
    nodes form singletons).
    """
    adj = voted_adjacency(index, level)
    n = index.graph.n
    seen = [False] * n
    clusters: Clustering = []
    for start in range(n):
        if seen[start]:
            continue
        seen[start] = True
        comp = [start]
        head = 0
        while head < len(comp):
            x = comp[head]
            head += 1
            for y in adj[x]:
                if not seen[y]:
                    seen[y] = True
                    comp.append(y)
        comp.sort()
        clusters.append(comp)
    return clusters


def power_clustering(index: PyramidIndex, level: int) -> Clustering:
    """Power clustering (``DirectedCluster``) at ``level``.

    Directs voted edges high-degree → low-degree, then searches in rank
    order; each search claims all unclustered nodes reachable along the
    direction.  Returns a partition of ``V`` (clusters sorted internally,
    ordered by the rank of their leader).
    """
    graph = index.graph
    adj = voted_adjacency(index, level)
    rank = node_rank_order(graph)
    # position[v] = rank index; the edge u->v exists iff position[u] < position[v].
    position = [0] * graph.n
    for i, v in enumerate(rank):
        position[v] = i
    clustered = [False] * graph.n
    clusters: Clustering = []
    for v in rank:
        if clustered[v]:
            continue
        clustered[v] = True
        cluster = [v]
        head = 0
        while head < len(cluster):
            x = cluster[head]
            head += 1
            for y in adj[x]:
                # follow the direction: only descend to lower-ranked nodes
                if not clustered[y] and position[y] > position[x]:
                    clustered[y] = True
                    cluster.append(y)
        cluster.sort()
        clusters.append(cluster)
    return clusters


def local_cluster(index: PyramidIndex, v: int, level: int) -> List[int]:
    """The cluster containing ``v`` at ``level`` — bounded search (Lemma 9).

    Explores only the voted component of ``v``: for each frontier node the
    votes of its incident edges are evaluated on demand, so the cost is
    proportional to the neighborhoods of the reported nodes, not to the
    graph.  Matches :func:`even_clustering`'s component for ``v``.
    """
    graph = index.graph
    seen = {v}
    comp = [v]
    head = 0
    while head < len(comp):
        x = comp[head]
        head += 1
        for y in graph.neighbors(x):
            if y not in seen and index.same_cluster_vote(x, y, level):
                seen.add(y)
                comp.append(y)
    comp.sort()
    return comp


class ClusterQueryEngine:
    """Query front-end over a :class:`PyramidIndex` (Problem 1's API).

    Supports the three operations of the problem statement: report all
    clusters at the ``Θ(√n)`` granularity with zoom-in/zoom-out, and local
    cluster queries (smallest cluster, ``√n``-granularity cluster) with
    zooming.  ``method`` selects power (default, the paper's
    DirectedCluster) or even clustering for the global reports.
    """

    def __init__(self, index: PyramidIndex, *, method: str = "power") -> None:
        if method not in ("power", "even"):
            raise ValueError(f"method must be 'power' or 'even', got {method}")
        self.index = index
        self.method = method
        self._obs = DISABLED_OBS

    def bind_obs(self, obs: Observability) -> None:
        """Bind an observability bundle (engines call this via ``attach_obs``).

        With an enabled bundle, global and local cluster queries record
        their latency into the ``query_clusters_seconds`` /
        ``query_local_seconds`` histograms and emit ``query_*`` spans.
        """
        self._obs = obs
        if obs.enabled:
            # Create the instruments eagerly so exposition shows the
            # (empty) histograms before the first query arrives.
            obs.registry.histogram("query_clusters_seconds")
            obs.registry.histogram("query_local_seconds")

    # -- granularity handling -------------------------------------------
    @property
    def num_levels(self) -> int:
        """Total granularities ``⌈log₂ n⌉`` (O(log₂ n) as required)."""
        return self.index.num_levels

    def sqrt_n_level(self) -> int:
        """The level whose seed count is closest to ``√n`` from above.

        At level ``l`` there are ``2^{l-1}`` seeds; the number of clusters
        is at most that, so choosing ``2^{l-1} ≳ √n`` yields the
        ``Θ(√n)``-cluster granularity of Problem 1.
        """
        n = self.index.graph.n
        target = math.sqrt(n)
        best = 1
        for level in range(1, self.num_levels + 1):
            if (1 << (level - 1)) >= target:
                return level
            best = level
        return best

    def clamp_level(self, level: int) -> int:
        """Clamp a level into the valid range 1..num_levels."""
        return max(1, min(self.num_levels, level))

    def zoom_in(self, level: int) -> int:
        """Finer granularity (more, smaller clusters): level + 1."""
        return self.clamp_level(level + 1)

    def zoom_out(self, level: int) -> int:
        """Coarser granularity (fewer, larger clusters): level - 1."""
        return self.clamp_level(level - 1)

    # -- global reports ---------------------------------------------------
    def clusters(self, level: Optional[int] = None) -> Clustering:
        """All clusters at ``level`` (default: the ``√n`` granularity)."""
        if level is None:
            level = self.sqrt_n_level()
        level = self.clamp_level(level)
        obs = self._obs
        if not obs.enabled:
            return self._clusters_at(level)
        start = perf_counter()
        with obs.tracer.span("query_clusters", level=level):
            result = self._clusters_at(level)
        obs.registry.histogram("query_clusters_seconds").observe(
            perf_counter() - start
        )
        return result

    def _clusters_at(self, level: int) -> Clustering:
        if self.method == "power":
            return power_clustering(self.index, level)
        return even_clustering(self.index, level)

    def clusters_closest_to(self, target_count: int, *, min_size: int = 1) -> Tuple[int, Clustering]:
        """Level whose cluster count is closest to ``target_count``.

        Clusters smaller than ``min_size`` are excluded from the count
        (the paper drops clusters under 3 nodes as noise when comparing
        against ground truth).  Returns ``(level, clusters)`` with the
        full (unfiltered) clustering of the chosen level.
        """
        best_level, best_clusters, best_gap = 1, None, None
        for level in range(1, self.num_levels + 1):
            clusters = self.clusters(level)
            count = sum(1 for c in clusters if len(c) >= min_size)
            gap = abs(count - target_count)
            if best_gap is None or gap < best_gap:
                best_level, best_clusters, best_gap = level, clusters, gap
        assert best_clusters is not None
        return best_level, best_clusters

    # -- local queries ------------------------------------------------------
    def cluster_of(self, v: int, level: Optional[int] = None) -> List[int]:
        """The cluster containing ``v`` (default level: ``√n`` granularity).

        Uses the bounded component search of Lemma 9 — cost proportional
        to the neighborhoods of the reported nodes.
        """
        if level is None:
            level = self.sqrt_n_level()
        level = self.clamp_level(level)
        obs = self._obs
        if not obs.enabled:
            return local_cluster(self.index, v, level)
        start = perf_counter()
        with obs.tracer.span("query_local", node=v, level=level):
            result = local_cluster(self.index, v, level)
        obs.registry.histogram("query_local_seconds").observe(
            perf_counter() - start
        )
        return result

    def smallest_cluster_of(self, v: int) -> Tuple[int, List[int]]:
        """The smallest cluster containing ``v`` (finest granularity).

        Returns ``(level, cluster)`` at the deepest level; repeated
        zoom-out from there answers the first local query of Problem 1.
        """
        level = self.num_levels
        return level, self.cluster_of(v, level)

    def cluster_sizes(self, level: Optional[int] = None) -> List[int]:
        """Sorted (descending) cluster sizes — a cheap fingerprint."""
        return sorted((len(c) for c in self.clusters(level)), reverse=True)

    def zoom_session(self, v: int, *, start: str = "smallest") -> "ZoomSession":
        """Interactive zoom session for node ``v`` (Problem 1's local
        queries with "repetitive zoom-out operations").

        ``start``: ``"smallest"`` begins at the finest granularity (the
        smallest cluster containing ``v``); ``"sqrt"`` begins at the
        ``Θ(√n)`` granularity.
        """
        if start == "smallest":
            level = self.num_levels
        elif start == "sqrt":
            level = self.sqrt_n_level()
        else:
            raise ValueError(f"start must be 'smallest' or 'sqrt', got {start!r}")
        return ZoomSession(self, v, level)


class ZoomSession:
    """Stateful zoom cursor over one node's local clusters.

    Each :meth:`zoom_in` / :meth:`zoom_out` moves one granularity level
    and re-queries the node's cluster with the bounded local search;
    :attr:`cluster` always reflects the current level.  The session reads
    the live index, so the same session remains valid across stream
    updates (the cluster is re-derived on each move or via
    :meth:`refresh`).
    """

    def __init__(self, engine: ClusterQueryEngine, node: int, level: int) -> None:
        if not engine.index.graph.has_node(node):
            raise ValueError(f"unknown node {node}")
        self.engine = engine
        self.node = node
        self.level = engine.clamp_level(level)
        self.cluster: List[int] = engine.cluster_of(node, self.level)

    def refresh(self) -> List[int]:
        """Re-derive the cluster at the current level (after updates)."""
        self.cluster = self.engine.cluster_of(self.node, self.level)
        return self.cluster

    def zoom_in(self) -> List[int]:
        """Finer granularity; returns the (typically smaller) cluster."""
        self.level = self.engine.zoom_in(self.level)
        return self.refresh()

    def zoom_out(self) -> List[int]:
        """Coarser granularity; returns the (typically larger) cluster."""
        self.level = self.engine.zoom_out(self.level)
        return self.refresh()

    @property
    def at_finest(self) -> bool:
        """Whether further zoom-in is a no-op."""
        return self.level >= self.engine.num_levels

    @property
    def at_coarsest(self) -> bool:
        """Whether further zoom-out is a no-op."""
        return self.level <= 1
