"""Index persistence: save and load a pyramid index.

A production deployment builds the index once (Lemma 7 cost) and then
maintains it incrementally forever; losing it to a process restart would
mean paying the build again.  This module serializes a
:class:`PyramidIndex` — seeds, per-partition ``dist``/``seed``/``parent``
arrays, the weight table and the construction parameters — to a compact
JSON document, and restores it without re-running a single Dijkstra.

The graph itself is *not* stored (the index is meaningless without the
exact relation network anyway, and the paper's Fig 6 accounting also
excludes it); the loader verifies the supplied graph matches the stored
fingerprint (n, m, and an order-independent edge checksum).
"""

from __future__ import annotations

import json
import time
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple, Union

from ..graph.graph import Graph
from ..graph.traversal import INF
from .pyramid import Pyramid, PyramidIndex
from .voronoi import VoronoiPartition

if TYPE_CHECKING:  # hook-only dependency; repro.faults never imports us back
    from ..core.arrays import EdgeSpace
    from ..faults.plan import FaultPlan

__all__ = [
    "FORMAT_VERSION",
    "graph_fingerprint",
    "load_index",
    "load_index_resume",
    "save_index",
]

PathLike = Union[str, Path]

FORMAT_VERSION = 1


def graph_fingerprint(graph: Graph) -> Dict[str, int]:
    """Cheap, order-independent identity of the relation network."""
    checksum = 0
    for u, v in graph.edges():
        checksum ^= zlib.crc32(f"{u},{v}".encode())
    return {"n": graph.n, "m": graph.m, "edge_checksum": checksum}


def _encode_dist(dist: List[float]) -> List[object]:
    return [None if d == INF else d for d in dist]


def _decode_dist(raw: List[object]) -> List[float]:
    return [INF if d is None else float(d) for d in raw]


def save_index(
    index: PyramidIndex,
    path: PathLike,
    *,
    faults: "Optional[FaultPlan]" = None,
    resume: Optional[Mapping[str, int]] = None,
) -> None:
    """Write the index to ``path`` as JSON.

    ``resume`` is opaque recovery metadata (``{"seq": ..., "epoch": ...}``
    from the checkpoint writer) stored alongside the structural payload
    so a loader learns its WAL resume point without re-scanning the log;
    :func:`load_index_resume` hands it back.

    ``faults`` is the :mod:`repro.faults` hook (site ``index.save``);
    ``None`` — the default everywhere outside the chaos harness — costs
    a single comparison.
    """
    doc: Dict[str, object] = {
        "format": FORMAT_VERSION,
        "graph": graph_fingerprint(index.graph),
        "k": index.k,
        "support": index.support,
        "weights": [[u, v, w] for (u, v), w in index._weights.items()],
        "pyramids": [
            {
                str(level): {
                    "seeds": list(partition.seeds),
                    "dist": _encode_dist(partition.dist),
                    "seed": partition.seed,
                    "parent": partition.parent,
                }
                for level, partition in pyramid.levels.items()
            }
            for pyramid in index.pyramids
        ],
    }
    if resume is not None:
        doc["resume"] = {key: int(value) for key, value in resume.items()}
    payload = json.dumps(doc)
    if faults is not None:
        action = faults.hit("index.save", path=str(path))
        if action is not None and action.kind == "truncate":
            from ..faults.plan import InjectedCrash

            with open(path, "w", encoding="utf-8") as fh:
                fh.write(payload[: len(payload) // 2])
            raise InjectedCrash(
                "index.save", action.kind, f"crashed mid-write of {path}"
            )
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(payload)


def load_index(
    graph: Graph, path: PathLike, *, faults: "Optional[FaultPlan]" = None
) -> PyramidIndex:
    """Restore an index previously written by :func:`save_index`.

    ``graph`` must be the same relation network the index was built on
    (verified by fingerprint).  No shortest-path computation is run; the
    restored partitions are validated structurally instead.

    ``faults`` is the :mod:`repro.faults` hook (site ``index.load``, the
    slow/stalled snapshot reader); ``None`` costs a single comparison.
    """
    index, _ = load_index_resume(graph, path, faults=faults)
    return index


def load_index_resume(
    graph: Graph,
    path: PathLike,
    *,
    faults: "Optional[FaultPlan]" = None,
    space: "Optional[EdgeSpace]" = None,
) -> Tuple[PyramidIndex, Dict[str, int]]:
    """:func:`load_index` plus the stored resume metadata.

    Returns ``(index, resume)`` where ``resume`` is the mapping passed to
    :func:`save_index` (``{}`` for documents written before it existed).
    Recovery callers — server restart and follower bootstrap both go
    through ``repro.service.snapshots.recover_to`` — read their WAL
    resume seq and epoch from here instead of re-scanning the log.

    ``space`` selects the engine backend: ``None`` restores the plain
    dict-backed :class:`PyramidIndex`; an
    :class:`~repro.core.arrays.EdgeSpace` (the restoring metric's
    interning table) restores an
    :class:`~repro.index.array_index.ArrayPyramidIndex` bound to it.
    The on-disk document is identical either way — backends round-trip
    each other's checkpoints byte for byte.
    """
    if faults is not None:
        action = faults.hit("index.load", path=str(path))
        if action is not None and action.kind == "delay":
            time.sleep(action.seconds())
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ValueError(
            f"{path} is not an index document (expected a JSON object, "
            f"got {type(doc).__name__})"
        )
    version = doc.get("format")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported index format version {version!r} in {path}; this "
            f"build reads version {FORMAT_VERSION}.  Re-save the index with "
            f"save_index() from the build that wrote it, or rebuild from the "
            f"graph."
        )
    if doc["graph"] != graph_fingerprint(graph):
        raise ValueError(
            "graph does not match the one the index was built on "
            f"(stored {doc['graph']}, supplied {graph_fingerprint(graph)})"
        )
    weights = {(int(u), int(v)): float(w) for u, v, w in doc["weights"]}
    if space is not None:
        from .array_index import ArrayPyramidIndex

        index: PyramidIndex = ArrayPyramidIndex.__new__(ArrayPyramidIndex)
    else:
        index = PyramidIndex.__new__(PyramidIndex)
    index.graph = graph
    index.k = int(doc["k"])
    index.support = float(doc["support"])
    index._weights = weights
    index._weight_fn = index._make_weight_fn()
    index._init_counters()
    index.pyramids = []
    for pyramid_doc in doc["pyramids"]:
        pyramid = Pyramid.__new__(Pyramid)
        pyramid.graph = graph
        pyramid.levels = {}
        for level_str, part_doc in pyramid_doc.items():
            partition = VoronoiPartition.__new__(VoronoiPartition)
            partition.graph = graph
            partition.weight = index._weight_fn
            partition.seeds = tuple(part_doc["seeds"])
            partition.dist = _decode_dist(part_doc["dist"])
            partition.seed = [int(s) for s in part_doc["seed"]]
            partition.parent = [int(p) for p in part_doc["parent"]]
            partition.last_touched = 0
            partition.last_affected = set()
            partition._children = [set() for _ in range(graph.n)]
            for v, p in enumerate(partition.parent):
                if p >= 0:
                    partition._children[p].add(v)
            pyramid.levels[int(level_str)] = partition
        index.pyramids.append(pyramid)
    if space is not None:
        from .array_index import ArrayPyramidIndex

        assert isinstance(index, ArrayPyramidIndex)
        index._bind_space(space)
    index.check_consistency()
    raw_resume = doc.get("resume", {})
    resume = {str(key): int(value) for key, value in raw_resume.items()}
    return index, resume
