"""Approximate distance queries over the pyramid index.

The pyramids adopt the sketch-based oracle of Das Sarma et al. [32] as
their base structure (Section V-A).  Beyond powering the clustering, that
structure natively answers **approximate point-to-point distance
queries**: every (pyramid, level) gives each node the distance to its
closest seed, and for two nodes assigned to the *same* seed the
triangle inequality yields

    dist(u, v)  <=  dist(u, seed) + dist(v, seed)

Minimizing this bound over all k·⌈log₂ n⌉ partitions in which ``u`` and
``v`` share a seed gives the classic sketch estimate: an upper bound on
the true distance with the usual Θ(log n)-stretch guarantee of the
random-seed construction (fine levels have many seeds → tight local
estimates; coarse levels guarantee a shared seed exists).

This module is the reproduction of that adopted capability plus the
obvious companion queries (common-seed witnesses, estimated closeness
ordering).  The estimates stay correct under the incremental updates of
Section V-C because the per-partition ``dist`` arrays are exactly
maintained (Lemmas 11-12).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..graph.traversal import INF
from .pyramid import PyramidIndex

__all__ = [
    "estimate_distance",
    "common_seed_witness",
    "rank_by_estimated_distance",
    "estimate_eccentricity",
]


def estimate_distance(index: PyramidIndex, u: int, v: int) -> float:
    """Sketch upper bound on ``dist(u, v)`` under the current weights.

    Returns ``inf`` when no partition assigns ``u`` and ``v`` to a common
    seed (only possible when they are disconnected, since level 1 has a
    single seed per pyramid).  Returns 0.0 for ``u == v``.
    """
    if u == v:
        return 0.0
    best = INF
    for partition in index.partitions():
        su = partition.seed[u]
        if su < 0 or su != partition.seed[v]:
            continue
        bound = partition.dist[u] + partition.dist[v]
        if bound < best:
            best = bound
    return best


def common_seed_witness(
    index: PyramidIndex, u: int, v: int
) -> Optional[Tuple[int, int, int]]:
    """The (pyramid, level, seed) realizing the best distance bound.

    Returns None when ``u`` and ``v`` share no seed anywhere.
    """
    best = INF
    witness: Optional[Tuple[int, int, int]] = None
    for p_idx, pyramid in enumerate(index.pyramids):
        for level, partition in pyramid.levels.items():
            su = partition.seed[u]
            if su < 0 or su != partition.seed[v]:
                continue
            bound = partition.dist[u] + partition.dist[v]
            if bound < best:
                best = bound
                witness = (p_idx, level, su)
    return witness


def rank_by_estimated_distance(
    index: PyramidIndex, source: int, candidates: List[int]
) -> List[Tuple[int, float]]:
    """Candidates sorted by the sketch distance bound from ``source``.

    The ordering primitive behind "who is closest to me right now"
    queries on the live index; ties keep candidate order (stable sort).
    """
    scored = [(v, estimate_distance(index, source, v)) for v in candidates]
    scored.sort(key=lambda pair: pair[1])
    return scored


def estimate_eccentricity(index: PyramidIndex, v: int) -> float:
    """Upper bound on ``v``'s distance to the farthest reachable node.

    Uses the level-1 partitions (one seed each): ``dist(v, seed) +
    max_x dist(x, seed)`` minimized over pyramids.
    """
    best = INF
    for pyramid in index.pyramids:
        partition = pyramid.partition(1)
        if partition.seed[v] < 0:
            continue
        radius = max(d for d in partition.dist if d != INF)
        bound = partition.dist[v] + radius
        if bound < best:
            best = bound
    return best
