"""Voting over pyramids (Section V-B) and the maintained vote table.

The basic voting function ``H_l(u, v)`` lives on
:meth:`repro.index.pyramid.PyramidIndex.same_cluster_vote`.  This module
adds:

* :func:`voted_edges` — materialize, for one granularity level, the edges
  of ``G`` that survive the vote (the input to even/power clustering);
* :class:`VoteTable` — the "Remarks" extension of Section V-C: a per-level,
  per-edge vote count maintained in real time, so that changes around
  user-specified nodes can be reported at a cost equal to the reporting.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..graph.graph import Edge, edge_key
from .pyramid import PyramidIndex

__all__ = ["voted_edges", "voted_adjacency", "VoteTable"]


def voted_edges(index: PyramidIndex, level: int) -> List[Edge]:
    """Edges of ``G`` whose voting result ``H_l`` is 1 at ``level``."""
    return [
        (u, v)
        for u, v in index.graph.edges()
        if index.same_cluster_vote(u, v, level)
    ]


def voted_adjacency(index: PyramidIndex, level: int) -> List[List[int]]:
    """Adjacency lists of the voted subgraph at ``level``."""
    adj: List[List[int]] = [[] for _ in range(index.graph.n)]
    for u, v in voted_edges(index, level):
        adj[u].append(v)
        adj[v].append(u)
    return adj


class VoteTable:
    """Real-time per-edge vote counts for every granularity level.

    After every index update, :meth:`refresh_around` recounts only the
    edges incident to the touched nodes — the "local feature of the
    update" the paper's Remarks exploit.  :meth:`changed_edges` drains the
    set of edges whose vote flipped since last drained, which is exactly
    what a user-facing change feed would report.
    """

    def __init__(self, index: PyramidIndex) -> None:
        self.index = index
        self.threshold = index.support * index.k
        # counts[level][edge] = number of agreeing pyramids
        self.counts: Dict[int, Dict[Edge, int]] = {}
        self._changed: Dict[int, Set[Edge]] = {}
        for level in range(1, index.num_levels + 1):
            table: Dict[Edge, int] = {}
            for u, v in index.graph.edges():
                table[(u, v)] = index.vote_count(u, v, level)
            self.counts[level] = table
            self._changed[level] = set()

    def vote(self, u: int, v: int, level: int) -> bool:
        """``H_l(u, v)`` from the maintained table (edges of ``G`` only).

        Edges inserted after construction count as 0 until the first
        :meth:`refresh_around` that covers them.
        """
        return self.counts[level].get(edge_key(u, v), 0) >= self.threshold

    def refresh_around(self, nodes: Iterable[int], level: Optional[int] = None) -> int:
        """Recount votes for all edges incident to ``nodes``.

        Returns the number of edges whose vote result flipped.  When
        ``level`` is None all levels refresh.
        """
        node_set = set(nodes)
        levels = range(1, self.index.num_levels + 1) if level is None else (level,)
        graph = self.index.graph
        flips = 0
        edges_to_check: Set[Edge] = set()
        for x in node_set:
            for y in graph.neighbors(x):
                edges_to_check.add(edge_key(x, y))
        for lvl in levels:
            table = self.counts[lvl]
            for key in edges_to_check:
                # Edges inserted after construction (index growth) enter
                # the table here with an implicit prior count of 0.
                old = table.get(key, 0)
                new = self.index.vote_count(key[0], key[1], lvl)
                if new != old or key not in table:
                    table[key] = new
                    was = old >= self.threshold
                    now = new >= self.threshold
                    if was != now:
                        self._changed[lvl].add(key)
                        flips += 1
        return flips

    def changed_edges(self, level: int) -> List[Edge]:
        """Drain and return the edges whose vote flipped at ``level``."""
        out = sorted(self._changed[level])
        self._changed[level].clear()
        return out
