"""The pyramid index ``P`` (Section V-A).

A *pyramid* is a suite of ``⌈log₂ n⌉`` Voronoi partitions with
``2^{l-1}`` uniformly sampled seeds at granularity level ``l`` (one seed at
level 1, up to ~n/2 at the top — the seed counts of the paper's Figure 2
example).  The index ``P`` holds ``k`` independent pyramids (default 4)
that later act as a voting system.

All ``k·⌈log₂ n⌉`` partitions share one edge-weight table (the anchored
reciprocal similarities ``1/S*_t``); an activation updates the table once
and then dispatches the bounded Update-Decrease / Update-Increase to every
partition independently (Lemma 13 — embarrassingly parallel in the paper;
sequential here, with per-partition touch counts preserved).

Index time is ``O(n log² n + m log n)`` and size ``O(n log² n)``
(Lemma 7): ``log n`` levels × amortized Dijkstra cost per level, per
pyramid.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..graph.graph import Edge, Graph, edge_key
from .voronoi import VoronoiPartition

__all__ = ["levels_for", "seeds_at_level", "Pyramid", "PyramidIndex"]

RngLike = Optional[random.Random]


def levels_for(n: int) -> int:
    """Number of granularity levels: ``⌈log₂ n⌉`` (min 1)."""
    if n < 1:
        raise ValueError("graph must have at least one node")
    return max(1, math.ceil(math.log2(n))) if n > 1 else 1


def seeds_at_level(level: int, n: int) -> int:
    """Seed count at ``level``: ``min(2^{l-1}, n)``."""
    if level < 1:
        raise ValueError(f"levels are 1-based, got {level}")
    return min(1 << (level - 1), n)


class Pyramid:
    """One pyramid: a Voronoi partition per granularity level."""

    def __init__(
        self,
        graph: Graph,
        weight: Callable[[int, int], float],
        rng: random.Random,
    ) -> None:
        self.graph = graph
        self.levels: Dict[int, VoronoiPartition] = {}
        n = graph.n
        nodes = list(graph.nodes())
        for level in range(1, levels_for(n) + 1):
            seeds = rng.sample(nodes, seeds_at_level(level, n))
            self.levels[level] = VoronoiPartition(graph, seeds, weight)

    @property
    def num_levels(self) -> int:
        """``⌈log₂ n⌉``."""
        return len(self.levels)

    def partition(self, level: int) -> VoronoiPartition:
        """The Voronoi partition at ``level`` (1-based)."""
        try:
            return self.levels[level]
        except KeyError:
            raise ValueError(
                f"level {level} out of range 1..{self.num_levels}"
            ) from None

    def memory_cost(self) -> int:
        """Nominal payload bytes across all levels."""
        return sum(p.memory_cost() for p in self.levels.values())


class PyramidIndex:
    """The index ``P``: ``k`` pyramids over a shared edge-weight table.

    Parameters
    ----------
    graph:
        Relation network.
    weights:
        Initial edge weights (anchored reciprocal similarities); copied.
    k:
        Number of pyramids (the paper's default is 4; its sweeps use
        2–16).
    seed:
        RNG seed for the uniform seed sampling — same seed, same index.
    support:
        Voting threshold θ (default 0.7): two nodes cluster together at a
        level iff at least ``θ·k`` pyramids agree on their seed.
    """

    def __init__(
        self,
        graph: Graph,
        weights: Dict[Edge, float],
        *,
        k: int = 4,
        seed: Optional[int] = 0,
        support: float = 0.7,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if not 0.0 < support <= 1.0:
            raise ValueError(f"support must be in (0, 1], got {support}")
        missing = [e for e in graph.edges() if e not in weights]
        if missing:
            raise ValueError(f"weights missing for {len(missing)} edges, e.g. {missing[0]}")
        bad = [(e, w) for e, w in weights.items() if w <= 0]
        if bad:
            raise ValueError(f"weights must be positive, got {bad[0]}")
        self.graph = graph
        self.k = k
        self.support = support
        self._weights: Dict[Edge, float] = dict(weights)
        self._weight_fn = self._make_weight_fn()
        rng = random.Random(seed)
        self.pyramids: List[Pyramid] = [
            Pyramid(graph, self._weight_fn, random.Random(rng.randrange(2**63)))
            for _ in range(k)
        ]
        self._init_counters()

    def _init_counters(self) -> None:
        """Zero the observability counters (restore paths call this too)."""
        #: Cumulative touched-node count across updates (Fig 8 observability).
        self.total_touched = 0
        #: Number of weight updates dispatched.
        self.update_count = 0
        #: Updates dispatched as Update-Increase (weight grew).
        self.update_increases = 0
        #: Updates dispatched as Update-Decrease (weight shrank; edge
        #: insertions count here — a new edge is a decrease from +∞).
        self.update_decreases = 0
        #: level -> cumulative touched nodes across that level's partitions.
        self.touched_by_level: Dict[int, int] = {}
        #: level -> repair dispatches (k per level per update).
        self.repairs_by_level: Dict[int, int] = {}
        #: Union of partitions' affected sets since the last drain —
        #: consumed by vote maintenance (VoteTable / ClusterWatcher).
        self.affected_since_drain: set = set()

    def _record_repair(self, level: int, moved: int) -> None:
        """Account one partition repair at ``level`` that moved ``moved`` nodes."""
        self.touched_by_level[level] = self.touched_by_level.get(level, 0) + moved
        self.repairs_by_level[level] = self.repairs_by_level.get(level, 0) + 1

    def _store_weight(self, key: Edge, value: float) -> None:
        """Write one weight-table entry.

        The single mutation point every weight write funnels through
        (update path, dynamic insert, parallel updater) so that
        array-backed subclasses can mirror the value into their flat
        storage by overriding exactly one method.
        """
        self._weights[key] = value

    def _make_weight_fn(self) -> Callable[[int, int], float]:
        weights = self._weights

        def weight(u: int, v: int) -> float:
            return weights[(u, v) if u < v else (v, u)]

        return weight

    # ------------------------------------------------------------------
    @property
    def num_levels(self) -> int:
        """Granularity levels per pyramid."""
        return self.pyramids[0].num_levels

    def weight(self, u: int, v: int) -> float:
        """Current stored weight of edge ``{u, v}``."""
        return self._weights[edge_key(u, v)]

    def weights_view(self) -> Dict[Edge, float]:
        """Read-only snapshot of the weight table."""
        return dict(self._weights)

    def partitions(self) -> Iterator[VoronoiPartition]:
        """All ``k · num_levels`` partitions."""
        for pyramid in self.pyramids:
            for partition in pyramid.levels.values():
                yield partition

    def partitions_at(self, level: int) -> List[VoronoiPartition]:
        """The ``k`` partitions at one granularity level."""
        return [p.partition(level) for p in self.pyramids]

    def partitions_with_levels(self) -> Iterator[Tuple[int, VoronoiPartition]]:
        """All partitions as ``(level, partition)`` pairs."""
        for pyramid in self.pyramids:
            for level, partition in pyramid.levels.items():
                yield level, partition

    # ------------------------------------------------------------------
    # Updates (Section V-C)
    # ------------------------------------------------------------------
    def update_edge_weight(self, u: int, v: int, new_weight: float) -> int:
        """Set edge ``{u, v}``'s weight and repair every partition.

        Dispatches Update-Decrease or Update-Increase per partition based
        on the sign of the change (no-op when unchanged).  Returns the
        total number of touched nodes across partitions.
        """
        if new_weight <= 0:
            raise ValueError(f"weight must be positive, got {new_weight}")
        key = edge_key(u, v)
        old = self._weights[key]
        if new_weight == old:
            return 0
        self._store_weight(key, new_weight)
        touched = 0
        for level, partition in self.partitions_with_levels():
            moved = partition.apply_weight_change(u, v, old, new_weight)
            touched += moved
            self._record_repair(level, moved)
            self.affected_since_drain |= partition.last_affected
        self.total_touched += touched
        self.update_count += 1
        if new_weight > old:
            self.update_increases += 1
        else:
            self.update_decreases += 1
        return touched

    def drain_affected(self) -> set:
        """Nodes whose assignment changed in any partition since the
        last drain (always includes update endpoints via their repairs).
        Clears the accumulator."""
        out = self.affected_since_drain
        self.affected_since_drain = set()
        return out

    def on_rescale(self, g: float) -> None:
        """Absorb a batched rescale of the global decay factor (Lemma 10).

        Weights and distances are NegM: both scale by ``1/g``, leaving all
        comparisons — and hence partitions, votes and clusters — intact.
        """
        factor = 1.0 / g
        for key in self._weights:
            self._weights[key] *= factor
        for partition in self.partitions():
            partition.absorb_scale(factor)

    def rebuild(self) -> None:
        """Rebuild every partition from scratch (the RECONSTRUCT baseline)."""
        for partition in self.partitions():
            partition.rebuild()
        self.affected_since_drain = set(self.graph.nodes())

    def set_all_weights(self, weights: Dict[Edge, float]) -> None:
        """Replace the whole weight table without incremental repair.

        Callers must follow with :meth:`rebuild`; this is the offline
        (ANCF / RECONSTRUCT) path where incremental maintenance is
        deliberately bypassed.
        """
        missing = [e for e in self.graph.edges() if e not in weights]
        if missing:
            raise ValueError(f"weights missing for {len(missing)} edges")
        self._weights.clear()
        self._weights.update(weights)

    # ------------------------------------------------------------------
    # Voting (Section V-B)
    # ------------------------------------------------------------------
    def vote_count(self, u: int, v: int, level: int) -> int:
        """Number of pyramids whose level-``l`` seed for u and v agree."""
        count = 0
        for pyramid in self.pyramids:
            part = pyramid.partition(level)
            su = part.seed[u]
            if su >= 0 and su == part.seed[v]:
                count += 1
        return count

    def same_cluster_vote(self, u: int, v: int, level: int) -> bool:
        """The voting function ``H_l(u, v)`` (Section V-B).

        True iff at least ``θ·k`` pyramids put ``u`` and ``v`` under the
        same seed at this level.
        """
        return self.vote_count(u, v, level) >= self.support * self.k

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def memory_cost(self) -> int:
        """Nominal index payload in bytes (excludes the graph, as Fig 6)."""
        return sum(p.memory_cost() for p in self.pyramids) + 12 * len(self._weights)

    def check_consistency(self) -> None:
        """Validate every partition's forest invariants (test helper)."""
        for partition in self.partitions():
            partition.check_consistency()
