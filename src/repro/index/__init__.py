"""Pyramid distance index: Voronoi partitions, voting, clustering queries."""

from .clustering import (
    ClusterQueryEngine,
    Clustering,
    ZoomSession,
    even_clustering,
    local_cluster,
    node_rank_order,
    power_clustering,
)
from .distances import (
    common_seed_witness,
    estimate_distance,
    estimate_eccentricity,
    rank_by_estimated_distance,
)
from .dynamic import add_relation_edge, insert_edge_into_index, register_edge_in_metric
from .pyramid import Pyramid, PyramidIndex, levels_for, seeds_at_level
from .voronoi import VoronoiPartition
from .voting import VoteTable, voted_adjacency, voted_edges

__all__ = [
    "common_seed_witness",
    "estimate_distance",
    "estimate_eccentricity",
    "rank_by_estimated_distance",
    "add_relation_edge",
    "insert_edge_into_index",
    "register_edge_in_metric",
    "ClusterQueryEngine",
    "Clustering",
    "ZoomSession",
    "even_clustering",
    "local_cluster",
    "node_rank_order",
    "power_clustering",
    "Pyramid",
    "PyramidIndex",
    "levels_for",
    "seeds_at_level",
    "VoronoiPartition",
    "VoteTable",
    "voted_adjacency",
    "voted_edges",
]
