"""Voronoi partitions with incremental maintenance (Section V-A, V-C).

A :class:`VoronoiPartition` is the building block of the pyramid index: a
seed set ``S`` of ``2^{l-1}`` nodes, and for every node ``v`` its closest
seed ``seed[v]``, the distance ``dist[v]`` to it, and the shortest-path
forest (``parent[v]`` / ``children[v]``) rooted at the seeds — all under
the reciprocal-similarity edge weights ``S_t^{-1}``.

Construction is one multi-source Dijkstra (Lemma 7).  Maintenance under a
changing edge weight implements the paper's Algorithms 1–3:

* :meth:`probe` (Algorithm 2) — recompute a node's distance upper bound
  through one neighbor; adopt it if better.
* :meth:`update_decrease` (Algorithm 1) — a weight decrease can only
  shrink distances; seed the priority queue with the probed endpoints and
  relax outward.
* :meth:`update_increase` (Algorithm 3) — a weight increase matters only
  if the edge is a forest edge; reset the subtree hanging below it, then
  rebuild it Dijkstra-style from its boundary.

Both updates are *bounded* (Lemma 12): they touch
``O(Σ_{x ∈ U'} deg(x))`` edges where ``U'`` is the set of nodes whose
distance or seed actually changed (plus the trigger endpoints), never the
whole graph.  The partition counts touched nodes per update so benchmarks
(Fig 8) and tests can observe the locality.

Tie-breaking matches :func:`repro.graph.traversal.multi_source_dijkstra`:
among equidistant seeds the smaller seed id wins, so an incrementally
maintained partition stays comparable to a fresh rebuild.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Sequence, Set, Tuple

from ..graph.graph import Graph
from ..graph.traversal import INF, multi_source_dijkstra

__all__ = ["VoronoiPartition"]

WeightFn = Callable[[int, int], float]


class VoronoiPartition:
    """One Voronoi partition of the graph under a shared weight function.

    Parameters
    ----------
    graph:
        The relation network.
    seeds:
        Seed node ids (must be distinct, valid nodes).
    weight:
        Symmetric edge weight function; the pyramid passes a closure over
        its shared weight dict so all partitions see updates instantly.
    """

    __slots__ = (
        "graph",
        "seeds",
        "weight",
        "dist",
        "seed",
        "parent",
        "_children",
        "last_touched",
        "last_affected",
    )

    def __init__(self, graph: Graph, seeds: Sequence[int], weight: WeightFn) -> None:
        seen: Set[int] = set()
        for s in seeds:
            if not graph.has_node(s):
                raise ValueError(f"seed {s} is not a node")
            if s in seen:
                raise ValueError(f"duplicate seed {s}")
            seen.add(s)
        if not seeds:
            raise ValueError("need at least one seed")
        self.graph = graph
        self.seeds: Tuple[int, ...] = tuple(seeds)
        self.weight = weight
        self.dist: List[float] = []
        self.seed: List[int] = []
        self.parent: List[int] = []
        self._children: List[Set[int]] = []
        #: Nodes touched by the most recent update (observability, Fig 8).
        self.last_touched: int = 0
        #: Nodes whose dist/seed changed in the most recent update — the
        #: affected set U of Lemma 11, consumed by vote maintenance.
        self.last_affected: Set[int] = set()
        self.rebuild()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def rebuild(self) -> None:
        """Full rebuild: one multi-source Dijkstra from the seed set."""
        self.dist, self.seed, self.parent = multi_source_dijkstra(
            self.graph, self.seeds, self.weight
        )
        self._children = [set() for _ in range(self.graph.n)]
        for v, p in enumerate(self.parent):
            if p >= 0:
                self._children[p].add(v)
        # Everything may have moved: consumers must refresh globally.
        self.last_affected = set(self.graph.nodes())

    # ------------------------------------------------------------------
    # Forest bookkeeping
    # ------------------------------------------------------------------
    def _set_parent(self, v: int, p: int) -> None:
        old = self.parent[v]
        if old == p:
            return
        if old >= 0:
            self._children[old].discard(v)
        self.parent[v] = p
        if p >= 0:
            self._children[p].add(v)

    def children(self, v: int) -> Set[int]:
        """Children of ``v`` in the shortest-path forest (read-only view)."""
        return self._children[v]

    def subtree(self, root: int) -> List[int]:
        """All nodes in the forest subtree rooted at ``root`` (incl. root)."""
        out = [root]
        head = 0
        while head < len(out):
            for c in self._children[out[head]]:
                out.append(c)
            head += 1
        return out

    def partition_of(self, v: int) -> int:
        """Seed owning ``v`` (-1 if unreachable from every seed)."""
        return self.seed[v]

    def cells(self) -> Dict[int, List[int]]:
        """The partition as ``{seed: sorted members}`` (diagnostics/tests)."""
        out: Dict[int, List[int]] = {}
        for v in self.graph.nodes():
            s = self.seed[v]
            if s >= 0:
                out.setdefault(s, []).append(v)
        return out

    # ------------------------------------------------------------------
    # Algorithm 2: Probe
    # ------------------------------------------------------------------
    def probe(self, a: int, b: int) -> bool:
        """Recompute ``a``'s distance via neighbor ``b``; adopt if better.

        Implements Algorithm 2: ``d = dist(S[b], b) + w(a, b)``; if that
        beats ``a``'s current distance (ties broken toward the smaller
        seed id), ``a`` adopts seed, distance and parent from ``b``.
        """
        o = self.seed[b]
        if o < 0:
            return False
        d = self.dist[b] + self.weight(a, b)
        cur = self.dist[a]
        if d < cur or (d == cur and o < self.seed[a]):
            self.seed[a] = o
            self.dist[a] = d
            self._set_parent(a, b)
            return True
        return False

    # ------------------------------------------------------------------
    # Algorithm 1: Update-Decrease
    # ------------------------------------------------------------------
    def update_decrease(self, u: int, v: int) -> int:
        """Handle a decreased weight on edge ``{u, v}``.

        The shared weight function must already return the new (smaller)
        weight.  Returns the number of touched nodes.
        """
        touched = 0
        affected: Set[int] = set()
        pq: List[Tuple[float, int, int]] = []
        if self.probe(u, v):
            affected.add(u)
            heapq.heappush(pq, (self.dist[u], self.seed[u], u))
        if self.probe(v, u):
            affected.add(v)
            heapq.heappush(pq, (self.dist[v], self.seed[v], v))
        while pq:
            d, s, x = heapq.heappop(pq)
            if d > self.dist[x] or (d == self.dist[x] and s > self.seed[x]):
                continue  # stale queue entry
            touched += 1
            for y in self.graph.neighbors(x):
                if self.probe(y, x):
                    affected.add(y)
                    heapq.heappush(pq, (self.dist[y], self.seed[y], y))
        self.last_touched = touched
        self.last_affected = affected
        return touched

    # ------------------------------------------------------------------
    # Algorithm 3: Update-Increase
    # ------------------------------------------------------------------
    def update_increase(self, u: int, v: int) -> int:
        """Handle an increased weight on edge ``{u, v}``.

        If the edge is not in the shortest-path forest, nothing changes
        (the new weight can only make the unused edge worse).  Otherwise
        the subtree hanging below the edge is reset and rebuilt from its
        boundary, Dijkstra-style.  Returns the number of touched nodes.
        """
        if self.parent[u] == v:
            o = u
        elif self.parent[v] == u:
            o = v
        else:
            self.last_touched = 0
            self.last_affected = set()
            return 0
        impacted = self.subtree(o)
        impacted_set = set(impacted)
        pq: List[Tuple[float, int, int]] = []
        for x in impacted:
            self.dist[x] = INF
            self.seed[x] = -1
            self._set_parent(x, -1)
        for x in impacted:
            for y in self.graph.neighbors(x):
                if y not in impacted_set:
                    heapq.heappush(pq, (self.dist[y], self.seed[y], y))
        touched = len(impacted)
        while pq:
            d, s, x = heapq.heappop(pq)
            if d > self.dist[x] or (d == self.dist[x] and s > self.seed[x]):
                continue
            for y in self.graph.neighbors(x):
                if self.probe(y, x):
                    touched += 1
                    heapq.heappush(pq, (self.dist[y], self.seed[y], y))
        self.last_touched = touched
        self.last_affected = impacted_set
        return touched

    def apply_weight_change(self, u: int, v: int, old: float, new: float) -> int:
        """Dispatch to decrease/increase based on the weight delta."""
        if new < old:
            return self.update_decrease(u, v)
        if new > old:
            return self.update_increase(u, v)
        self.last_touched = 0
        self.last_affected = set()
        return 0

    # ------------------------------------------------------------------
    # Global decay absorption (Lemma 10)
    # ------------------------------------------------------------------
    def absorb_scale(self, factor: float) -> None:
        """Multiply all stored distances by ``factor``.

        The pyramid's shared weights are NegM: at a batched rescale they
        are divided by ``g``, so the distances must be too
        (``factor = 1/g``).  Comparisons — and hence the partition itself —
        are unchanged.
        """
        dist = self.dist
        for i in range(len(dist)):
            if dist[i] != INF:
                dist[i] *= factor

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def memory_cost(self) -> int:
        """Nominal payload size in bytes.

        Models the flat-array layout a native implementation would use:
        8 bytes per distance, 4 per seed id, 4 per parent id, 4 per child
        pointer, 4 per seed.  Used by the Fig 6 benchmark; the constant
        factors are a model, the growth in ``n`` and ``k`` is the claim.
        """
        n = self.graph.n
        child_entries = sum(len(c) for c in self._children)
        return 8 * n + 4 * n + 4 * n + 4 * child_entries + 4 * len(self.seeds)

    def check_consistency(self, tol: float = 1e-9) -> None:
        """Assert the forest invariants; raises AssertionError on violation.

        * every seed has dist 0, itself as seed, no parent;
        * every non-seed reachable node's dist equals its parent's dist
          plus the connecting edge weight, with matching seed;
        * no reachable node could improve through any neighbor (triangle
          inequality of the Voronoi assignment).
        """
        seeds = set(self.seeds)
        for s in self.seeds:
            assert self.dist[s] == 0.0, f"seed {s} has dist {self.dist[s]}"
            assert self.seed[s] == s, f"seed {s} assigned to {self.seed[s]}"
            assert self.parent[s] == -1, f"seed {s} has parent {self.parent[s]}"
        for x in self.graph.nodes():
            if x in seeds:
                continue
            if self.seed[x] < 0:
                assert self.dist[x] == INF, f"unreachable {x} has finite dist"
                continue
            p = self.parent[x]
            assert p >= 0, f"reachable non-seed {x} lacks a parent"
            expect = self.dist[p] + self.weight(x, p)
            assert abs(self.dist[x] - expect) <= tol * max(1.0, abs(expect)), (
                f"node {x}: dist {self.dist[x]} != parent path {expect}"
            )
            assert self.seed[x] == self.seed[p], (
                f"node {x}: seed {self.seed[x]} != parent's seed {self.seed[p]}"
            )
        for x in self.graph.nodes():
            for y in self.graph.neighbors(x):
                if self.seed[y] < 0:
                    continue
                through = self.dist[y] + self.weight(x, y)
                assert self.dist[x] <= through + tol * max(1.0, through), (
                    f"node {x} could improve via {y}: {self.dist[x]} > {through}"
                )
