"""Parallel index maintenance (Lemma 13).

The ``log₂(n) × k`` Voronoi partitions in ``P`` are mutually independent
in storage, update and query processing, so an edge-weight update can be
dispatched to all of them concurrently — the paper states the update "is
embarrassingly parallel and can be deployed to achieve a speedup up to
log₂(n) × k".

:class:`ParallelUpdater` reproduces that structure with a thread pool:
each worker owns a disjoint shard of partitions and repairs them
independently; no locks are needed because nothing is shared except the
read-only graph and the weight table, which is written once *before* the
fan-out.  (CPython's GIL caps the wall-clock speedup of pure-Python
workers; the point reproduced here is the independence/correctness of
the decomposition, verified by tests against sequential updates.  A
native or subinterpreter backend would realize the full speedup.)
"""

from __future__ import annotations

import random
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from ..graph.graph import Edge, Graph, edge_key
from .pyramid import Pyramid, PyramidIndex, levels_for, seeds_at_level
from .voronoi import VoronoiPartition

__all__ = ["ParallelUpdater", "build_index_parallel"]


class ParallelUpdater:
    """Fan edge-weight updates out over the independent partitions.

    Parameters
    ----------
    index:
        The pyramid index to maintain.  The updater replaces the usual
        :meth:`PyramidIndex.update_edge_weight` call path; do not mix the
        two concurrently.
    workers:
        Thread-pool size (default: min(8, number of partitions)).
    """

    def __init__(self, index: PyramidIndex, *, workers: Optional[int] = None) -> None:
        self.index = index
        self._levels: List[int] = []
        self._partitions: List[VoronoiPartition] = []
        for level, partition in index.partitions_with_levels():
            self._levels.append(level)
            self._partitions.append(partition)
        if workers is None:
            workers = min(8, len(self._partitions)) or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="pyramid-update"
        )

    def update_edge_weight(self, u: int, v: int, new_weight: float) -> int:
        """Set the weight and repair all partitions concurrently.

        Semantics identical to :meth:`PyramidIndex.update_edge_weight`;
        returns the total number of touched nodes.
        """
        if new_weight <= 0:
            raise ValueError(f"weight must be positive, got {new_weight}")
        key = edge_key(u, v)
        old = self.index._weights[key]
        if new_weight == old:
            return 0
        # The weight table is written exactly once, before any worker
        # reads it: every partition then sees one consistent new value.
        self.index._store_weight(key, new_weight)

        def repair(partition: VoronoiPartition) -> int:
            return partition.apply_weight_change(u, v, old, new_weight)

        moved = list(self._pool.map(repair, self._partitions))
        touched = sum(moved)
        for level, partition, count in zip(self._levels, self._partitions, moved):
            self.index._record_repair(level, count)
            self.index.affected_since_drain |= partition.last_affected
        self.index.total_touched += touched
        self.index.update_count += 1
        if new_weight > old:
            self.index.update_increases += 1
        else:
            self.index.update_decreases += 1
        return touched

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelUpdater":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def build_index_parallel(
    graph: Graph,
    weights: Dict[Edge, float],
    *,
    k: int = 4,
    seed: Optional[int] = 0,
    support: float = 0.7,
    workers: int = 4,
) -> PyramidIndex:
    """Construct a :class:`PyramidIndex` with concurrent partition builds.

    The Das Sarma oracle's construction "can be easily parallelized/
    distributed" [31]: each (pyramid, level) Voronoi partition is an
    independent multi-source Dijkstra.  This builder derives exactly the
    same seed sets as the sequential :class:`PyramidIndex` constructor
    (same ``seed`` ⇒ identical index) but runs the Dijkstras through a
    thread pool.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    # Set up the index shell without building partitions: replicate the
    # constructor's validation and RNG stream, then build concurrently.
    index = PyramidIndex.__new__(PyramidIndex)
    missing = [e for e in graph.edges() if e not in weights]
    if missing:
        raise ValueError(f"weights missing for {len(missing)} edges")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    index.graph = graph
    index.k = k
    index.support = support
    index._weights = dict(weights)
    index._weight_fn = index._make_weight_fn()
    index._init_counters()
    rng = random.Random(seed)
    nodes = list(graph.nodes())
    jobs = []  # (pyramid_idx, level, seeds) in the sequential RNG order
    for p_idx in range(k):
        sub = random.Random(rng.randrange(2**63))
        for level in range(1, levels_for(graph.n) + 1):
            seeds = sub.sample(nodes, seeds_at_level(level, graph.n))
            jobs.append((p_idx, level, seeds))

    def build(job: Tuple[int, int, List[int]]) -> Tuple[int, int, VoronoiPartition]:
        p_idx, level, seeds = job
        return p_idx, level, VoronoiPartition(graph, seeds, index._weight_fn)

    index.pyramids = []
    for p_idx in range(k):
        pyramid = Pyramid.__new__(Pyramid)
        pyramid.graph = graph
        pyramid.levels = {}
        index.pyramids.append(pyramid)
    with ThreadPoolExecutor(max_workers=workers) as pool:
        for p_idx, level, partition in pool.map(build, jobs):
            index.pyramids[p_idx].levels[level] = partition
    return index
