"""LOUV — the Louvain method [12], the paper's offline modularity baseline.

Greedy modularity optimization in two alternating phases:

1. **Local moving** — repeatedly move each node to the neighboring
   community that maximizes the modularity gain, until no move improves.
2. **Aggregation** — collapse communities into super-nodes (with self-loop
   weights for internal edges) and recurse.

The implementation is weighted throughout, so the same code serves the
static Table III runs (unit weights) and the activation-network snapshots
(activeness weights).  Node visit order is seed-shuffled for the usual
Louvain robustness, but fully deterministic for a given seed.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..graph.graph import Edge, Graph

__all__ = ["louvain"]

Weights = Optional[Mapping[Edge, float]]


class _WeightedAdj:
    """Flattened weighted adjacency used by the Louvain passes."""

    def __init__(self, n: int, edges: Sequence[Tuple[int, int, float]]) -> None:
        self.n = n
        self.neighbors: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
        self.self_loops = [0.0] * n
        self.total = 0.0  # sum of edge weights incl. self loops
        for u, v, w in edges:
            if w <= 0:
                continue
            if u == v:
                self.self_loops[u] += w
                self.total += w
            else:
                self.neighbors[u].append((v, w))
                self.neighbors[v].append((u, w))
                self.total += w
        self.strength = [
            2.0 * self.self_loops[v] + sum(w for _, w in self.neighbors[v])
            for v in range(n)
        ]


def _one_level(adj: _WeightedAdj, rng: random.Random) -> Tuple[List[int], bool]:
    """One local-moving phase.  Returns (community of each node, moved?)."""
    n = adj.n
    community = list(range(n))
    comm_strength = list(adj.strength)
    # Weight of links from node v into each community (scratch dict per node).
    two_m = 2.0 * adj.total
    if two_m <= 0:
        return community, False
    order = list(range(n))
    rng.shuffle(order)
    improved_any = False
    improved = True
    while improved:
        improved = False
        for v in order:
            cv = community[v]
            # Links from v to neighboring communities.
            links: Dict[int, float] = {}
            for u, w in adj.neighbors[v]:
                links[community[u]] = links.get(community[u], 0.0) + w
            # Remove v from its community.
            comm_strength[cv] -= adj.strength[v]
            best_comm, best_gain = cv, 0.0
            base = links.get(cv, 0.0) - adj.strength[v] * comm_strength[cv] / two_m
            for comm, link in links.items():
                if comm == cv:
                    continue
                gain = (link - adj.strength[v] * comm_strength[comm] / two_m) - base
                if gain > best_gain + 1e-12:
                    best_gain, best_comm = gain, comm
            community[v] = best_comm
            comm_strength[best_comm] += adj.strength[v]
            if best_comm != cv:
                improved = True
                improved_any = True
    return community, improved_any


def _aggregate(
    adj: _WeightedAdj, community: List[int]
) -> Tuple[_WeightedAdj, List[int]]:
    """Collapse communities into super-nodes; returns (new adj, renumbering)."""
    labels = sorted(set(community))
    renumber = {lab: i for i, lab in enumerate(labels)}
    mapped = [renumber[c] for c in community]
    edge_acc: Dict[Tuple[int, int], float] = {}
    for v in range(adj.n):
        cv = mapped[v]
        if adj.self_loops[v] > 0:
            key = (cv, cv)
            edge_acc[key] = edge_acc.get(key, 0.0) + adj.self_loops[v]
        for u, w in adj.neighbors[v]:
            if u < v:
                continue  # count each undirected edge once
            cu = mapped[u]
            key = (min(cv, cu), max(cv, cu))
            edge_acc[key] = edge_acc.get(key, 0.0) + w
    edges = [(a, b, w) for (a, b), w in edge_acc.items()]
    return _WeightedAdj(len(labels), edges), mapped


def louvain(
    graph: Graph,
    weights: Weights = None,
    *,
    seed: int = 0,
    max_passes: int = 20,
) -> List[List[int]]:
    """Run Louvain; returns clusters (sorted node lists, ordered by min node).

    ``weights`` maps canonical edge keys to positive weights (unit when
    None).  ``max_passes`` bounds the level recursion; real runs converge
    in a handful of passes.
    """
    rng = random.Random(seed)
    edges = [
        (u, v, 1.0 if weights is None else weights.get((u, v), 0.0))
        for u, v in graph.edges()
    ]
    adj = _WeightedAdj(graph.n, edges)
    # membership[v] tracks v's community in the original node space.
    membership = list(range(graph.n))
    for _ in range(max_passes):
        community, moved = _one_level(adj, rng)
        if not moved:
            break
        adj, mapped = _aggregate(adj, community)
        membership = [mapped[community[m]] for m in membership]
        if adj.n == 1:
            break
    clusters: Dict[int, List[int]] = {}
    for v, c in enumerate(membership):
        clusters.setdefault(c, []).append(v)
    out = [sorted(c) for c in clusters.values()]
    out.sort(key=lambda c: c[0])
    return out
