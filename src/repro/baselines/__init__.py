"""Baseline clustering algorithms the paper compares against (Section VI):
LOUV (Louvain), SCAN, ATTR (Attractor), DYNA (incremental modularity),
LWEP (weighted graph streams), plus the spectral-clustering ground-truth
generator."""

from .attractor import Attractor, attractor, jaccard_similarity
from .dyna import Dyna
from .louvain import louvain
from .lwep import Lwep
from .scan import ScanResult, scan, structural_similarity
from .spectral import spectral_clustering

__all__ = [
    "Attractor",
    "attractor",
    "jaccard_similarity",
    "Dyna",
    "louvain",
    "Lwep",
    "ScanResult",
    "scan",
    "structural_similarity",
    "spectral_clustering",
]
