"""Spectral clustering [22] — the paper's ground-truth generator for
activation-network snapshots (Section VI-A).

Normalized spectral clustering (Ng–Jordan–Weiss):

1. build the (weighted) adjacency matrix ``W`` and the symmetric
   normalized operator ``D^{-1/2} W D^{-1/2}``;
2. take its ``k`` leading eigenvectors;
3. row-normalize the embedding and run seeded k-means.

Isolated nodes (zero weighted degree) carry no spectral information; they
are removed from the eigenproblem and appended as singleton clusters,
which keeps the output a full partition of ``V``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..graph.graph import Edge, Graph

__all__ = ["spectral_clustering"]

Weights = Optional[Mapping[Edge, float]]


def _adjacency_matrix(graph: Graph, weights: Weights, nodes: Sequence[int]) -> sp.csr_matrix:
    index = {v: i for i, v in enumerate(nodes)}
    rows, cols, data = [], [], []
    for u, v in graph.edges():
        if u not in index or v not in index:
            continue
        w = 1.0 if weights is None else weights.get((u, v), 0.0)
        if w <= 0:
            continue
        i, j = index[u], index[v]
        rows.extend((i, j))
        cols.extend((j, i))
        data.extend((w, w))
    n = len(nodes)
    return sp.csr_matrix((data, (rows, cols)), shape=(n, n))


def _kmeans(embedding: np.ndarray, k: int, seed: int, iterations: int = 50) -> np.ndarray:
    """Seeded k-means++ on the embedding rows; returns labels.

    Self-contained (no scipy.cluster dependency quirks) and fully
    deterministic for a given seed.
    """
    rng = np.random.default_rng(seed)
    n = embedding.shape[0]
    k = min(k, n)
    # k-means++ initialization.
    centers = np.empty((k, embedding.shape[1]))
    first = int(rng.integers(n))
    centers[0] = embedding[first]
    dist_sq = np.sum((embedding - centers[0]) ** 2, axis=1)
    for c in range(1, k):
        total = dist_sq.sum()
        if total <= 0:
            centers[c:] = embedding[rng.integers(n, size=k - c)]
            break
        probs = dist_sq / total
        choice = int(rng.choice(n, p=probs))
        centers[c] = embedding[choice]
        dist_sq = np.minimum(dist_sq, np.sum((embedding - centers[c]) ** 2, axis=1))
    labels = np.zeros(n, dtype=np.int64)
    for _ in range(iterations):
        # Assign.
        dists = ((embedding[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        new_labels = dists.argmin(axis=1)
        if np.array_equal(new_labels, labels):
            labels = new_labels
            break
        labels = new_labels
        # Update; re-seed empty clusters from the farthest points.
        for c in range(k):
            mask = labels == c
            if mask.any():
                centers[c] = embedding[mask].mean(axis=0)
            else:
                farthest = int(dists.min(axis=1).argmax())
                centers[c] = embedding[farthest]
    return labels


def spectral_clustering(
    graph: Graph,
    k: int,
    weights: Weights = None,
    *,
    seed: int = 0,
) -> List[List[int]]:
    """Cluster ``graph`` into (up to) ``k`` groups; returns sorted clusters.

    ``weights`` carries the activeness snapshot for activation-network
    ground truth; ``None`` means the unweighted graph.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    degree = [0.0] * graph.n
    for u, v in graph.edges():
        w = 1.0 if weights is None else weights.get((u, v), 0.0)
        degree[u] += w
        degree[v] += w
    active = [v for v in graph.nodes() if degree[v] > 0]
    isolated = [v for v in graph.nodes() if degree[v] <= 0]
    clusters: List[List[int]] = [[v] for v in isolated]
    if not active:
        return sorted(clusters, key=lambda c: c[0])
    k_eff = min(k, len(active))
    adjacency = _adjacency_matrix(graph, weights, active)
    deg = np.asarray(adjacency.sum(axis=1)).ravel()
    inv_sqrt = 1.0 / np.sqrt(deg)
    d_half = sp.diags(inv_sqrt)
    operator = d_half @ adjacency @ d_half
    if k_eff >= len(active) - 1 or len(active) < 32:
        # Dense fallback: eigsh cannot return nearly-all eigenpairs.
        dense = operator.toarray()
        vals, vecs = np.linalg.eigh(dense)
        embedding = vecs[:, -k_eff:]
    else:
        vals, vecs = spla.eigsh(operator, k=k_eff, which="LA")
        embedding = vecs
    norms = np.linalg.norm(embedding, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    embedding = embedding / norms
    labels = _kmeans(embedding, k_eff, seed)
    groups: Dict[int, List[int]] = {}
    for node, lab in zip(active, labels):
        groups.setdefault(int(lab), []).append(node)
    clusters.extend(sorted(g) for g in groups.values())
    clusters.sort(key=lambda c: c[0])
    return clusters
