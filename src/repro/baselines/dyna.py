"""DYNA — incremental modularity maximization on weight updates [43].

A DynaMo-style online baseline: communities are initialized with Louvain
and then *repaired* after each batch of edge-weight changes instead of
recomputed.  Following the reference's design:

* nodes incident to changed edges (plus their direct neighbors, the
  "affected set") are extracted into singleton communities;
* local moving re-runs from the previous assignment until no move
  improves modularity (aggregation is skipped — the repair stays in the
  original node space, as DynaMo's incremental phase does).

The structural weakness Table IV exposes is modelled faithfully: under
the time-decay scheme *every* edge weight changes at *every* timestamp,
so :meth:`step` must decay the entire weight table (O(m)) before applying
the activations — exactly why the paper's global decay factor wins by
orders of magnitude.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, List, Optional, Set

from ..graph.graph import Edge, Graph, edge_key
from .louvain import louvain

__all__ = ["Dyna"]


class Dyna:
    """Online incremental-modularity community maintenance.

    Parameters
    ----------
    graph:
        The relation network.
    lam:
        Decay factor λ of the time-decay scheme (weights decay between
        steps, as the paper's activation-network runs require).
    seed:
        Seed for the initial Louvain pass and move ordering.
    """

    def __init__(self, graph: Graph, *, lam: float = 0.1, seed: int = 0) -> None:
        self.graph = graph
        self.lam = lam
        self.rng = random.Random(seed)
        self.time = 0.0
        # Current (decayed) weights; initial activeness is 1 per edge.
        self.weights: Dict[Edge, float] = {e: 1.0 for e in graph.edges()}
        self.membership: List[int] = [0] * graph.n
        initial = louvain(graph, self.weights, seed=seed)
        for cid, cluster in enumerate(initial):
            for v in cluster:
                self.membership[v] = cid
        #: Edges scanned in the last step (observability: the O(m) decay).
        self.last_scanned = 0

    # ------------------------------------------------------------------
    def step(self, t: float, activations: Iterable[Edge]) -> None:
        """Advance to time ``t``: decay all weights, apply activations, repair.

        ``activations`` lists the edges activated at ``t`` (each adds a
        unit impulse).  The full-table decay scan is intrinsic to this
        baseline — it has no global decay factor.
        """
        if t < self.time:
            raise ValueError(f"time cannot go backwards: {t} < {self.time}")
        factor = math.exp(-self.lam * (t - self.time))
        self.time = t
        scanned = 0
        for key in self.weights:
            self.weights[key] *= factor
            scanned += 1
        self.last_scanned = scanned
        affected: Set[int] = set()
        for e in activations:
            key = edge_key(*e)
            if key not in self.weights:
                raise ValueError(f"activation on non-edge {key}")
            self.weights[key] += 1.0
            affected.add(key[0])
            affected.add(key[1])
        if affected:
            self._repair(affected)

    # ------------------------------------------------------------------
    def _repair(self, changed_nodes: Set[int]) -> None:
        """DynaMo-style repair: singletonize the affected set, re-move."""
        affected = set(changed_nodes)
        for v in changed_nodes:
            affected.update(self.graph.neighbors(v))
        next_id = max(self.membership, default=-1) + 1
        for v in affected:
            self.membership[v] = next_id
            next_id += 1
        self._local_moving(seed_nodes=affected)

    def _local_moving(self, seed_nodes: Optional[Set[int]] = None) -> None:
        """Weighted local moving to a modularity local optimum.

        Starts from the current membership.  The work queue begins with
        ``seed_nodes`` (or everything) and re-enqueues neighbors of moved
        nodes, so a localized change converges locally.
        """
        graph = self.graph
        strength = [0.0] * graph.n
        for (u, v), w in self.weights.items():
            strength[u] += w
            strength[v] += w
        total = sum(self.weights.values())
        if total <= 0:
            return
        two_m = 2.0 * total
        comm_strength: Dict[int, float] = {}
        for v in graph.nodes():
            comm_strength[self.membership[v]] = (
                comm_strength.get(self.membership[v], 0.0) + strength[v]
            )
        queue = list(seed_nodes) if seed_nodes is not None else list(graph.nodes())
        self.rng.shuffle(queue)
        in_queue = set(queue)
        while queue:
            v = queue.pop()
            in_queue.discard(v)
            cv = self.membership[v]
            links: Dict[int, float] = {}
            for u in graph.neighbors(v):
                w = self.weights[edge_key(u, v)]
                cu = self.membership[u]
                links[cu] = links.get(cu, 0.0) + w
            comm_strength[cv] -= strength[v]
            base = links.get(cv, 0.0) - strength[v] * comm_strength[cv] / two_m
            best_comm, best_gain = cv, 0.0
            for comm, link in links.items():
                if comm == cv:
                    continue
                gain = (link - strength[v] * comm_strength.get(comm, 0.0) / two_m) - base
                if gain > best_gain + 1e-12:
                    best_gain, best_comm = gain, comm
            self.membership[v] = best_comm
            comm_strength[best_comm] = comm_strength.get(best_comm, 0.0) + strength[v]
            if best_comm != cv:
                for u in graph.neighbors(v):
                    if u not in in_queue:
                        queue.append(u)
                        in_queue.add(u)

    # ------------------------------------------------------------------
    def clusters(self) -> List[List[int]]:
        """Current communities as sorted node lists ordered by min node."""
        groups: Dict[int, List[int]] = {}
        for v, c in enumerate(self.membership):
            groups.setdefault(c, []).append(v)
        out = [sorted(g) for g in groups.values()]
        out.sort(key=lambda c: c[0])
        return out
