"""LWEP — dynamic community detection in weighted graph streams [38], [19].

The SDM'13 baseline (Wang, Lai, Yu) that introduced the time-decay scheme
our paper adopts.  Its published design, which this reimplementation
follows:

* edge weights follow the exponential time-decay scheme, so **every**
  edge must be re-decayed at every timestamp (no global decay factor);
* each node maintains a *summary* of its top-k closest neighbors by a
  weighted structural similarity — the derived graph used for clustering;
* clustering is recomputed per step on the summary graph by weighted
  label propagation seeded from the previous step's labels.

The per-step cost is dominated by recomputing the weighted similarity for
every edge (``O(m · d̄)``) plus the label propagation — the heavy
per-timestamp recomputation that Table IV and Fig 10 show being
overwhelmed on activation networks.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, List, Tuple

from ..graph.graph import Edge, Graph, edge_key

__all__ = ["Lwep"]


class Lwep:
    """Top-k-summary weighted stream clustering.

    Parameters
    ----------
    graph:
        Relation network.
    lam:
        Decay factor λ.
    top_k:
        Summary size: each node keeps its ``top_k`` most similar
        neighbors (the reference's approximation knob).
    max_lp_rounds:
        Cap on label-propagation rounds per step.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        lam: float = 0.1,
        top_k: int = 5,
        max_lp_rounds: int = 20,
        seed: int = 0,
    ) -> None:
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        self.graph = graph
        self.lam = lam
        self.top_k = top_k
        self.max_lp_rounds = max_lp_rounds
        self.rng = random.Random(seed)
        self.time = 0.0
        self.weights: Dict[Edge, float] = {e: 1.0 for e in graph.edges()}
        self.labels: List[int] = list(graph.nodes())
        self._recluster()

    # ------------------------------------------------------------------
    def step(self, t: float, activations: Iterable[Edge]) -> None:
        """Advance to ``t``: decay every weight, apply activations, recluster."""
        if t < self.time:
            raise ValueError(f"time cannot go backwards: {t} < {self.time}")
        factor = math.exp(-self.lam * (t - self.time))
        self.time = t
        for key in self.weights:
            self.weights[key] *= factor
        for e in activations:
            key = edge_key(*e)
            if key not in self.weights:
                raise ValueError(f"activation on non-edge {key}")
            self.weights[key] += 1.0
        self._recluster()

    # ------------------------------------------------------------------
    def _similarity(self, u: int, v: int) -> float:
        """Weighted structural similarity over common neighborhoods."""
        w_uv = self.weights[edge_key(u, v)]
        num = w_uv
        for x in self.graph.common_neighbors(u, v):
            num += min(
                self.weights[edge_key(u, x)], self.weights[edge_key(v, x)]
            )
        denom_u = sum(self.weights[edge_key(u, x)] for x in self.graph.neighbors(u))
        denom_v = sum(self.weights[edge_key(v, x)] for x in self.graph.neighbors(v))
        denom = max(denom_u, denom_v)
        if denom <= 0:
            return 0.0
        return num / denom

    def _summary_graph(self) -> List[List[Tuple[int, float]]]:
        """Per-node top-k closest neighbors by weighted similarity."""
        summary: List[List[Tuple[int, float]]] = [[] for _ in range(self.graph.n)]
        sims: Dict[Edge, float] = {}
        for u, v in self.graph.edges():
            sims[(u, v)] = self._similarity(u, v)
        for v in self.graph.nodes():
            scored = [
                (sims[edge_key(v, u)], u) for u in self.graph.neighbors(v)
            ]
            scored.sort(reverse=True)
            summary[v] = [(u, s) for s, u in scored[: self.top_k]]
        return summary

    def _recluster(self) -> None:
        """Weighted label propagation on the summary graph."""
        summary = self._summary_graph()
        labels = list(self.labels)
        order = list(self.graph.nodes())
        for _ in range(self.max_lp_rounds):
            self.rng.shuffle(order)
            changed = 0
            for v in order:
                votes: Dict[int, float] = {}
                for u, s in summary[v]:
                    votes[labels[u]] = votes.get(labels[u], 0.0) + s
                if not votes:
                    continue
                # Deterministic argmax: strongest vote, then smallest label.
                best = min(votes.items(), key=lambda kv: (-kv[1], kv[0]))[0]
                if best != labels[v]:
                    labels[v] = best
                    changed += 1
            if changed == 0:
                break
        self.labels = labels

    # ------------------------------------------------------------------
    def clusters(self) -> List[List[int]]:
        """Current communities as sorted node lists ordered by min node."""
        groups: Dict[int, List[int]] = {}
        for v, lab in enumerate(self.labels):
            groups.setdefault(lab, []).append(v)
        out = [sorted(g) for g in groups.values()]
        out.sort(key=lambda c: c[0])
        return out
