"""ATTR — Attractor: community detection by distance dynamics [33].

The algorithm our paper's local reinforcement is motivated by.  Each edge
carries a distance ``d ∈ [0, 1]`` initialized from Jaccard dissimilarity.
Three interaction patterns repeatedly pull linked nodes together or push
them apart (``f = sin`` is the coupling function, as in the KDD'15 paper):

* **DI** — direct linkage: the two endpoints attract each other in
  proportion to their current similarity;
* **CI** — common neighbors: a shared neighbor that is close to both
  endpoints pulls them together;
* **EI** — exclusive neighbors: a neighbor of only one endpoint pulls the
  edge apart unless it is sufficiently similar to the other endpoint
  (cohesion threshold λ decides the sign).

Distances are clamped to [0, 1]; an edge frozen at 0 (converged cluster
interior) or 1 (severed) stops moving.  After convergence — empirically 3
to 50 iterations, the scalability weakness our paper fixes — communities
are the connected components over non-severed edges.

Degrees use closed neighborhoods ``|Γ(v)| = deg(v) + 1`` so leaf nodes do
not divide by zero, matching the reference implementation's behaviour.
"""

from __future__ import annotations

import math
from typing import Dict, List

from ..graph.graph import Edge, Graph, edge_key
from ..graph.traversal import connected_components

__all__ = ["jaccard_similarity", "Attractor", "attractor"]


def jaccard_similarity(graph: Graph, u: int, v: int) -> float:
    """Jaccard over closed neighborhoods Γ(u), Γ(v)."""
    shared = len(graph.common_neighbors(u, v))
    inter = shared + (2 if graph.has_edge(u, v) else 0)
    union = graph.degree(u) + 1 + graph.degree(v) + 1 - inter
    if union <= 0:
        return 0.0
    return inter / union


class Attractor:
    """Distance-dynamics community detection.

    Parameters
    ----------
    graph:
        The (unweighted) graph to cluster.
    cohesion:
        λ — the exclusive-neighbor cohesion threshold (0.5 default, the
        reference paper's recommendation).
    max_iterations:
        Hard stop; the reference reports 3–50 iterations to converge.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        cohesion: float = 0.5,
        max_iterations: int = 50,
    ) -> None:
        if not 0.0 <= cohesion <= 1.0:
            raise ValueError(f"cohesion must be in [0, 1], got {cohesion}")
        self.graph = graph
        self.cohesion = cohesion
        self.max_iterations = max_iterations
        self.distance: Dict[Edge, float] = {}
        self.iterations_run = 0
        for u, v in graph.edges():
            self.distance[(u, v)] = 1.0 - jaccard_similarity(graph, u, v)
        # Cache of virtual similarities for exclusive-neighbor pairs.
        self._virtual: Dict[Edge, float] = {}

    # ------------------------------------------------------------------
    def _sim(self, u: int, v: int) -> float:
        """1 - d for linked pairs; cached Jaccard for virtual pairs."""
        key = edge_key(u, v)
        d = self.distance.get(key)
        if d is not None:
            return 1.0 - d
        s = self._virtual.get(key)
        if s is None:
            s = jaccard_similarity(self.graph, u, v)
            self._virtual[key] = s
        return s

    def _delta(self, u: int, v: int) -> float:
        """Total distance change for edge (u, v) this iteration."""
        graph = self.graph
        du = graph.degree(u) + 1
        dv = graph.degree(v) + 1
        sim_uv = 1.0 - self.distance[edge_key(u, v)]
        # DI — direct linkage.
        delta = -(math.sin(sim_uv) / du + math.sin(sim_uv) / dv)
        # CI — common neighbors.
        for w in graph.common_neighbors(u, v):
            s_wu = self._sim(w, u)
            s_wv = self._sim(w, v)
            delta -= math.sin(s_wu) * s_wv / du + math.sin(s_wv) * s_wu / dv
        # EI — exclusive neighbors of u (influence through u's end).
        for w in graph.exclusive_neighbors(u, v):
            rho = self._sim(w, v) - self.cohesion
            delta -= math.sin(self._sim(u, w)) * rho / du
        # EI — exclusive neighbors of v.
        for w in graph.exclusive_neighbors(v, u):
            rho = self._sim(w, u) - self.cohesion
            delta -= math.sin(self._sim(v, w)) * rho / dv
        return delta

    # ------------------------------------------------------------------
    def run(self) -> List[List[int]]:
        """Iterate the dynamics to convergence and return the clusters."""
        for iteration in range(self.max_iterations):
            self.iterations_run = iteration + 1
            changed = False
            updates: Dict[Edge, float] = {}
            for key, d in self.distance.items():
                if d <= 0.0 or d >= 1.0:
                    continue  # frozen
                nd = d + self._delta(*key)
                nd = min(1.0, max(0.0, nd))
                if nd != d:
                    updates[key] = nd
                    changed = True
            self.distance.update(updates)
            if not changed:
                break
        return self.clusters()

    def clusters(self) -> List[List[int]]:
        """Connected components after removing severed (d ≥ 1) edges."""
        kept = Graph(self.graph.n)
        for (u, v), d in self.distance.items():
            if d < 1.0:
                kept.add_edge(u, v)
        return connected_components(kept)


def attractor(
    graph: Graph, *, cohesion: float = 0.5, max_iterations: int = 50
) -> List[List[int]]:
    """Convenience wrapper: run Attractor and return the clusters."""
    return Attractor(graph, cohesion=cohesion, max_iterations=max_iterations).run()
