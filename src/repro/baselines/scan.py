"""SCAN — Structural Clustering Algorithm for Networks [39].

SCAN clusters by structural similarity of closed neighborhoods:

    σ(u, v) = |Γ(u) ∩ Γ(v)| / √(|Γ(u)| · |Γ(v)|),  Γ(v) = N(v) ∪ {v}

A node is a *core* if at least μ neighbors are ε-similar to it.  Clusters
are grown from cores through ε-similar edges (structure-connected
components); non-member nodes become *hubs* (bridging ≥ 2 clusters) or
*outliers*.

The weighted variant replaces the set cosine with its weighted
counterpart, so the same code scores activeness-weighted snapshots in the
activation-network experiments:

    σ_w(u, v) = Σ_{x∈Γ(u)∩Γ(v)} w(u,x)·w(v,x) / √(Σ w(u,·)² · Σ w(v,·)²)

with ``w(v, v) = 1`` for the closed-neighborhood self term.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Set

from ..graph.graph import Edge, Graph, edge_key

__all__ = ["ScanResult", "structural_similarity", "scan"]

Weights = Optional[Mapping[Edge, float]]


@dataclass
class ScanResult:
    """Clusters plus the node dispositions SCAN distinguishes."""

    clusters: List[List[int]]
    hubs: List[int]
    outliers: List[int]
    cores: List[int] = field(default_factory=list)

    def all_clusters_with_noise(self) -> List[List[int]]:
        """Clusters plus singleton clusters for hubs/outliers.

        Convenient for metrics that require a full partition.
        """
        out = [list(c) for c in self.clusters]
        out.extend([v] for v in self.hubs)
        out.extend([v] for v in self.outliers)
        return out


def structural_similarity(
    graph: Graph, u: int, v: int, weights: Weights = None
) -> float:
    """σ(u, v) over closed neighborhoods, optionally weighted."""
    if weights is None:
        shared = len(graph.common_neighbors(u, v))
        # Closed neighborhoods: u and v are each other's neighbors, so the
        # intersection gains both endpoints.
        inter = shared + 2 if graph.has_edge(u, v) else shared
        gu = graph.degree(u) + 1
        gv = graph.degree(v) + 1
        return inter / math.sqrt(gu * gv)
    # Weighted cosine over closed neighborhoods with w(x, x) = 1.
    def w(a: int, b: int) -> float:
        return weights.get(edge_key(a, b), 0.0)

    num = 0.0
    for x in graph.common_neighbors(u, v):
        num += w(u, x) * w(v, x)
    if graph.has_edge(u, v):
        # x = v term (w(u,v)·w(v,v)) and x = u term (w(u,u)·w(v,u)).
        num += w(u, v) * 1.0 + 1.0 * w(v, u)
    norm_u = 1.0 + sum(w(u, x) ** 2 for x in graph.neighbors(u))
    norm_v = 1.0 + sum(w(v, x) ** 2 for x in graph.neighbors(v))
    return num / math.sqrt(norm_u * norm_v)


def scan(
    graph: Graph,
    *,
    eps: float = 0.5,
    mu: int = 2,
    weights: Weights = None,
) -> ScanResult:
    """Run SCAN with thresholds ``eps`` (ε) and ``mu`` (μ).

    Returns the clusters (each sorted), hub nodes and outlier nodes.
    Complexity is O(m · d̄) for the similarity computations plus a linear
    expansion, matching the paper's reported O(m) behaviour on sparse
    graphs.
    """
    if not 0.0 < eps <= 1.0:
        raise ValueError(f"eps must be in (0, 1], got {eps}")
    if mu < 1:
        raise ValueError(f"mu must be >= 1, got {mu}")
    n = graph.n
    # ε-neighborhoods (similarity computed once per edge).
    eps_neighbors: List[List[int]] = [[] for _ in range(n)]
    for u, v in graph.edges():
        if structural_similarity(graph, u, v, weights) >= eps:
            eps_neighbors[u].append(v)
            eps_neighbors[v].append(u)
    # Closed ε-neighborhood includes the node itself.
    is_core = [len(eps_neighbors[v]) + 1 >= mu for v in range(n)]

    cluster_id = [-1] * n
    clusters: List[List[int]] = []
    for v in range(n):
        if not is_core[v] or cluster_id[v] >= 0:
            continue
        cid = len(clusters)
        members = [v]
        cluster_id[v] = cid
        queue = [v]
        while queue:
            x = queue.pop()
            if not is_core[x]:
                continue  # border nodes join but do not expand
            for y in eps_neighbors[x]:
                if cluster_id[y] < 0:
                    cluster_id[y] = cid
                    members.append(y)
                    queue.append(y)
        clusters.append(sorted(members))

    hubs: List[int] = []
    outliers: List[int] = []
    for v in range(n):
        if cluster_id[v] >= 0:
            continue
        neighbor_clusters: Set[int] = {
            cluster_id[u] for u in graph.neighbors(v) if cluster_id[u] >= 0
        }
        if len(neighbor_clusters) >= 2:
            hubs.append(v)
        else:
            outliers.append(v)
    cores = [v for v in range(n) if is_core[v]]
    return ScanResult(clusters=clusters, hubs=hubs, outliers=outliers, cores=cores)
