"""Alternative temporal-weight models from the related work (Section II).

The paper positions the time-decay scheme against the two other ways the
literature models temporal edge relevance:

* **sliding window** — only activations within the last ``W`` time units
  count (each either uniformly, or not at all);
* **interval edges** — each edge is explicitly active during given
  ``[start, end]`` intervals.

Both are implemented here so the comparison the paper argues from can be
run: time-decay yields smooth, maintainable activeness (O(1) per
activation with the global decay factor), while the window model forgets
abruptly at the window edge and the interval model needs ground-truth
interval annotations.  ``benchmarks/bench_temporal_models.py`` and the
examples use these as drop-in weight providers for snapshot clustering.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Tuple

from ..graph.graph import Edge, Graph, edge_key
from .activation import Activation

__all__ = ["SlidingWindowActiveness", "IntervalEdgeModel"]


class SlidingWindowActiveness:
    """Activeness = number of activations within the trailing window.

    Maintains, per edge, a deque of in-window activation timestamps.
    Appending is O(1); expiry is amortized O(1) per activation (each
    timestamp enters and leaves its deque exactly once).  Unlike the
    time-decay scheme, *reading* a value at a later time requires expiry
    work — the maintenance burden the paper's global decay factor avoids.
    """

    def __init__(self, graph: Graph, window: float) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.graph = graph
        self.window = window
        self._events: Dict[Edge, Deque[float]] = {e: deque() for e in graph.edges()}
        self._now = 0.0

    @property
    def now(self) -> float:
        """Latest time observed."""
        return self._now

    def on_activation(self, u: int, v: int, t: float) -> int:
        """Record an activation; returns the edge's in-window count."""
        if t < self._now:
            raise ValueError(f"time cannot go backwards: {t} < {self._now}")
        self._now = t
        key = edge_key(u, v)
        try:
            events = self._events[key]
        except KeyError:
            raise ValueError(f"activation on non-edge {key}") from None
        events.append(t)
        self._expire(events, t)
        return len(events)

    def advance(self, t: float) -> None:
        """Move time forward without an activation (windows still expire)."""
        if t < self._now:
            raise ValueError(f"time cannot go backwards: {t} < {self._now}")
        self._now = t

    def _expire(self, events: Deque[float], t: float) -> None:
        cutoff = t - self.window
        while events and events[0] <= cutoff:
            events.popleft()

    def value(self, u: int, v: int) -> int:
        """In-window activation count of the edge at the current time."""
        events = self._events[edge_key(u, v)]
        self._expire(events, self._now)
        return len(events)

    def snapshot_weights(self, *, smoothing: float = 0.01) -> Dict[Edge, float]:
        """All edges' window counts as clustering weights.

        ``smoothing`` keeps never-active edges at a small positive weight
        so distance-based methods stay well-defined (mirrors the decay
        model's initial activeness of 1).
        """
        return {
            e: max(float(self.value(*e)), smoothing) for e in self.graph.edges()
        }

    def total_expiry_scan_cost(self) -> int:
        """Edges whose deque must be checked to read a full snapshot —
        the per-read maintenance the paper's scheme does not pay."""
        return len(self._events)


class IntervalEdgeModel:
    """Edges active during explicit [start, end] intervals.

    The model of temporal-network analyses that annotate each edge with
    validity intervals.  ``active_at(t)`` selects the live edge set, and
    ``snapshot_weights`` maps liveness to weights for snapshot
    clustering.  Intervals may overlap; membership is their union.
    """

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self._intervals: Dict[Edge, List[Tuple[float, float]]] = {
            e: [] for e in graph.edges()
        }

    def add_interval(self, u: int, v: int, start: float, end: float) -> None:
        """Declare the edge active during [start, end]."""
        if end < start:
            raise ValueError(f"interval end {end} before start {start}")
        key = edge_key(u, v)
        if key not in self._intervals:
            raise ValueError(f"({u}, {v}) is not a relation edge")
        self._intervals[key].append((start, end))

    def intervals_of(self, u: int, v: int) -> List[Tuple[float, float]]:
        """All intervals declared for the edge (unsorted, as given)."""
        return list(self._intervals[edge_key(u, v)])

    def is_active(self, u: int, v: int, t: float) -> bool:
        """Whether the edge is live at time ``t``."""
        return any(s <= t <= e for s, e in self._intervals[edge_key(u, v)])

    def active_at(self, t: float) -> List[Edge]:
        """All edges live at time ``t``."""
        return [e for e in self.graph.edges() if self.is_active(*e, t)]

    def snapshot_weights(self, t: float, *, smoothing: float = 0.01) -> Dict[Edge, float]:
        """Liveness indicator weights at time ``t`` (1 live / smoothing not)."""
        return {
            e: 1.0 if self.is_active(*e, t) else smoothing
            for e in self.graph.edges()
        }

    @staticmethod
    def from_activations(
        graph: Graph,
        activations: Iterable[Activation],
        *,
        session_gap: float,
    ) -> "IntervalEdgeModel":
        """Infer intervals from an activation stream by sessionization.

        Consecutive activations of an edge closer than ``session_gap``
        extend one interval; a larger gap starts a new one.  This is the
        standard construction used to compare interval models against
        stream models on the same data.
        """
        if session_gap <= 0:
            raise ValueError(f"session_gap must be positive, got {session_gap}")
        model = IntervalEdgeModel(graph)
        open_intervals: Dict[Edge, Tuple[float, float]] = {}
        for act in activations:
            key = act.edge
            if key in open_intervals:
                start, end = open_intervals[key]
                if act.t - end <= session_gap:
                    open_intervals[key] = (start, act.t)
                    continue
                model.add_interval(*key, start, end)
            open_intervals[key] = (act.t, act.t)
        for key, (start, end) in open_intervals.items():
            model.add_interval(*key, start, end)
        return model
