"""Local reinforcement (Section IV-B, Equations 2–4).

Upon an activation with trigger edge ``e(u, v)``, three "local" processes
combine the structural coherence and activeness into the similarity
function ``F_t`` (all defined per trigger node; ``u`` shown, ``v``
symmetric):

* **Direct consolidation** — ``AF(e) = F_t(e) · σ(u,v) / deg(u)``;
* **Triadic consolidation** —
  ``TF(e) = Σ_{w ∈ N(u)∩N(v)} √(F_t(u,w)·F_t(v,w)) · σ(w,u) / deg(u)``;
* **Wedge stretch** —
  ``WSF(e) = Σ_{w ∈ N(u)\\N(v)} F_t(w,u) · σ(w,u) / deg(u)``.

How the processes apply depends on the trigger node's role:

* core       → ``F ← F + AF + TF``         (Equation 2)
* periphery  → ``F ← F − WSF``             (Equation 3)
* p-core     → ``F ← F + AF + TF − WSF``   (Equation 4)

All reads and writes are on the **anchored** similarity values: each term
is a linear combination (no constant) of PosM quantities scaled by the
NeuM σ, so the update preserves PosM (Lemma 4) and the global decay factor
never appears here.  The touched set is ``N(u) ∪ N(v)``, giving the
``O(|N(u)| + |N(v)|)`` per-activation cost of Lemma 5.

The updated similarity is floored at a small positive value so the
reciprocal edge weight ``S_t^{-1}`` stays finite — the paper's distance
metric requires strictly positive similarities (Attractor solves the same
problem by truncating weights to [0, 1]).
"""

from __future__ import annotations

import math
from typing import Optional

from ..graph.graph import Graph, edge_key
from .decay import AnchoredEdgeValues
from .similarity import ActiveSimilarity, NodeRole

__all__ = ["LocalReinforcement"]

#: Default floor for the anchored similarity after reinforcement.  The
#: floor bounds how "severed" an edge can get: reviving a dormant
#: relationship goes through triadic consolidation (additive in the
#: *neighbor* edges' similarity), so the floor sets the depth of the hole
#: a fresh activation must climb out of.  A floored edge has reciprocal
#: weight 100 — two orders of magnitude beyond a unit edge, effectively
#: severed for the Voronoi partitions, yet recoverable within a few
#: activations once its triangles are active again.
SIMILARITY_FLOOR = 1e-2

#: Default cap, mirroring Attractor's truncation of weights to [0, 1]:
#: direct and triadic consolidation are (super-)multiplicative in F, so a
#: frequently activated clique compounds geometrically; without a modest
#: cap one hot edge monopolizes every shortest path and the wedge stretch
#: it feeds annihilates its node's other edges (winner-take-all).  The
#: [floor, cap] band of 1e4 matches the similarity dynamic range the
#: paper's case study reports (dis-similarities moving between 0.4 and
#: 20.0 on a unit-initialized graph).
SIMILARITY_CAP = 1e2


class LocalReinforcement:
    """Applies Equations 2–4 to a PosM similarity store.

    Parameters
    ----------
    graph:
        Relation network.
    sigma:
        Active similarity provider (NeuM, reads anchored activeness).
    similarity:
        The PosM anchored store holding ``F_t`` (``S_t`` in the engine).
    floor / cap:
        Clamps applied to the anchored similarity after each update.
    """

    def __init__(
        self,
        graph: Graph,
        sigma: ActiveSimilarity,
        similarity: AnchoredEdgeValues,
        *,
        floor: float = SIMILARITY_FLOOR,
        cap: float = SIMILARITY_CAP,
    ) -> None:
        if floor <= 0:
            raise ValueError(f"floor must be positive, got {floor}")
        if cap <= floor:
            raise ValueError(f"cap must exceed floor, got cap={cap}, floor={floor}")
        self.graph = graph
        self.sigma = sigma
        self.similarity = similarity
        self.floor = floor
        self.cap = cap

    # ------------------------------------------------------------------
    # The three local processes, for one trigger node.
    # ------------------------------------------------------------------
    def direct_consolidation(self, u: int, v: int) -> float:
        """``AF(e) = F_t(e) · σ(u,v) / deg(u)`` for trigger node ``u``."""
        deg = self.graph.degree(u)
        if deg == 0:
            return 0.0
        return self.similarity.anchored(u, v) * self.sigma.sigma(u, v) / deg

    def triadic_consolidation(self, u: int, v: int) -> float:
        """``TF(e)`` over common neighbors of ``u`` and ``v`` (trigger ``u``)."""
        deg = self.graph.degree(u)
        if deg == 0:
            return 0.0
        total = 0.0
        sim = self.similarity
        for w in self.graph.common_neighbors(u, v):
            fu = sim.anchored(u, w)
            fv = sim.anchored(v, w)
            if fu <= 0.0 or fv <= 0.0:
                continue
            total += math.sqrt(fu * fv) * self.sigma.sigma(w, u)
        return total / deg

    def wedge_stretch(self, u: int, v: int) -> float:
        """``WSF(e)`` over u's neighbors exclusive of v (trigger ``u``)."""
        deg = self.graph.degree(u)
        if deg == 0:
            return 0.0
        total = 0.0
        sim = self.similarity
        for w in self.graph.exclusive_neighbors(u, v):
            total += sim.anchored(w, u) * self.sigma.sigma(w, u)
        return total / deg

    # ------------------------------------------------------------------
    def delta_for_trigger(self, u: int, v: int, role: Optional[NodeRole] = None) -> float:
        """Signed anchored-space delta contributed by trigger node ``u``.

        Dispatches on ``role`` (computed if not given) per Equations 2–4.
        """
        if role is None:
            role = self.sigma.role(u)
        if role is NodeRole.CORE:
            return self.direct_consolidation(u, v) + self.triadic_consolidation(u, v)
        if role is NodeRole.PERIPHERY:
            return -self.wedge_stretch(u, v)
        return (
            self.direct_consolidation(u, v)
            + self.triadic_consolidation(u, v)
            - self.wedge_stretch(u, v)
        )

    def apply(self, u: int, v: int) -> float:
        """Run the full local reinforcement for trigger edge ``{u, v}``.

        Both trigger nodes contribute (symmetrically), the deltas are
        applied together, and the result is clamped so that the *actual*
        (decayed) similarity lies in ``[floor, cap]``.  Clamping in actual
        space matters: an edge saturated at the cap decays away from it
        between activations, so a currently-active edge always
        out-similarities a dormant one — clamping the anchored value
        instead would freeze both at the cap forever.  Returns the new
        anchored similarity of the edge.
        """
        key = edge_key(u, v)
        delta = self.delta_for_trigger(u, v) + self.delta_for_trigger(v, u)
        new = self.similarity.anchored(u, v) + delta
        lo = self.similarity.to_anchored(self.floor)
        hi = self.similarity.to_anchored(self.cap)
        new = min(max(new, lo), hi)
        self.similarity.set_anchored(key[0], key[1], new)
        return new

    def sweep(self) -> None:
        """One repetition: apply reinforcement over every edge of ``E``.

        This is step (iii) of the ``S_0`` initialization (Section IV-C) and
        the periodic refresh of ANCOR.  Edges are processed in the graph's
        canonical edge order; updates within a sweep see earlier updates,
        matching the sequential "stream of activations over all edges"
        formulation in the paper.
        """
        for u, v in self.graph.edges():
            self.apply(u, v)
