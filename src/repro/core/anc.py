"""The ANC engines (Section VI "Our Methods"): ANCF, ANCO, ANCOR.

All three share the Section IV metric machinery and the Section V pyramid
index; they differ in *when* the similarity function is reinforced and how
the index is kept current:

* :class:`ANCO` — fully online.  Each activation updates ``S_t`` with one
  local reinforcement on the trigger edge and repairs every Voronoi
  partition with the bounded Update-Decrease/Update-Increase.  Per
  activation cost ``O(Σ_{x∈U'} deg(x))`` (Lemma 12).
* :class:`ANCOR` — ANCO plus a full reinforcement sweep every
  ``reinforce_interval`` time units (default 5, the paper's default),
  trading update time for clustering quality.
* :class:`ANCF` — offline.  Along the stream only the activeness is
  maintained; at each snapshot ``S_t`` is recomputed from scratch with
  ``rep`` reinforcement repetitions and the index is fully rebuilt
  (complexity ``O(k·m + n log n)`` per snapshot).

Every engine exposes the Problem 1 query API through
:attr:`~ANCEngineBase.queries` (a
:class:`~repro.index.clustering.ClusterQueryEngine`) and convenience
delegates ``clusters`` / ``cluster_of`` / ``zoom``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..graph.graph import Graph
from ..index.clustering import ClusterQueryEngine, Clustering
from ..index.pyramid import PyramidIndex
from ..obs.instruments import MetricsRegistry
from ..obs.trace import DISABLED_OBS, Observability
from .activation import Activation, ActivationStream
from .metric import SimilarityFunction

__all__ = [
    "ANCParams",
    "ANCEngineBase",
    "ANCO",
    "ANCOR",
    "ANCF",
    "make_engine",
]


@dataclass(frozen=True)
class ANCParams:
    """Shared knobs of the ANC family (paper Table II defaults in bold).

    lam:
        Decay factor λ (the activation experiments use 0.1; the Twitter
        day trace uses 0.01).
    eps / mu:
        Active-neighbor threshold ε and core threshold μ (graph-dependent
        per the paper; defaults chosen to be reasonable on the synthetic
        stand-ins).
    rep:
        Reinforcement repetitions (**7**).
    k:
        Number of pyramids (**4**).
    support:
        Voting threshold θ (0.7).
    seed:
        RNG seed for pyramid seed sampling.
    rescale_every:
        Batched-rescale period of the decay clock.
    method:
        'power' (the paper's DirectedCluster) or 'even' clustering.
    update_workers:
        Thread count for the Lemma 13 parallel index maintenance: > 0
        routes every online edge-weight update through a
        :class:`~repro.index.parallel.ParallelUpdater` with that many
        workers; 0 (default) repairs partitions sequentially.  Results
        are identical either way; see the GIL caveat in
        ``docs/usage.md`` before expecting wall-clock speedups.  This
        knob parallelises *within* one engine process; the scale-out
        path that sidesteps the GIL entirely is :mod:`repro.shard`,
        which partitions the relation graph across engine worker
        *processes* (``repro-anc shard-serve --shards N``; see
        ``docs/sharding.md``).
    engine_backend:
        ``"dict"`` (default; the pure-Python dict-of-dicts path, kept
        permanently as the correctness oracle) or ``"array"`` (the
        structure-of-arrays hot path: flat edge-id-indexed stores,
        generation-cached σ/roles, inlined pyramid repair).  Both
        backends produce bit-for-bit identical similarities, clusters
        and checkpoint bytes — enforced by ``tests/test_engine_parity.py``
        and the chaos matrix's ``ANC_BACKEND=array`` slice; see
        ``docs/engine-internals.md``.
    """

    lam: float = 0.1
    eps: float = 0.3
    mu: int = 3
    rep: int = 7
    k: int = 4
    support: float = 0.7
    seed: int = 0
    rescale_every: int = 1024
    method: str = "power"
    update_workers: int = 0
    engine_backend: str = "dict"


class ANCEngineBase:
    """Common wiring: metric + index + query engine over one graph."""

    def __init__(
        self,
        graph: Graph,
        params: Optional[ANCParams] = None,
        *,
        obs: Optional[Observability] = None,
    ) -> None:
        self.graph = graph
        self.params = params or ANCParams()
        p = self.params
        if p.engine_backend not in ("dict", "array"):
            raise ValueError(f"unknown engine backend {p.engine_backend!r}")
        self.metric = SimilarityFunction(
            graph,
            lam=p.lam,
            eps=p.eps,
            mu=p.mu,
            rep=p.rep,
            rescale_every=p.rescale_every,
            backend=p.engine_backend,
        )
        if self.metric.space is not None:
            from ..index.array_index import ArrayPyramidIndex

            self.index: PyramidIndex = ArrayPyramidIndex(
                graph,
                self.metric.snapshot_weights(),
                k=p.k,
                seed=p.seed,
                support=p.support,
                space=self.metric.space,
            )
        else:
            self.index = PyramidIndex(
                graph,
                self.metric.snapshot_weights(),
                k=p.k,
                seed=p.seed,
                support=p.support,
            )
        self.metric.clock.add_rescale_listener(self.index.on_rescale)
        self.queries = ClusterQueryEngine(self.index, method=p.method)
        #: Activations processed so far.
        self.activations_processed = 0
        self._init_obs(obs)

    # -- observability -----------------------------------------------------
    def _init_obs(self, obs: Optional[Observability]) -> None:
        """Set up the observability binding (restore paths call this too)."""
        self.obs = DISABLED_OBS
        if obs is not None:
            self.attach_obs(obs)

    def attach_obs(self, obs: Observability) -> None:
        """Bind an :class:`~repro.obs.trace.Observability` bundle.

        Pure wiring, not a state mutation: the engine's components start
        tracing into ``obs.tracer`` and the engine's operational stats
        are registered as gauges in ``obs.registry`` (late-binding reads
        of live attributes — registering costs nothing on the hot path).
        With ``obs.enabled`` false only the tracer handle is threaded
        through, keeping the disabled no-op fast path.
        """
        self.obs = obs
        self.metric.tracer = obs.tracer
        self.queries.bind_obs(obs)
        if obs.enabled:
            self._register_gauges(obs.registry)

    def _register_gauges(self, registry: MetricsRegistry) -> None:
        """Fold the :meth:`stats` figures into a metrics registry."""
        registry.gauge(
            "engine_activations", lambda: float(self.activations_processed)
        )
        registry.gauge("engine_stream_time", lambda: self.metric.clock.now)
        registry.gauge(
            "engine_rescales", lambda: float(self.metric.clock.rescale_count)
        )
        registry.gauge("index_updates", lambda: float(self.index.update_count))
        registry.gauge("index_touched", lambda: float(self.index.total_touched))
        registry.gauge(
            "index_update_increases", lambda: float(self.index.update_increases)
        )
        registry.gauge(
            "index_update_decreases", lambda: float(self.index.update_decreases)
        )
        for level in range(1, self.index.num_levels + 1):
            registry.gauge(
                f"index_level{level}_touched",
                lambda l=level: float(self.index.touched_by_level.get(l, 0)),
            )
            registry.gauge(
                f"index_level{level}_repairs",
                lambda l=level: float(self.index.repairs_by_level.get(l, 0)),
            )

    # -- stream ingestion (overridden per engine) -------------------------
    def process(self, act: Activation) -> None:
        """Absorb one activation."""
        raise NotImplementedError

    def process_batch(self, batch: Sequence[Activation]) -> None:
        """Absorb a batch sharing (or advancing through) timestamps."""
        tracer = self.obs.tracer
        if tracer.enabled:
            with tracer.span("process_batch", size=len(batch)):
                self._process_batch(batch)
        else:
            self._process_batch(batch)

    def _process_batch(self, batch: Sequence[Activation]) -> None:
        for act in batch:
            self.process(act)
        if batch:
            self.on_batch_end(batch[-1].t)

    def process_stream(self, stream: ActivationStream) -> None:
        """Absorb an entire stream, batch by timestamp."""
        for _, batch in stream.batches_by_timestamp():
            self.process_batch(batch)

    def on_batch_end(self, t: float) -> None:
        """Hook after each timestamp batch (ANCOR reinforces here)."""

    # -- queries (Problem 1) -----------------------------------------------
    def clusters(self, level: Optional[int] = None) -> Clustering:
        """All clusters (default granularity: ``Θ(√n)`` clusters)."""
        return self.queries.clusters(level)

    def cluster_of(self, v: int, level: Optional[int] = None) -> List[int]:
        """Local cluster query for node ``v``."""
        return self.queries.cluster_of(v, level)

    def zoom_in(self, level: int) -> int:
        """Next finer granularity level."""
        return self.queries.zoom_in(level)

    def zoom_out(self, level: int) -> int:
        """Next coarser granularity level."""
        return self.queries.zoom_out(level)

    @property
    def now(self) -> float:
        """Current stream time."""
        return self.metric.clock.now

    def close(self) -> None:
        """Release auxiliary resources (worker pools); engines stay queryable."""

    def stats(self) -> dict:
        """Operational snapshot for observability dashboards and tests.

        Pure reads; safe to call at any time.  Keys:

        * ``activations`` — activations processed;
        * ``now`` / ``anchor`` — stream time and decay anchor ``t*``;
        * ``rescales`` — batched rescales run;
        * ``index_updates`` / ``index_touched`` — weight updates
          dispatched to the pyramids and the cumulative touched-node
          count (the Lemma 12 budget actually spent);
        * ``index_update_increases`` / ``index_update_decreases`` —
          Update-Increase vs Update-Decrease dispatch counts;
        * ``index_touched_by_level`` / ``index_repairs_by_level`` — the
          per-granularity-level repair cost split;
        * ``levels`` / ``pyramids`` — index shape;
        * ``roles`` — current core / p-core / periphery counts.
        """
        from .similarity import NodeRole

        roles = self.metric.sigma.role_counts()
        return {
            "activations": self.activations_processed,
            "now": self.metric.clock.now,
            "anchor": self.metric.clock.anchor,
            "rescales": self.metric.clock.rescale_count,
            "index_updates": self.index.update_count,
            "index_touched": self.index.total_touched,
            "index_update_increases": self.index.update_increases,
            "index_update_decreases": self.index.update_decreases,
            "index_touched_by_level": dict(sorted(self.index.touched_by_level.items())),
            "index_repairs_by_level": dict(sorted(self.index.repairs_by_level.items())),
            "levels": self.index.num_levels,
            "pyramids": self.index.k,
            "roles": {
                "core": roles[NodeRole.CORE],
                "p_core": roles[NodeRole.P_CORE],
                "periphery": roles[NodeRole.PERIPHERY],
            },
        }


class ANCO(ANCEngineBase):
    """Fully online ANC: per-activation reinforcement + bounded index repair.

    The weight listener wiring makes each activation flow as:
    activeness bump → trigger-edge reinforcement → index
    Update-Decrease/Increase on the changed weight — the end-to-end online
    path whose amortized cost Table IV reports.
    """

    def __init__(
        self,
        graph: Graph,
        params: Optional[ANCParams] = None,
        *,
        obs: Optional[Observability] = None,
    ) -> None:
        super().__init__(graph, params, obs=obs)
        self._wire_updates()

    def _wire_updates(self) -> None:
        """Create the index-update path and subscribe to weight changes.

        Split out of ``__init__`` because engine restoration
        (:func:`repro.service.snapshots.restore_engine`) rebuilds the
        index from disk and must re-wire exactly this.  With
        ``params.update_workers > 0`` the repairs fan out over a
        :class:`~repro.index.parallel.ParallelUpdater` (Lemma 13);
        results are identical to the sequential path.
        """
        from ..index.parallel import ParallelUpdater

        workers = self.params.update_workers
        if workers < 0:
            raise ValueError(f"update_workers must be >= 0, got {workers}")
        self._updater = (
            ParallelUpdater(self.index, workers=workers) if workers > 0 else None
        )
        self.metric.add_weight_listener(self._on_weight_change)

    def _on_weight_change(self, u: int, v: int, new_weight: float) -> None:
        if self._updater is not None:
            self._updater.update_edge_weight(u, v, new_weight)
        else:
            self.index.update_edge_weight(u, v, new_weight)

    def close(self) -> None:
        if self._updater is not None:
            self._updater.close()

    def process(self, act: Activation) -> None:
        self.metric.on_activation(act)
        self.activations_processed += 1


class ANCOR(ANCO):
    """ANCO with periodic full reinforcement (the paper's interval: 5).

    ``reinforce_interval`` is measured in stream time units; the sweep
    runs at batch boundaries, so with the experiments' one-batch-per-
    timestamp streams it fires every 5 timestamps.
    """

    def __init__(
        self,
        graph: Graph,
        params: Optional[ANCParams] = None,
        *,
        reinforce_interval: float = 5.0,
        obs: Optional[Observability] = None,
    ) -> None:
        if reinforce_interval <= 0:
            raise ValueError(f"reinforce_interval must be positive, got {reinforce_interval}")
        super().__init__(graph, params, obs=obs)
        self.reinforce_interval = reinforce_interval
        self._last_reinforce = 0.0

    def on_batch_end(self, t: float) -> None:
        if t - self._last_reinforce >= self.reinforce_interval:
            with self.obs.tracer.span("reinforce_all"):
                self.metric.reinforce_all()
            self._last_reinforce = t


class ANCF(ANCEngineBase):
    """Offline ANC: per-snapshot similarity recomputation + index rebuild.

    Along the stream only the activeness is maintained (cheap).  Queries
    go through :meth:`refresh`, which recomputes ``S_t`` with ``rep``
    reinforcement repetitions against the current activeness and rebuilds
    every Voronoi partition — the offline recomputation whose amortized
    cost Table IV's top half reports.
    """

    def __init__(
        self,
        graph: Graph,
        params: Optional[ANCParams] = None,
        *,
        obs: Optional[Observability] = None,
    ) -> None:
        super().__init__(graph, params, obs=obs)
        self._dirty = False

    def process(self, act: Activation) -> None:
        self.metric.on_activation_activeness_only(act)
        self.activations_processed += 1
        self._dirty = True

    def refresh(self) -> None:
        """Recompute ``S_t`` and rebuild the index (one snapshot)."""
        tracer = self.obs.tracer
        if tracer.enabled:
            with tracer.span("refresh"):
                self._refresh()
        else:
            self._refresh()
        self._dirty = False

    def _refresh(self) -> None:
        tracer = self.obs.tracer
        with tracer.span("recompute_similarity"):
            self.metric.recompute()
        with tracer.span("rebuild_index"):
            self.index.set_all_weights(self.metric.snapshot_weights())
            self.index.rebuild()

    def on_batch_end(self, t: float) -> None:
        # The offline method recomputes per snapshot; tests/benchmarks can
        # also call refresh() explicitly to time it in isolation.
        self.refresh()

    def clusters(self, level: Optional[int] = None) -> Clustering:
        if self._dirty:
            self.refresh()
        return super().clusters(level)

    def cluster_of(self, v: int, level: Optional[int] = None) -> List[int]:
        if self._dirty:
            self.refresh()
        return super().cluster_of(v, level)


def make_engine(
    name: str, graph: Graph, params: Optional[ANCParams] = None, **kwargs: object
) -> ANCEngineBase:
    """Factory by paper name: 'ANCF', 'ANCO' or 'ANCOR'."""
    table = {"ANCF": ANCF, "ANCO": ANCO, "ANCOR": ANCOR}
    try:
        cls = table[name.upper()]
    except KeyError:
        raise ValueError(f"unknown engine {name!r}; expected one of {sorted(table)}") from None
    return cls(graph, params, **kwargs)
