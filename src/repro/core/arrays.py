"""Structure-of-arrays backend for the engine hot path (ROADMAP item 1).

The dict-of-dicts pipeline (``decay`` / ``similarity`` /
``reinforcement``) pays a tuple allocation plus a hash probe for every
edge-value it touches, and the sampled profile
(``bench_results/profile_breakdown.json``) attributes ~65% of online
time to ``reinforce`` and ~26% to ``index_repair`` — almost all of it
those per-edge dict operations.  This module re-homes the hot state in
flat arrays indexed by a dense *edge id*:

* :class:`EdgeSpace` — the id-interning table.  Every canonical edge
  ``(u, v)`` gets a dense integer ``eid`` in ``graph.edges()`` order;
  per-node *paired* adjacency lists (``nbr[v][i]`` is the i-th neighbor,
  ``neid[v][i]`` the id of the connecting edge) make "value of the edge
  to my i-th neighbor" a single list index.
* :class:`ArrayEdgeValues` — an :class:`~repro.core.decay.AnchoredEdgeValues`
  drop-in whose payload is a flat ``List[float]`` indexed by eid, so the
  batched decay rescale is one contiguous elementwise sweep (the "lazy
  global decay with deferred per-edge materialization" of Definition 1,
  now over contiguous storage).
* :class:`ArrayActiveSimilarity` — σ and roles with *exact* generation
  caches plus a marker-array common-neighbor scan that replaces the
  merge-plus-dict-lookup inner loop.
* :class:`ArrayLocalReinforcement` — Equations 2–4 applied over the
  paired adjacency slices in one batch per trigger edge.

Bit-for-bit parity contract
---------------------------
The array backend is NOT "approximately the same": every float the dict
backend produces must be reproduced bitwise, because the chaos matrix,
the replica auditor and ``engine_signature`` all compare exact
``repr``s.  Three rules make that possible and every override below is
written against them:

1. **Same operands, same operation order.**  Sequential sums iterate the
   same (sorted) neighbor sequences and group additions exactly as the
   dict code does (``num += a(u,x) + a(v,x)``); elementwise multiplies
   (rescale absorption) are order-independent and may vectorize.
2. **Caches only ever short-circuit pure recomputation.**  A cached σ or
   role is returned only when a *generation stamp* proves that no input
   of the recomputation changed (activation endpoints bump their node
   generations and their neighbors' neighbor-generations; rescales and
   graph growth bump a global generation).  All stamps are sums of
   monotone counters, so a stamp match implies every input is untouched
   and the cached value equals the fresh recompute bitwise.
3. **Identical mutation history for order-bearing containers.**
   ``items_anchored()`` yields in eid order, which equals the dict
   backend's insertion order in every engine flow (initialization walks
   ``graph.edges()``; dynamic inserts append), so checkpoint documents
   are byte-identical across backends.

See ``docs/engine-internals.md`` for the full layout and the
parity-oracle testing contract (``tests/test_engine_parity.py``).
"""

from __future__ import annotations

from bisect import bisect_left
from math import sqrt
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..graph.graph import Edge, Graph, edge_key
from .decay import AnchoredEdgeValues, DecayClock, ValueKind
from .reinforcement import SIMILARITY_CAP, SIMILARITY_FLOOR, LocalReinforcement
from .similarity import ActiveSimilarity, NodeRole

__all__ = [
    "EdgeSpace",
    "ArrayEdgeValues",
    "ArrayActiveSimilarity",
    "ArrayLocalReinforcement",
]

#: Callback signature for edge-growth notifications: ``fn(eid, u, v)``
#: with ``u < v`` and ``eid == len(space.edges) - 1`` at call time.
GrowthListener = Callable[[int, int, int], None]


class EdgeSpace:
    """Dense edge-id interning over one graph, shared by all array stores.

    One instance per engine: the metric's stores, σ caches and the array
    pyramid index all key their flat payloads by this table's eids, so an
    edge inserted once (``ensure_edge``) grows every structure in
    lockstep through the registered growth listeners.

    ``nbr[v]`` holds *live references* to the graph's sorted adjacency
    lists (``Graph.neighbors`` returns the backing list), so a
    ``graph.add_edge`` is visible immediately; ``neid[v]`` is maintained
    in matching positions by :meth:`ensure_edge`.  The engine's only
    graph-mutation path (:func:`repro.index.dynamic.add_relation_edge`)
    calls ``ensure_edge`` right after ``add_edge``, keeping the pair
    aligned.
    """

    __slots__ = ("graph", "eid", "edges", "nbr", "neid", "_listeners")

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.eid: Dict[Edge, int] = {}
        self.edges: List[Edge] = []
        self.nbr: List[Sequence[int]] = [graph.neighbors(v) for v in graph.nodes()]
        self.neid: List[List[int]] = [[] for _ in graph.nodes()]
        self._listeners: List[GrowthListener] = []
        eid = self.eid
        for key in graph.edges():
            eid[key] = len(self.edges)
            self.edges.append(key)
        for v in graph.nodes():
            self.neid[v] = [
                eid[(v, x) if v < x else (x, v)] for x in self.nbr[v]
            ]

    def add_listener(self, listener: GrowthListener) -> None:
        """Register a growth callback invoked once per interned new edge."""
        self._listeners.append(listener)

    def ensure_edge(self, u: int, v: int) -> int:
        """Intern the (already graph-inserted) edge ``{u, v}``; return its eid.

        Idempotent.  New eids append — preserving the invariant that eid
        order equals the dict backend's insertion order — and every
        registered store/cache is grown through its listener before this
        returns.
        """
        key = edge_key(u, v)
        existing = self.eid.get(key)
        if existing is not None:
            return existing
        if not self.graph.has_edge(u, v):
            raise ValueError(f"edge {key} is not in the relation graph")
        e = len(self.edges)
        self.eid[key] = e
        self.edges.append(key)
        a, b = key
        self.neid[a].insert(bisect_left(self.nbr[a], b), e)
        self.neid[b].insert(bisect_left(self.nbr[b], a), e)
        for listener in self._listeners:
            listener(e, a, b)
        return e


class ArrayEdgeValues(AnchoredEdgeValues):
    """Flat-array :class:`AnchoredEdgeValues`: payload indexed by eid.

    The inherited ``_values`` dict is kept as an *overflow* store for
    edges that are not in the graph (the dict backend accepts those too);
    in every engine flow it stays empty, and a later ``ensure_edge``
    migrates any overflow value into the array.

    ``items_anchored()`` yields interned edges in eid order, then any
    overflow entries — exactly the dict backend's insertion order in all
    engine flows (see the module docstring), which is what keeps
    checkpoint documents byte-identical across backends.
    """

    __slots__ = ("space", "_vals", "_pres", "_count")

    def __init__(
        self, clock: DecayClock, kind: ValueKind, space: EdgeSpace, name: str = ""
    ) -> None:
        super().__init__(clock, kind, name=name)
        self.space = space
        m = len(space.edges)
        #: Anchored values by eid (0.0 when never set, matching dict .get).
        self._vals: List[float] = [0.0] * m
        #: Presence bits by eid (len/contains/items semantics).
        self._pres: List[bool] = [False] * m
        self._count = 0
        clock.attach(self)
        space.add_listener(self._on_edge_added)

    def _on_edge_added(self, e: int, u: int, v: int) -> None:
        if e == len(self._vals):
            self._vals.append(0.0)
            self._pres.append(False)
        key = (u, v)
        if key in self._values:  # migrate a pre-interning overflow value
            self._vals[e] = self._values.pop(key)
            self._pres[e] = True
            self._count += 1

    # -- anchored-space access -----------------------------------------
    def anchored(self, u: int, v: int) -> float:
        key = edge_key(u, v)
        e = self.space.eid.get(key)
        if e is None:
            return self._values.get(key, 0.0)
        return self._vals[e]

    def set_anchored(self, u: int, v: int, value: float) -> None:
        key = edge_key(u, v)
        e = self.space.eid.get(key)
        if e is None:
            self._values[key] = value
            return
        self.set_by_eid(e, value)

    def set_by_eid(self, e: int, value: float) -> None:
        """Hot-path write for a known-interned edge (no key hashing)."""
        self._vals[e] = value
        if not self._pres[e]:
            self._pres[e] = True
            self._count += 1

    def add_anchored(self, u: int, v: int, delta: float) -> float:
        key = edge_key(u, v)
        e = self.space.eid.get(key)
        if e is None:
            new = self._values.get(key, 0.0) + delta
            self._values[key] = new
            return new
        new = self._vals[e] + delta
        self._vals[e] = new
        if not self._pres[e]:
            self._pres[e] = True
            self._count += 1
        return new

    def set_actual(self, u: int, v: int, value: float) -> None:
        self.set_anchored(u, v, self.to_anchored(value))

    # -- bookkeeping -------------------------------------------------------
    def _absorb(self, g: float) -> None:
        # Per-value multiply/divide is elementwise (order-independent in
        # IEEE 754), so the contiguous sweep is free to differ from the
        # dict backend's sorted-key order and still agree bitwise.
        if self.kind is ValueKind.POSITIVE:
            vals = self._vals
            for i in range(len(vals)):
                vals[i] *= g
            for key in sorted(self._values):
                self._values[key] *= g
        elif self.kind is ValueKind.NEGATIVE:
            vals = self._vals
            for i in range(len(vals)):
                vals[i] /= g
            for key in sorted(self._values):
                self._values[key] /= g
        # NEUTRAL values are invariant under rescale.

    def items_anchored(self) -> Iterator[Tuple[Edge, float]]:
        pres = self._pres
        vals = self._vals
        for e, key in enumerate(self.space.edges):
            if pres[e]:
                yield key, vals[e]
        yield from self._values.items()

    def __len__(self) -> int:
        return self._count + len(self._values)

    def __contains__(self, key: Edge) -> bool:
        e = self.space.eid.get(key)
        if e is not None:
            return self._pres[e]
        return key in self._values


class ArrayActiveSimilarity(ActiveSimilarity):
    """σ and roles with generation-exact caches and marker-array scans.

    Cache soundness (what makes a hit bitwise-exact):

    * ``σ(u, v)`` depends only on the activeness of edges incident to
      ``u`` or ``v`` and on ``strength[u] + strength[v]``.  An activation
      on edge ``(p, q)`` changes those inputs iff ``{p,q} ∩ {u,v} ≠ ∅``,
      so stamping σ with ``gen[u] + gen[v] + ggen`` (all monotone
      counters) and bumping ``gen`` at the endpoints of every activation
      makes a stamp match a proof of unchanged inputs.
    * ``role(v)`` additionally depends on σ of every incident edge, so
      its stamp adds ``nbr_gen[v]``, bumped for every neighbor of an
      activation endpoint.
    * Rescales rescale strengths and activeness together (σ is NeuM but
      the division operands change), and graph growth changes
      common-neighbor sets — both bump the global generation ``ggen``.

    The recompute path replaces the common-neighbor merge with a *marker
    array*: a scratch ``mark`` of size n holds ``eid(a, x)`` for
    ``x ∈ N(a)`` (else -1) for up to two pinned nodes, so one σ costs a
    single pass over the other endpoint's paired adjacency with two list
    indexes per candidate — same neighbor sequence, same addition
    grouping as the dict merge, no tuples and no hashing.
    """

    def __init__(
        self,
        graph: Graph,
        activeness: "Activeness",  # noqa: F821 - forward ref, see decay module
        *,
        eps: float = 0.3,
        mu: int = 3,
        space: EdgeSpace,
    ) -> None:
        self._space = space
        n = graph.n
        #: Per-node generation: bumped when the node is an activation endpoint.
        self._gen = [0] * n
        #: Bumped when any neighbor of the node is an activation endpoint.
        self._nbr_gen = [0] * n
        #: Global generation: rescales and graph growth.
        self._ggen = 0
        m = len(space.edges)
        self._sc_val: List[float] = [0.0] * m
        self._sc_stamp: List[int] = [-1] * m
        self._role_val: List[Optional[NodeRole]] = [None] * n
        self._role_stamp: List[int] = [-1] * n
        #: Per-node adjacency-growth generation: common-neighbor sets of
        #: an edge change only when an endpoint gains a neighbor, so a
        #: cached CN list stamped with ``sgen[a] + sgen[b]`` (monotone)
        #: is exact until then — activations and rescales never touch it.
        self._sgen = [0] * n
        #: Per-eid cached CN structure: ``(xs, pairs)`` with ``xs`` the
        #: ascending common neighbors of the canonical edge ``(a, b)``
        #: and ``pairs[i] = (eid(a, xs[i]), eid(b, xs[i]))``.
        self._cn: List[Optional[Tuple[List[int], List[Tuple[int, int]]]]] = (
            [None] * m
        )
        self._cn_stamp: List[int] = [-1] * m
        #: Cached σ numerators with *explicit* invalidation: the edge
        #: (u, v) activation changes the numerator of exactly the edges
        #: joining a common neighbor to u or to v — the eids in (u, v)'s
        #: CN pair list — so ``on_activation_delta`` bumps ``_ngen`` for
        #: just those.  Rescales, store edits and graph growth fold in
        #: through ``ggen``.  (A σ recompute whose numerator is still
        #: fresh only re-divides by the new strength sum.)
        self._num_val: List[float] = [0.0] * m
        self._num_stamp: List[int] = [-1] * m
        self._ngen: List[int] = [0] * m
        # Two marker slots (node, eid-by-neighbor scratch array).
        self._mk_node = [-1, -1]
        self._mk_eid: List[List[int]] = [[-1] * n, [-1] * n]
        self._mk_lru = 0
        #: Direct reference to the activeness payload (hot-loop alias;
        #: ArrayEdgeValues mutates the list in place, never rebinds it).
        self._avals: List[float] = activeness.store._vals  # type: ignore[attr-defined]
        super().__init__(graph, activeness, eps=eps, mu=mu)
        space.add_listener(self._on_edge_added)

    # -- growth / invalidation -----------------------------------------
    def _on_edge_added(self, e: int, u: int, v: int) -> None:
        if e == len(self._sc_val):
            self._sc_val.append(0.0)
            self._sc_stamp.append(-1)
            self._cn.append(None)
            self._cn_stamp.append(-1)
            self._num_val.append(0.0)
            self._num_stamp.append(-1)
            self._ngen.append(0)
        # Common-neighbor sets changed for pairs around u and v.
        self._ggen += 1
        self._sgen[u] += 1
        self._sgen[v] += 1
        # Keep loaded markers structurally current.
        for s in (0, 1):
            if self._mk_node[s] == u:
                self._mk_eid[s][v] = e
            elif self._mk_node[s] == v:
                self._mk_eid[s][u] = e

    def _rebuild_strengths(self) -> None:
        super()._rebuild_strengths()
        # Arbitrary store edits may precede a rebuild; drop every cache.
        self._ggen += 1

    def on_activation_delta(self, u: int, v: int, anchored_delta: float) -> None:
        super().on_activation_delta(u, v, anchored_delta)
        self._gen[u] += 1
        self._gen[v] += 1
        ng = self._nbr_gen
        for x in self._space.nbr[u]:
            ng[x] += 1
        for x in self._space.nbr[v]:
            ng[x] += 1
        # Exact numerator invalidation: only the edges between a common
        # neighbor of (u, v) and one of the endpoints carry the changed
        # a(u, v) as a numerator term — precisely the CN pair eids.
        key = (u, v) if u < v else (v, u)
        e = self._space.eid.get(key)
        if e is not None:
            a, b = key
            sg = self._sgen
            cn = self._cn[e]
            if cn is None or self._cn_stamp[e] != sg[a] + sg[b]:
                cn = self._cn_build(e, a, b, b)
            eng = self._ngen
            for pa, pb in cn[1]:
                eng[pa] += 1
                eng[pb] += 1

    def on_rescale(self, g: float) -> None:
        super().on_rescale(g)
        self._ggen += 1

    # -- marker slots ----------------------------------------------------
    def _slot_of(self, a: int) -> int:
        if self._mk_node[0] == a:
            self._mk_lru = 1
            return 0
        if self._mk_node[1] == a:
            self._mk_lru = 0
            return 1
        return -1

    def _load_marker(self, a: int) -> int:
        s = self._mk_lru
        prev = self._mk_node[s]
        mark = self._mk_eid[s]
        space = self._space
        if prev >= 0:
            for x in space.nbr[prev]:
                mark[x] = -1
        for x, e in zip(space.nbr[a], space.neid[a]):
            mark[x] = e
        self._mk_node[s] = a
        self._mk_lru = 1 - s
        return s

    def marker_for(self, a: int) -> List[int]:
        """Pin ``a`` into a marker slot; returns its eid-by-neighbor array."""
        if self._mk_node[0] == a:
            self._mk_lru = 1
            return self._mk_eid[0]
        if self._mk_node[1] == a:
            self._mk_lru = 0
            return self._mk_eid[1]
        return self._mk_eid[self._load_marker(a)]

    # -- σ and roles -----------------------------------------------------
    def sigma(self, u: int, v: int) -> float:
        space = self._space
        e = space.eid.get((u, v) if u < v else (v, u), -1)
        if e < 0:
            # Non-edge pair (diagnostics / tests): the base scan is exact
            # and reads through ArrayEdgeValues.anchored transparently.
            return ActiveSimilarity.sigma(self, u, v)
        return self.sigma_eid(e, u, v)

    def _cn_build(
        self, e: int, a: int, b: int, prefer: int
    ) -> Tuple[List[int], List[Tuple[int, int]]]:
        """(Re)build the cached CN structure of canonical edge ``(a, b)``.

        ``prefer`` names the endpoint the *calling loop* holds fixed
        across consecutive σ calls: when neither endpoint is pinned in a
        marker slot we load ``prefer``, so a loop's second build finds
        its stable node pinned and never evicts a marker list the loop
        still holds (the two-slot LRU would otherwise thrash).
        """
        mk_node = self._mk_node
        if mk_node[0] == a:
            s, on_a = 0, True
            self._mk_lru = 1
        elif mk_node[1] == a:
            s, on_a = 1, True
            self._mk_lru = 0
        elif mk_node[0] == b:
            s, on_a = 0, False
            self._mk_lru = 1
        elif mk_node[1] == b:
            s, on_a = 1, False
            self._mk_lru = 0
        else:
            s, on_a = self._load_marker(prefer), prefer == a
        mark = self._mk_eid[s]
        space = self._space
        xs: List[int] = []
        pairs: List[Tuple[int, int]] = []
        # Scanning either endpoint's sorted adjacency yields the same
        # ascending common-neighbor sequence; the marker holds
        # eid(pinned, x), the scanned paired list supplies the other.
        if on_a:
            for x, eo in zip(space.nbr[b], space.neid[b]):
                m = mark[x]
                if m >= 0:
                    xs.append(x)
                    pairs.append((m, eo))
        else:
            for x, eo in zip(space.nbr[a], space.neid[a]):
                m = mark[x]
                if m >= 0:
                    xs.append(x)
                    pairs.append((eo, m))
        cn = (xs, pairs)
        self._cn[e] = cn
        self._cn_stamp[e] = self._sgen[a] + self._sgen[b]
        return cn

    def sigma_eid(self, e: int, u: int, v: int) -> float:
        """σ of the interned edge ``e = eid(u, v)`` — the hot entry point.

        Callers that walk paired adjacency slices already hold the eid;
        passing it skips the tuple build + hash probe of :meth:`sigma`.
        """
        stamp = self._gen[u] + self._gen[v] + self._ggen
        if self._sc_stamp[e] == stamp:
            return self._sc_val[e]
        strength = self._strength
        denom = strength[u] + strength[v]
        if denom <= 0.0:
            val = 0.0
        else:
            nst = self._ngen[e] + self._ggen
            if self._num_stamp[e] == nst:
                num = self._num_val[e]
            else:
                a, b = self._space.edges[e]
                sg = self._sgen
                cn = self._cn[e]
                if cn is None or self._cn_stamp[e] != sg[a] + sg[b]:
                    cn = self._cn_build(e, a, b, v)
                vals = self._avals
                num = 0.0
                # Same ascending common-neighbor sequence and the same
                # `a(u,x) + a(v,x)` per-step grouping as the dict merge;
                # IEEE addition is commutative, so the canonical (a, b)
                # orientation reproduces either call orientation bitwise.
                for pa, pb in cn[1]:
                    num += vals[pa] + vals[pb]
                self._num_val[e] = num
                self._num_stamp[e] = nst
            val = num / denom
        self._sc_val[e] = val
        self._sc_stamp[e] = stamp
        return val

    def role(self, v: int) -> NodeRole:
        stamp = self._gen[v] + self._nbr_gen[v] + self._ggen
        if self._role_stamp[v] == stamp:
            cached = self._role_val[v]
            assert cached is not None
            return cached
        space = self._space
        nbrs = space.nbr[v]
        if len(nbrs) < self.mu:
            result = NodeRole.PERIPHERY
        else:
            count = 0
            eps = self.eps
            mu = self.mu
            sigma_eid = self.sigma_eid
            sstamp = self._sc_stamp
            sval = self._sc_val
            gen = self._gen
            ggen = self._ggen
            base = gen[v] + ggen
            nstamp = self._num_stamp
            nval = self._num_val
            engen = self._ngen
            strength = self._strength
            sv = strength[v]
            result = NodeRole.P_CORE
            for u, e in zip(nbrs, space.neid[v]):
                # Inlined σ-cache hit check (σ stamp = gen[u]+gen[v]+ggen)
                # plus the cached-numerator miss path: when only the
                # strength sum changed, σ is one division (commutative
                # operand order — bitwise equal to the dict recompute).
                st = base + gen[u]
                if sstamp[e] == st:
                    val = sval[e]
                else:
                    den = strength[u] + sv
                    if den <= 0.0:
                        val = 0.0
                        sval[e] = val
                        sstamp[e] = st
                    elif nstamp[e] == engen[e] + ggen:
                        val = nval[e] / den
                        sval[e] = val
                        sstamp[e] = st
                    else:
                        val = sigma_eid(e, u, v)
                if val >= eps:
                    count += 1
                    if count >= mu:
                        result = NodeRole.CORE
                        break
        self._role_val[v] = result
        self._role_stamp[v] = stamp
        return result


class ArrayLocalReinforcement(LocalReinforcement):
    """Equations 2–4 over paired adjacency slices (batched per trigger).

    Each override walks the identical (sorted) neighbor sequence as its
    dict counterpart and groups every float operation the same way; the
    only differences are *how a value is fetched* (one list index by eid
    instead of a tuple + hash probe) and that σ values arrive through the
    generation caches (exact by construction).  ``delta_for_trigger`` and
    ``sweep`` are inherited — they dispatch through these overrides.
    """

    def __init__(
        self,
        graph: Graph,
        sigma: ArrayActiveSimilarity,
        similarity: ArrayEdgeValues,
        *,
        floor: float = SIMILARITY_FLOOR,
        cap: float = SIMILARITY_CAP,
        space: EdgeSpace,
    ) -> None:
        super().__init__(graph, sigma, similarity, floor=floor, cap=cap)
        self._space = space

        #: Direct reference to the similarity payload (hot-loop alias;
        #: ArrayEdgeValues mutates the list in place, never rebinds it).
        self._simvals: List[float] = similarity._vals
        self._asigma = sigma

    # Public per-term API: exact equivalents of the base methods (tests
    # and diagnostics call these); the eid-direct variants below are the
    # hot path.
    def direct_consolidation(self, u: int, v: int) -> float:
        e = self._space.eid[(u, v) if u < v else (v, u)]
        return self._direct_eid(e, u, v)

    def _direct_eid(self, e: int, u: int, v: int) -> float:
        deg = len(self._space.nbr[u])
        if deg == 0:
            return 0.0
        sig = self._asigma
        gen = sig._gen
        ggen = sig._ggen
        # Inlined σ-cache hit check (σ stamp = gen[u]+gen[v]+ggen) with
        # the cached-numerator miss path (see `role`).
        st = gen[u] + gen[v] + ggen
        if sig._sc_stamp[e] == st:
            s_uv = sig._sc_val[e]
        else:
            strength = sig._strength
            den = strength[u] + strength[v]
            if den <= 0.0:
                s_uv = 0.0
                sig._sc_val[e] = s_uv
                sig._sc_stamp[e] = st
            elif sig._num_stamp[e] == sig._ngen[e] + ggen:
                s_uv = sig._num_val[e] / den
                sig._sc_val[e] = s_uv
                sig._sc_stamp[e] = st
            else:
                s_uv = sig.sigma_eid(e, u, v)
        return self._simvals[e] * s_uv / deg

    def triadic_consolidation(self, u: int, v: int) -> float:
        e = self._space.eid[(u, v) if u < v else (v, u)]
        return self._triadic_eid(e, u, v)

    def _triadic_eid(self, e: int, u: int, v: int) -> float:
        space = self._space
        deg = len(space.nbr[u])
        if deg == 0:
            return 0.0
        sig = self._asigma
        a, b = space.edges[e]
        sg = sig._sgen
        cn = sig._cn[e]
        if cn is None or sig._cn_stamp[e] != sg[a] + sg[b]:
            cn = sig._cn_build(e, a, b, u)
        xs, pairs = cn
        simvals = self._simvals
        sigma_eid = sig.sigma_eid
        sstamp = sig._sc_stamp
        sval = sig._sc_val
        gen = sig._gen
        ggen = sig._ggen
        base = gen[u] + ggen
        nstamp = sig._num_stamp
        nval = sig._num_val
        engen = sig._ngen
        strength = sig._strength
        su = strength[u]
        sqrt_ = sqrt
        total = 0.0
        # pairs[i] is (eid(a, w), eid(b, w)); pick the (u, w) / (v, w)
        # sides by orientation.  σ(w, u) lives on the (u, w) eid.
        if u == a:
            for w, (ew_u, ew_v) in zip(xs, pairs):
                fu = simvals[ew_u]
                fv = simvals[ew_v]
                if fu <= 0.0 or fv <= 0.0:
                    continue
                st = base + gen[w]
                if sstamp[ew_u] == st:
                    s_wu = sval[ew_u]
                else:
                    # Cached-numerator miss path (see `role`): only the
                    # strength sum changed, so σ is a single division.
                    den = strength[w] + su
                    if den <= 0.0:
                        s_wu = 0.0
                        sval[ew_u] = s_wu
                        sstamp[ew_u] = st
                    elif nstamp[ew_u] == engen[ew_u] + ggen:
                        s_wu = nval[ew_u] / den
                        sval[ew_u] = s_wu
                        sstamp[ew_u] = st
                    else:
                        s_wu = sigma_eid(ew_u, w, u)
                total += sqrt_(fu * fv) * s_wu
        else:
            for w, (ew_v, ew_u) in zip(xs, pairs):
                fu = simvals[ew_u]
                fv = simvals[ew_v]
                if fu <= 0.0 or fv <= 0.0:
                    continue
                st = base + gen[w]
                if sstamp[ew_u] == st:
                    s_wu = sval[ew_u]
                else:
                    # Cached-numerator miss path (see `role`): only the
                    # strength sum changed, so σ is a single division.
                    den = strength[w] + su
                    if den <= 0.0:
                        s_wu = 0.0
                        sval[ew_u] = s_wu
                        sstamp[ew_u] = st
                    elif nstamp[ew_u] == engen[ew_u] + ggen:
                        s_wu = nval[ew_u] / den
                        sval[ew_u] = s_wu
                        sstamp[ew_u] = st
                    else:
                        s_wu = sigma_eid(ew_u, w, u)
                total += sqrt_(fu * fv) * s_wu
        return total / deg

    def wedge_stretch(self, u: int, v: int) -> float:
        space = self._space
        deg = len(space.nbr[u])
        if deg == 0:
            return 0.0
        simvals = self._simvals
        sig = self._asigma
        markv = sig.marker_for(v)
        sigma_eid = sig.sigma_eid
        sstamp = sig._sc_stamp
        sval = sig._sc_val
        gen = sig._gen
        ggen = sig._ggen
        base = gen[u] + ggen
        nstamp = sig._num_stamp
        nval = sig._num_val
        engen = sig._ngen
        strength = sig._strength
        su = strength[u]
        total = 0.0
        for w, eu in zip(space.nbr[u], space.neid[u]):
            if w == v or markv[w] >= 0:
                continue  # w ∈ N(v) ∪ {v}: not a wedge
            st = base + gen[w]
            if sstamp[eu] == st:
                s_wu = sval[eu]
            else:
                # Cached-numerator miss path (see `role`).
                den = strength[w] + su
                if den <= 0.0:
                    s_wu = 0.0
                    sval[eu] = s_wu
                    sstamp[eu] = st
                elif nstamp[eu] == engen[eu] + ggen:
                    s_wu = nval[eu] / den
                    sval[eu] = s_wu
                    sstamp[eu] = st
                else:
                    s_wu = sigma_eid(eu, w, u)
            total += simvals[eu] * s_wu
        return total / deg

    def _delta_eid(self, e: int, u: int, v: int) -> float:
        """Eid-direct :meth:`delta_for_trigger` (identical dispatch)."""
        role = self._asigma.role(u)
        if role is NodeRole.CORE:
            return self._direct_eid(e, u, v) + self._triadic_eid(e, u, v)
        if role is NodeRole.PERIPHERY:
            return -self.wedge_stretch(u, v)
        return (
            self._direct_eid(e, u, v)
            + self._triadic_eid(e, u, v)
            - self.wedge_stretch(u, v)
        )

    def apply(self, u: int, v: int) -> float:
        key = edge_key(u, v)
        return self._apply_eid(self._space.eid[key], key[0], key[1])

    def _apply_eid(self, e: int, u: int, v: int) -> float:
        delta = self._delta_eid(e, u, v) + self._delta_eid(e, v, u)
        sim: ArrayEdgeValues = self.similarity  # type: ignore[assignment]
        new = self._simvals[e] + delta
        lo = sim.to_anchored(self.floor)
        hi = sim.to_anchored(self.cap)
        new = min(max(new, lo), hi)
        sim.set_by_eid(e, new)
        return new

    def sweep(self) -> None:
        # Same canonical edge order as the base sweep (eid order equals
        # graph.edges() order), with the per-edge interning skipped.
        apply_eid = self._apply_eid
        for e, (u, v) in enumerate(self._space.edges):
            apply_eid(e, u, v)
