"""Active similarity, active neighbor sets and node roles (Section IV-B).

The *active similarity* of an edge ``(u, v)`` is the activeness-weighted
Jaccard coefficient

    σ(u, v) = Σ_{x ∈ N(u)∩N(v)} (a_t(u,x) + a_t(v,x))
              ──────────────────────────────────────────
              Σ_{x ∈ N(u)} a_t(u,x) + Σ_{x ∈ N(v)} a_t(v,x)

Because σ is a ratio of PosM quantities it is **NeuM** — the global decay
factor cancels (Lemma 3: ``N*_ε(v) = N_ε(v)``) — so everything here reads
the *anchored* activeness directly and never touches ``g(t, t*)``.

The per-node denominators ("strengths") are maintained incrementally so
that evaluating σ for one edge costs ``O(|N(u)| + |N(v)|)`` for the common
-neighbor scan, matching the update budget of Lemma 5.

Node roles partition ``V`` (Section IV-B):

* **core** — at least μ active neighbors (``|N_ε(v)| ≥ μ``);
* **p-core** — not a core but ``deg(v) ≥ μ`` (could become one);
* **periphery** — ``deg(v) < μ`` (can never be a core).
"""

from __future__ import annotations

import enum
from typing import Dict, List

from ..graph.graph import Edge, Graph, edge_key
from .decay import Activeness

__all__ = ["NodeRole", "ActiveSimilarity", "naive_sigma"]


class NodeRole(enum.Enum):
    """Disjoint node types of Section IV-B."""

    CORE = "core"
    P_CORE = "p-core"
    PERIPHERY = "periphery"


class ActiveSimilarity:
    """σ, active neighbor sets and roles over an :class:`Activeness`.

    Parameters
    ----------
    graph:
        The relation network.
    activeness:
        Incrementally maintained activeness; σ reads its anchored store.
    eps:
        Active-neighbor threshold ε.
    mu:
        Core threshold μ.
    """

    def __init__(
        self,
        graph: Graph,
        activeness: Activeness,
        *,
        eps: float = 0.3,
        mu: int = 3,
    ) -> None:
        if not 0.0 <= eps <= 1.0:
            raise ValueError(f"eps must be in [0, 1], got {eps}")
        if mu < 1:
            raise ValueError(f"mu must be >= 1, got {mu}")
        self.graph = graph
        self.activeness = activeness
        self.eps = eps
        self.mu = mu
        # strength[v] = Σ_{x ∈ N(v)} a*_t(v, x), maintained incrementally.
        self._strength: List[float] = [0.0] * graph.n
        self._rebuild_strengths()

    # ------------------------------------------------------------------
    def _rebuild_strengths(self) -> None:
        store = self.activeness.store
        self._strength = [0.0] * self.graph.n
        for (u, v), value in store.items_anchored():
            self._strength[u] += value
            self._strength[v] += value

    def on_activation_delta(self, u: int, v: int, anchored_delta: float) -> None:
        """Account an anchored activeness increase of edge ``{u, v}``.

        Must be called whenever ``activeness`` absorbs an activation so the
        cached node strengths stay exact.
        """
        self._strength[u] += anchored_delta
        self._strength[v] += anchored_delta

    def on_rescale(self, g: float) -> None:
        """Absorb a batched rescale (strengths are PosM sums)."""
        self._strength = [s * g for s in self._strength]

    def strength(self, v: int) -> float:
        """Anchored strength ``Σ_{x∈N(v)} a*_t(v, x)``."""
        return self._strength[v]

    # ------------------------------------------------------------------
    def sigma(self, u: int, v: int) -> float:
        """Active similarity σ(u, v) for an existing edge or node pair.

        Returns 0.0 when both endpoints have zero strength (no activated
        incident edges at all).
        """
        store = self.activeness.store
        denom = self._strength[u] + self._strength[v]
        if denom <= 0.0:
            return 0.0
        num = 0.0
        for x in self.graph.common_neighbors(u, v):
            num += store.anchored(u, x) + store.anchored(v, x)
        return num / denom

    def active_neighbors(self, v: int) -> List[int]:
        """``N_ε(v) = {u ∈ N(v) | σ(u, v) ≥ ε}``."""
        return [u for u in self.graph.neighbors(v) if self.sigma(u, v) >= self.eps]

    def active_neighbor_count(self, v: int) -> int:
        """``|N_ε(v)|`` without materializing the list."""
        count = 0
        for u in self.graph.neighbors(v):
            if self.sigma(u, v) >= self.eps:
                count += 1
        return count

    # ------------------------------------------------------------------
    def role(self, v: int) -> NodeRole:
        """Role of ``v``: core, p-core, or periphery.

        Periphery is decided from the degree alone (cheap); the active
        neighbor count is only scanned for nodes with ``deg ≥ μ``, and the
        scan exits early once μ active neighbors are found.
        """
        if self.graph.degree(v) < self.mu:
            return NodeRole.PERIPHERY
        count = 0
        for u in self.graph.neighbors(v):
            if self.sigma(u, v) >= self.eps:
                count += 1
                if count >= self.mu:
                    return NodeRole.CORE
        return NodeRole.P_CORE

    def roles(self) -> List[NodeRole]:
        """Roles for all nodes (used by tests and diagnostics)."""
        return [self.role(v) for v in self.graph.nodes()]

    def role_counts(self) -> Dict[NodeRole, int]:
        """Histogram of roles over ``V``."""
        counts = {role: 0 for role in NodeRole}
        for v in self.graph.nodes():
            counts[self.role(v)] += 1
        return counts


def naive_sigma(graph: Graph, activeness_actual: Dict[Edge, float], u: int, v: int) -> float:
    """Reference σ computed from a plain dict of *actual* activeness values.

    Used by tests to check both the incremental strengths and the NeuM
    property (computing from actual values must agree with anchored ones).
    """
    num = 0.0
    for x in graph.common_neighbors(u, v):
        num += activeness_actual.get(edge_key(u, x), 0.0)
        num += activeness_actual.get(edge_key(v, x), 0.0)
    denom = 0.0
    for x in graph.neighbors(u):
        denom += activeness_actual.get(edge_key(u, x), 0.0)
    for x in graph.neighbors(v):
        denom += activeness_actual.get(edge_key(v, x), 0.0)
    if denom <= 0.0:
        return 0.0
    return num / denom
