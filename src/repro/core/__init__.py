"""The paper's primary contribution: decay, similarity, metric, ANC engines."""

from .activation import Activation, ActivationStream, naive_activeness
from .anc import ANCF, ANCO, ANCOR, ANCEngineBase, ANCParams, make_engine
from .decay import Activeness, AnchoredEdgeValues, DecayClock, ValueKind
from .metric import SimilarityFunction
from .reinforcement import LocalReinforcement
from .similarity import ActiveSimilarity, NodeRole
from .windows import IntervalEdgeModel, SlidingWindowActiveness

__all__ = [
    "Activation",
    "ActivationStream",
    "naive_activeness",
    "ANCF",
    "ANCO",
    "ANCOR",
    "ANCEngineBase",
    "ANCParams",
    "make_engine",
    "Activeness",
    "AnchoredEdgeValues",
    "DecayClock",
    "ValueKind",
    "SimilarityFunction",
    "LocalReinforcement",
    "ActiveSimilarity",
    "NodeRole",
    "IntervalEdgeModel",
    "SlidingWindowActiveness",
]
