"""Activation stream model (Section III).

An *activation* is a pair ``(e, t)`` of a relation-network edge and a
timestamp; an *activation stream* is an unbounded, time-ordered sequence of
activations.  :class:`Activation` is the immutable record;
:class:`ActivationStream` is a thin validated container with the batching
and slicing helpers the engines and benchmarks need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

from ..graph.graph import Edge, Graph, edge_key

__all__ = ["Activation", "ActivationStream", "naive_activeness"]


@dataclass(frozen=True, order=True)
class Activation:
    """One activation of the undirected edge ``{u, v}`` at time ``t``.

    The edge is stored canonically (``u < v``).  Ordering is by the field
    order ``(u, v, t)`` only for deterministic container behaviour; streams
    are ordered by time explicitly.
    """

    u: int
    v: int
    t: float

    def __post_init__(self) -> None:
        if self.u >= self.v:
            raise ValueError(
                f"activation edge must be canonical (u < v), got ({self.u}, {self.v})"
            )
        if self.t < 0:
            raise ValueError(f"negative timestamp: {self.t}")

    @property
    def edge(self) -> Edge:
        """Canonical edge key."""
        return (self.u, self.v)

    @staticmethod
    def of(u: int, v: int, t: float) -> "Activation":
        """Build an activation from an arbitrary-order endpoint pair."""
        a, b = edge_key(u, v)
        return Activation(a, b, t)


class ActivationStream:
    """A time-ordered sequence of activations over a fixed relation graph.

    Validates on construction that every activation refers to an existing
    relation edge and that timestamps are non-decreasing (the arrival
    order of Section III).
    """

    def __init__(self, graph: Graph, activations: Iterable[Activation] = ()) -> None:
        self._graph = graph
        self._items: List[Activation] = []
        for act in activations:
            self.append(act)

    @property
    def graph(self) -> Graph:
        """The relation network the stream activates."""
        return self._graph

    def append(self, act: Activation) -> None:
        """Append one activation, enforcing edge existence and time order."""
        if not self._graph.has_edge(act.u, act.v):
            raise ValueError(f"activation on non-edge ({act.u}, {act.v})")
        if self._items and act.t < self._items[-1].t:
            raise ValueError(
                f"activations must be time-ordered: {act.t} < {self._items[-1].t}"
            )
        self._items.append(act)

    def extend(self, acts: Iterable[Activation]) -> None:
        """Append many activations in order."""
        for act in acts:
            self.append(act)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Activation]:
        return iter(self._items)

    def __getitem__(self, idx: int) -> Activation:
        return self._items[idx]

    @property
    def span(self) -> Tuple[float, float]:
        """(first, last) timestamps; ``(0.0, 0.0)`` when empty."""
        if not self._items:
            return (0.0, 0.0)
        return (self._items[0].t, self._items[-1].t)

    def until(self, t: float) -> List[Activation]:
        """All activations with timestamp <= t (binary search on time)."""
        lo, hi = 0, len(self._items)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._items[mid].t <= t:
                lo = mid + 1
            else:
                hi = mid
        return self._items[:lo]

    def batches_by_timestamp(self) -> Iterator[Tuple[float, List[Activation]]]:
        """Group consecutive activations sharing a timestamp.

        Yields ``(t, batch)`` in time order — the per-snapshot batches the
        activation-network experiments (Exp 2) consume.
        """
        i, n = 0, len(self._items)
        while i < n:
            t = self._items[i].t
            j = i
            while j < n and self._items[j].t == t:
                j += 1
            yield t, self._items[i:j]
            i = j

    def batches_of_size(self, size: int) -> Iterator[List[Activation]]:
        """Fixed-size batches in arrival order (Fig 8's batch sweep)."""
        if size < 1:
            raise ValueError(f"batch size must be >= 1, got {size}")
        for i in range(0, len(self._items), size):
            yield self._items[i : i + size]


def naive_activeness(stream: Sequence[Activation], edge: Edge, t: float, lam: float) -> float:
    """Reference implementation of Equation 1: ``Σ exp(-λ (t - t_i))``.

    Quadratic over the stream; exists purely as the ground truth that the
    incremental :mod:`repro.core.decay` machinery is tested against.
    """
    total = 0.0
    for act in stream:
        if act.edge == edge and act.t <= t:
            total += pow(2.718281828459045, -lam * (t - act.t))
    return total
