"""Time-decay scheme and the global decay factor (Section IV-A).

The time-decay scheme (Equation 1) makes *every* edge's activeness decay
continuously, which would force a full-graph sweep per time step.  The
paper's first contribution removes that sweep:

* **Observation 1** — unactivated edges all decay by the same
  edge-independent factor ``exp(-λ (t'' - t'))``.
* **Definition 1 (global decay factor)** — store *anchored* values
  ``a*_t(e) = a_t(e) / g(t, t*)`` with ``g(t, t*) = exp(-λ (t - t*))``;
  anchored values only change when their edge is activated.
* **Batched rescale** — after a fixed number of activations the anchored
  values absorb the accumulated factor and the anchor time advances,
  amortizing the sweep and (in floating point) preventing the anchored
  values from blowing up as ``1/g`` grows.
* **Definition 2 (PosM / NegM / NeuM)** — derived functions relate to
  their anchored form positively (``F = F* · g``), negatively
  (``F = F* / g``) or neutrally (``F = F*``).  The activeness and the
  similarity ``S_t`` are PosM (Lemmas 2, 4); the distance metric and the
  pyramid edge weights ``S_t^{-1}`` are NegM (Lemmas 6, 10); the active
  similarity σ is NeuM (ratio of PosM terms; Lemma 3).

:class:`DecayClock` owns ``(λ, t, t*)`` and every registered
:class:`AnchoredEdgeValues` store, so a single rescale keeps activeness,
similarity and index weights mutually consistent — the "holistic"
maintenance the paper calls out.
"""

from __future__ import annotations

import enum
import math
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..graph.graph import Edge, edge_key

__all__ = ["ValueKind", "DecayClock", "AnchoredEdgeValues", "Activeness"]


class ValueKind(enum.Enum):
    """How a derived function relates to its anchored form (Definition 2)."""

    POSITIVE = "PosM"  # F_t = F*_t * g(t, t*)
    NEGATIVE = "NegM"  # F_t = F*_t / g(t, t*)
    NEUTRAL = "NeuM"  # F_t = F*_t


class DecayClock:
    """Shared clock carrying the decay factor λ, time ``t`` and anchor ``t*``.

    Parameters
    ----------
    lam:
        Decay factor λ ≥ 0 of the time-decay scheme.
    rescale_every:
        Batched rescale period: after this many activations all registered
        stores absorb ``g(t, t*)`` and ``t* ← t`` (Lemma 1 amortization).
    min_factor:
        Floating-point safety valve: if ``g(t, t*)`` drops below this, a
        rescale is forced regardless of the activation counter, so anchored
        values never overflow.
    """

    def __init__(
        self,
        lam: float,
        *,
        rescale_every: int = 1024,
        min_factor: float = 1e-120,
    ) -> None:
        if lam < 0:
            raise ValueError(f"decay factor must be non-negative, got {lam}")
        if rescale_every < 1:
            raise ValueError(f"rescale_every must be >= 1, got {rescale_every}")
        if not 0.0 < min_factor < 1.0:
            raise ValueError(f"min_factor must be in (0, 1), got {min_factor}")
        self.lam = lam
        self._t = 0.0
        self._anchor = 0.0
        self._rescale_every = rescale_every
        self._min_factor = min_factor
        self._since_rescale = 0
        self._stores: List["AnchoredEdgeValues"] = []
        self._listeners: List[Callable[[float], None]] = []
        self._rescale_count = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current time ``t``."""
        return self._t

    @property
    def anchor(self) -> float:
        """Anchor time ``t*``."""
        return self._anchor

    @property
    def rescale_count(self) -> int:
        """How many batched rescales have run (observability for tests)."""
        return self._rescale_count

    def global_factor(self) -> float:
        """``g(t, t*) = exp(-λ (t - t*))``."""
        return math.exp(-self.lam * (self._t - self._anchor))

    def register(self, kind: ValueKind, name: str = "") -> "AnchoredEdgeValues":
        """Create and attach a value store that rescales with this clock."""
        store = AnchoredEdgeValues(self, kind, name=name)
        self._stores.append(store)
        return store

    def attach(self, store: "AnchoredEdgeValues") -> None:
        """Attach an externally built store (e.g. a pyramid's weight view)."""
        if store.clock is not self:
            raise ValueError("store was built against a different clock")
        if store not in self._stores:
            self._stores.append(store)

    def add_rescale_listener(self, listener: Callable[[float], None]) -> None:
        """Register a callback invoked with ``g`` at every batched rescale.

        Structures that hold derived NegM quantities outside an
        :class:`AnchoredEdgeValues` store (the pyramid index keeps edge
        weights *and* distance arrays, Lemma 10) use this to absorb the
        factor ``g^{-1}`` in lockstep with the anchored stores.
        """
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    def advance(self, t: float) -> None:
        """Move the current time forward to ``t`` (no-op when equal).

        Advancing costs O(1): no stored value changes, only the implicit
        global factor — this is the whole point of Definition 1.  A rescale
        is forced if the factor underflows.
        """
        if t < self._t:
            raise ValueError(f"time cannot go backwards: {t} < {self._t}")
        self._t = t
        if self.global_factor() < self._min_factor:
            self.rescale()

    def note_activation(self, count: int = 1) -> None:
        """Record ``count`` processed activations; rescale on period boundary."""
        self._since_rescale += count
        if self._since_rescale >= self._rescale_every:
            self.rescale()

    def rescale(self) -> None:
        """Batched rescale: all stores absorb ``g``, then ``t* ← t``.

        Cost is linear in the total number of stored values, amortized over
        the ``rescale_every`` activations that triggered it (Lemma 1).
        """
        g = self.global_factor()
        # The comparison below is a deliberate exact check: when no stream
        # time has passed, global_factor() returns the literal 1.0 and the
        # absorb sweep would be a no-op; any other value (even one ulp off)
        # must still be absorbed or recovery replay diverges.
        if g != 1.0:  # anclint: disable=float-equality — exact no-op guard, g is literally 1.0 iff Δt == 0
            for store in self._stores:
                store._absorb(g)
            for listener in self._listeners:
                listener(g)
        self._anchor = self._t
        self._since_rescale = 0
        self._rescale_count += 1


class AnchoredEdgeValues:
    """Edge-keyed values stored in anchored form under a :class:`DecayClock`.

    ``anchored(e)`` is ``F*_t(e)``; ``actual(e)`` applies the kind's
    relation to ``g(t, t*)`` to recover ``F_t(e)``.  Mutations are expressed
    either on the anchored value (cheap, used by the engines) or on the
    actual value (converted through ``g``, used at API boundaries).
    """

    __slots__ = ("clock", "kind", "name", "_values")

    def __init__(self, clock: DecayClock, kind: ValueKind, name: str = "") -> None:
        self.clock = clock
        self.kind = kind
        self.name = name
        self._values: Dict[Edge, float] = {}

    # -- anchored-space access -----------------------------------------
    def anchored(self, u: int, v: int) -> float:
        """Anchored value ``F*_t(e)`` (0.0 when never set)."""
        return self._values.get(edge_key(u, v), 0.0)

    def set_anchored(self, u: int, v: int, value: float) -> None:
        """Overwrite the anchored value."""
        self._values[edge_key(u, v)] = value

    def add_anchored(self, u: int, v: int, delta: float) -> float:
        """Add ``delta`` in anchored space; returns the new anchored value."""
        key = edge_key(u, v)
        new = self._values.get(key, 0.0) + delta
        self._values[key] = new
        return new

    # -- actual-space access --------------------------------------------
    def actual(self, u: int, v: int) -> float:
        """Current (decayed) value ``F_t(e)``."""
        return self.to_actual(self.anchored(u, v))

    def set_actual(self, u: int, v: int, value: float) -> None:
        """Set the current value; stored anchored."""
        self._values[edge_key(u, v)] = self.to_anchored(value)

    def add_actual(self, u: int, v: int, delta: float) -> float:
        """Add ``delta`` in actual space; returns the new *actual* value."""
        return self.to_actual(self.add_anchored(u, v, self.to_anchored(delta)))

    # -- conversions ------------------------------------------------------
    def to_actual(self, anchored_value: float) -> float:
        """Map an anchored value to its current value under ``g(t, t*)``."""
        g = self.clock.global_factor()
        if self.kind is ValueKind.POSITIVE:
            return anchored_value * g
        if self.kind is ValueKind.NEGATIVE:
            return anchored_value / g
        return anchored_value

    def to_anchored(self, actual_value: float) -> float:
        """Map a current value to anchored form."""
        g = self.clock.global_factor()
        if self.kind is ValueKind.POSITIVE:
            return actual_value / g
        if self.kind is ValueKind.NEGATIVE:
            return actual_value * g
        return actual_value

    # -- bookkeeping -------------------------------------------------------
    def _absorb(self, g: float) -> None:
        """Fold the factor into every anchored value (called by rescale).

        Iterates in sorted edge order — not dict insertion order — so the
        application sequence is a deterministic function of the key set
        alone.  The per-value multiply/divide is elementwise (no
        cross-edge accumulation), so results are bitwise identical either
        way; fixing the order removes the *latent* dependency on
        insertion history that a future accumulating absorb (or any
        backend whose storage order differs) would silently inherit.
        """
        if self.kind is ValueKind.POSITIVE:
            for key in sorted(self._values):
                self._values[key] *= g
        elif self.kind is ValueKind.NEGATIVE:
            for key in sorted(self._values):
                self._values[key] /= g
        # NEUTRAL values are invariant under rescale.

    def items_anchored(self) -> Iterator[Tuple[Edge, float]]:
        """Iterate ``(edge, anchored value)`` pairs."""
        return iter(self._values.items())

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: Edge) -> bool:
        return key in self._values


class Activeness:
    """The edge activeness ``a_t`` of Equation 1, maintained incrementally.

    Activeness is PosM: the anchored value only changes when its edge is
    activated (``a* += 1/g``, Definition 1), so maintenance is O(1) per
    activation plus the amortized rescale (Lemma 1).
    """

    def __init__(
        self,
        clock: DecayClock,
        *,
        initial: Optional[Dict[Edge, float]] = None,
        store: Optional[AnchoredEdgeValues] = None,
    ) -> None:
        self.clock = clock
        if store is None:
            store = clock.register(ValueKind.POSITIVE, name="activeness")
        elif store.clock is not clock or store.kind is not ValueKind.POSITIVE:
            raise ValueError("injected activeness store must be PosM on this clock")
        self.store = store
        if initial:
            for (u, v), value in initial.items():
                self.store.set_actual(u, v, value)

    def on_activation(self, u: int, v: int, t: float) -> Tuple[float, float]:
        """Process an activation of ``{u, v}`` at time ``t``.

        Advances the clock and adds the unit impulse in anchored space
        (``a* += 1/g``, Definition 1).  Returns ``(actual, anchored_delta)``
        — the new activeness ``a_t(e)`` and the anchored increment, which
        callers that maintain derived sums (node strengths in
        :class:`~repro.core.similarity.ActiveSimilarity`) need.

        Note: this does *not* call :meth:`DecayClock.note_activation`; the
        engine does, after all per-activation bookkeeping, so that a
        triggered rescale sees a consistent state.
        """
        self.clock.advance(t)
        delta = 1.0 / self.clock.global_factor()
        new_anchored = self.store.add_anchored(u, v, delta)
        return self.store.to_actual(new_anchored), delta

    def value(self, u: int, v: int) -> float:
        """Current activeness ``a_t(e)``."""
        return self.store.actual(u, v)

    def anchored_value(self, u: int, v: int) -> float:
        """Anchored activeness ``a*_t(e)``."""
        return self.store.anchored(u, v)
