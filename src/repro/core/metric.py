"""The similarity function ``S_t`` and the distance metric (Section IV-C).

:class:`SimilarityFunction` assembles the whole Section IV pipeline behind
one object:

* a shared :class:`~repro.core.decay.DecayClock` (global decay factor);
* the incrementally maintained activeness ``a_t`` (Equation 1);
* the active similarity σ with node roles;
* the PosM similarity store ``S_t`` with local reinforcement;
* the NegM reciprocal weights ``S_t^{-1}`` that the distance metric and
  the pyramid index consume.

Initialization (t = 0) follows the paper exactly: set ``S_0 = 1`` on every
edge, then run ``1 + rep`` reinforcement sweeps over all of ``E`` — the
stream "initialized with activations over all edges" (step ii) plus
``rep`` appended repetitions (step iii).  The initial edge activeness is
uniform 1, which makes σ the plain Jaccard similarity at t = 0
(activeness-weighting with equal weights; the NeuM property iii the paper
requires of the initializer).

Per-activation update (t > 0):

1. advance the clock (all decay is implicit — Definition 1);
2. bump the activeness of the trigger edge (``a* += 1/g``);
3. apply local reinforcement with the trigger edge (Lemma 5 cost);
4. notify listeners (the index) of the changed edge weight;
5. count the activation toward the batched rescale.

The *attraction strength* of two nodes is ``1 / dist(u, v)`` under edge
weights ``S_t^{-1}`` — the maximum over paths of the harmonic mean of edge
similarities divided by hop count, which is what lets a plain shortest
path propagate the local coherence (the paper's answer to Attractor's 50
iterations).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..graph.graph import Edge, Graph
from ..graph.traversal import INF, dijkstra, shortest_path
from ..obs.trace import NULL_TRACER, Tracer
from .activation import Activation
from .arrays import (
    ArrayActiveSimilarity,
    ArrayEdgeValues,
    ArrayLocalReinforcement,
    EdgeSpace,
)
from .decay import Activeness, AnchoredEdgeValues, DecayClock, ValueKind
from .reinforcement import SIMILARITY_CAP, SIMILARITY_FLOOR, LocalReinforcement
from .similarity import ActiveSimilarity

__all__ = ["SimilarityFunction"]

#: Callback signature for weight-change notifications:
#: ``listener(u, v, new_anchored_weight)`` with ``u < v``.
WeightListener = Callable[[int, int, float], None]


class SimilarityFunction:
    """``S_t`` over an activation network, maintained under the global decay.

    Parameters
    ----------
    graph:
        Relation network ``G(V, E)``.
    lam:
        Decay factor λ.
    eps, mu:
        Active-neighbor threshold ε and core threshold μ (Section IV-B).
    rep:
        Number of reinforcement repetitions for the ``S_0`` initialization
        (default 7, the paper's default; 0 still performs the single
        initial sweep of step ii).
    rescale_every:
        Batched-rescale period of the shared clock.
    initialize:
        If False the caller drives :meth:`initialize` manually (used by
        tests that inspect the pre-reinforcement state).
    backend:
        ``"dict"`` (the pure-Python oracle) or ``"array"`` (the
        structure-of-arrays hot path over a shared
        :class:`~repro.core.arrays.EdgeSpace`).  Both produce bitwise
        identical values; see ``docs/engine-internals.md``.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        lam: float = 0.1,
        eps: float = 0.3,
        mu: int = 3,
        rep: int = 7,
        rescale_every: int = 1024,
        floor: float = SIMILARITY_FLOOR,
        cap: float = SIMILARITY_CAP,
        initialize: bool = True,
        backend: str = "dict",
    ) -> None:
        if rep < 0:
            raise ValueError(f"rep must be >= 0, got {rep}")
        if backend not in ("dict", "array"):
            raise ValueError(f"unknown engine backend {backend!r}")
        self.graph = graph
        self.rep = rep
        self.backend = backend
        self.clock = DecayClock(lam, rescale_every=rescale_every)
        #: Shared edge-id interning table (array backend only; ``None``
        #: on the dict path so callers can feature-test with one getattr).
        self.space: Optional[EdgeSpace] = None
        if backend == "array":
            self.space = EdgeSpace(graph)
            store = ArrayEdgeValues(
                self.clock, ValueKind.POSITIVE, self.space, name="activeness"
            )
            self.activeness = Activeness(self.clock, store=store)
            self.sigma: ActiveSimilarity = ArrayActiveSimilarity(
                graph, self.activeness, eps=eps, mu=mu, space=self.space
            )
            self.clock.add_rescale_listener(self.sigma.on_rescale)
            self.similarity: AnchoredEdgeValues = ArrayEdgeValues(
                self.clock, ValueKind.POSITIVE, self.space, name="S_t"
            )
            self.reinforcement: LocalReinforcement = ArrayLocalReinforcement(
                graph,
                self.sigma,
                self.similarity,
                floor=floor,
                cap=cap,
                space=self.space,
            )
        else:
            self.activeness = Activeness(self.clock)
            self.sigma = ActiveSimilarity(graph, self.activeness, eps=eps, mu=mu)
            self.clock.add_rescale_listener(self.sigma.on_rescale)
            self.similarity = self.clock.register(ValueKind.POSITIVE, name="S_t")
            self.reinforcement = LocalReinforcement(
                graph, self.sigma, self.similarity, floor=floor, cap=cap
            )
        self._weight_listeners: List[WeightListener] = []
        #: Span tracer for the per-activation phase breakdown; the inert
        #: default costs one attribute check per activation (engines
        #: swap in a live tracer via ``attach_obs``).
        self.tracer: Tracer = NULL_TRACER
        self._initialized = False
        if initialize:
            self.initialize()

    # ------------------------------------------------------------------
    # Initialization (t = 0)
    # ------------------------------------------------------------------
    def initialize(self) -> None:
        """Set ``a_0 = 1`` and ``S_0 = 1`` everywhere, then reinforce.

        Runs ``1 + rep`` full sweeps of local reinforcement at t = 0 (the
        paper's init stream: one pass over all edges plus ``rep``
        repetitions).  Idempotent-guarded; call once.
        """
        if self._initialized:
            raise RuntimeError("SimilarityFunction is already initialized")
        for u, v in self.graph.edges():
            self.activeness.store.set_anchored(u, v, 1.0)
            self.similarity.set_anchored(u, v, 1.0)
        self.sigma._rebuild_strengths()
        for _ in range(1 + self.rep):
            self.reinforcement.sweep()
        self._initialized = True

    # ------------------------------------------------------------------
    # Stream updates
    # ------------------------------------------------------------------
    def add_weight_listener(self, listener: WeightListener) -> None:
        """Subscribe to anchored-weight changes (the pyramid index does)."""
        self._weight_listeners.append(listener)

    def on_activation(self, act: Activation) -> float:
        """Process one activation; returns the new anchored similarity.

        Touches only ``N(u) ∪ N(v)`` (Lemma 5) and costs O(1) amortized
        for the decay bookkeeping (Lemma 1).
        """
        if self.tracer.enabled:
            return self._on_activation_traced(act)
        u, v = act.u, act.v
        _, delta = self.activeness.on_activation(u, v, act.t)
        self.sigma.on_activation_delta(u, v, delta)
        new_anchored = self.reinforcement.apply(u, v)
        self._notify(u, v, 1.0 / new_anchored)
        self.clock.note_activation()
        return new_anchored

    def _on_activation_traced(self, act: Activation) -> float:
        """The :meth:`on_activation` pipeline under phase spans.

        Identical state transitions; the only additions are the span
        context managers, so traces answer "where does one activation's
        time go" (activeness vs reinforcement vs index repair vs decay
        bookkeeping) without perturbing results.
        """
        tracer = self.tracer
        u, v = act.u, act.v
        with tracer.span("activation", u=u, v=v):
            with tracer.span("activeness"):
                _, delta = self.activeness.on_activation(u, v, act.t)
                self.sigma.on_activation_delta(u, v, delta)
            with tracer.span("reinforce"):
                new_anchored = self.reinforcement.apply(u, v)
            with tracer.span("index_repair"):
                self._notify(u, v, 1.0 / new_anchored)
            with tracer.span("decay_tick"):
                self.clock.note_activation()
        return new_anchored

    def on_activation_activeness_only(self, act: Activation) -> None:
        """Absorb an activation into the activeness without touching ``S_t``.

        This is the cheap bookkeeping path of the offline engine (ANCF):
        the activeness and node strengths stay exact along the stream, and
        the similarity is recomputed wholesale at each snapshot via
        :meth:`recompute`.
        """
        u, v = act.u, act.v
        _, delta = self.activeness.on_activation(u, v, act.t)
        self.sigma.on_activation_delta(u, v, delta)
        self.clock.note_activation()

    def recompute(self) -> None:
        """Recompute ``S_t`` from scratch against the current activeness.

        Resets every anchored similarity to 1 and runs ``1 + rep``
        reinforcement sweeps — the ANCF per-snapshot recomputation.  Does
        *not* notify weight listeners; the caller is expected to rebuild
        its index from :meth:`snapshot_weights` (a full rebuild is the
        point of the offline baseline).
        """
        for u, v in self.graph.edges():
            self.similarity.set_anchored(u, v, 1.0)
        for _ in range(1 + self.rep):
            self.reinforcement.sweep()

    def reinforce_all(self) -> None:
        """Full reinforcement sweep over ``E`` (ANCOR's periodic refresh).

        Every edge weight may change, so every edge is re-notified.
        """
        self.reinforcement.sweep()
        for u, v in self.graph.edges():
            self._notify(u, v, 1.0 / self.similarity.anchored(u, v))

    def _notify(self, u: int, v: int, new_weight: float) -> None:
        for listener in self._weight_listeners:
            listener(u, v, new_weight)

    # ------------------------------------------------------------------
    # Values
    # ------------------------------------------------------------------
    def value(self, u: int, v: int) -> float:
        """Current (decayed) similarity ``S_t(e)``."""
        return self.similarity.actual(u, v)

    def anchored_value(self, u: int, v: int) -> float:
        """Anchored similarity ``S*_t(e)``."""
        return self.similarity.anchored(u, v)

    def weight(self, u: int, v: int) -> float:
        """Current reciprocal weight ``S_t^{-1}(e)`` (NegM, Lemma 10)."""
        return 1.0 / self.value(u, v)

    def weight_anchored(self, u: int, v: int) -> float:
        """Anchored reciprocal weight ``1 / S*_t(e)``.

        All shortest-path *comparisons* are invariant under the uniform
        ``1/g`` scaling, so the index works in this anchored weight space.
        """
        return 1.0 / self.similarity.anchored(u, v)

    def weight_fn(self) -> Callable[[int, int], float]:
        """Symmetric anchored-weight function for the traversal module."""

        def weight(u: int, v: int) -> float:
            return 1.0 / self.similarity.anchored(u, v)

        return weight

    def snapshot_weights(self) -> Dict[Edge, float]:
        """Anchored reciprocal weights for all edges (index construction)."""
        return {
            key: 1.0 / value for key, value in self.similarity.items_anchored()
        }

    def snapshot_similarities(self) -> Dict[Edge, float]:
        """Anchored similarities for all edges."""
        return dict(self.similarity.items_anchored())

    # ------------------------------------------------------------------
    # Distance metric M_t (Section IV-C)
    # ------------------------------------------------------------------
    def distance(self, u: int, v: int) -> float:
        """``M_t(u, v)``: shortest distance under current ``S_t^{-1}``.

        Exact (runs Dijkstra); the pyramid index answers the clustering
        queries without ever computing this, but the metric itself is part
        of the paper's contribution and is exercised directly by tests and
        the quickstart example.
        """
        dist, _ = dijkstra(self.graph, u, lambda a, b: self.weight(a, b))
        return dist[v]

    def attraction_strength(self, u: int, v: int) -> float:
        """``1 / dist(u, v)`` — the propagated cohesiveness of Section IV-C."""
        d = self.distance(u, v)
        if d == INF:
            return 0.0
        if d == 0.0:
            return INF
        return 1.0 / d

    def strongest_path(self, u: int, v: int) -> Tuple[float, List[int]]:
        """The path realizing the attraction strength, with its strength."""
        d, path = shortest_path(self.graph, u, v, lambda a, b: self.weight(a, b))
        strength = 0.0 if d == INF else (INF if d == 0.0 else 1.0 / d)
        return strength, path
