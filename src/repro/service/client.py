"""Blocking JSON-lines client for :class:`~repro.service.server.ANCServer`.

Plain sockets, no dependencies: one request out, one response in.  The
benchmark load generator, the examples and operational scripts all talk
to the server through this class; anything else can speak the protocol
directly (it is a dozen lines in any language — see ``docs/service.md``).
"""

from __future__ import annotations

import json
import socket
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["ServiceClient", "ServiceError"]

Label = Union[str, int]


class ServiceError(RuntimeError):
    """The server answered ``{"ok": false}``; carries its error message."""


class ServiceClient:
    """One TCP connection to a running ANC service.

    Usable as a context manager::

        with ServiceClient("127.0.0.1", 7700) as client:
            client.ingest("alice", "bob", t=12.5)
            client.sync()
            print(client.clusters())
    """

    def __init__(self, host: str, port: int, *, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    # -- plumbing ---------------------------------------------------------
    def request(self, op: str, **fields: object) -> Dict[str, object]:
        """Send one request; return the decoded response or raise."""
        payload = {"op": op, **{k: v for k, v in fields.items() if v is not None}}
        self._file.write(json.dumps(payload).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            raise ServiceError(response.get("error", "unknown server error"))
        return response

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- convenience ops ---------------------------------------------------
    def ping(self) -> Dict[str, object]:
        return self.request("ping")

    def ingest(self, u: Label, v: Label, t: float) -> int:
        """Ingest one activation; returns its sequence number."""
        return int(self.request("ingest", u=u, v=v, t=t)["seq"])

    def ingest_batch(self, items: Sequence[Tuple[Label, Label, float]]) -> int:
        """Ingest many activations; returns the last sequence number."""
        response = self.request(
            "ingest_batch", items=[[u, v, t] for u, v, t in items]
        )
        return int(response["seq"])

    def clusters(
        self, level: Optional[int] = None, *, min_size: int = 1
    ) -> List[List[Label]]:
        """All clusters at ``level`` (default √n granularity)."""
        return self.request("clusters", level=level, min_size=min_size)["clusters"]

    def clusters_info(
        self, level: Optional[int] = None, *, min_size: int = 1
    ) -> Dict[str, object]:
        """Clusters plus level/time/applied metadata."""
        return self.request("clusters", level=level, min_size=min_size)

    def local(self, node: Label, level: Optional[int] = None) -> List[Label]:
        """The node's cluster at ``level``."""
        return self.request("local", node=node, level=level)["cluster"]

    def zoom_in(self, level: int) -> int:
        return int(self.request("zoom_in", level=level)["level"])

    def zoom_out(self, level: int) -> int:
        return int(self.request("zoom_out", level=level)["level"])

    def watch(self, node: Label, level: Optional[int] = None) -> List[Label]:
        """Watch a node's cluster; returns the current cluster."""
        return self.request("watch", node=node, level=level)["cluster"]

    def unwatch(self, node: Label, level: Optional[int] = None) -> None:
        self.request("unwatch", node=node, level=level)

    def changes(self) -> List[Dict[str, object]]:
        """Drain accumulated cluster-change events for watched nodes."""
        return self.request("changes")["changes"]

    def sync(self) -> int:
        """Block until everything ingested so far is applied and visible."""
        return int(self.request("sync")["applied"])

    def stats(self) -> Dict[str, object]:
        return self.request("stats")["stats"]

    def metrics(self, *, rate_key: Optional[str] = None) -> Dict[str, object]:
        """The metrics snapshot (read-only unless a ``rate_key`` is given)."""
        return self.request("metrics", rate_key=rate_key)["metrics"]  # type: ignore[return-value]

    def metrics_text(self, *, namespace: Optional[str] = None) -> str:
        """The registry in Prometheus text exposition format."""
        return str(self.request("metrics_text", namespace=namespace)["text"])

    def trace(
        self,
        action: str = "status",
        *,
        sample: Optional[float] = None,
        drain: Optional[bool] = None,
    ) -> Dict[str, object]:
        """Drive the server-side engine tracer (docs/observability.md).

        ``action``: ``start`` / ``stop`` / ``status`` / ``dump`` /
        ``clear``; ``dump`` returns a Chrome ``trace_event`` document
        under ``"trace"``.
        """
        return self.request("trace", action=action, sample=sample, drain=drain)

    def snapshot(self) -> str:
        """Force a durable checkpoint; returns its path on the server."""
        return str(self.request("snapshot")["path"])

    def shutdown(self) -> None:
        """Ask the server to shut down gracefully."""
        self.request("shutdown")
