"""Blocking JSON-lines client with retry, timeouts and a circuit breaker.

Plain sockets, no dependencies: one request out, one response in.  The
benchmark load generator, the examples and operational scripts all talk
to the server through this class; anything else can speak the protocol
directly (it is a dozen lines in any language — see ``docs/service.md``).

Resilience semantics (the full contract is in ``docs/faults.md``):

* **Typed failures.**  Connection refusal raises
  :class:`ServiceConnectError`; a connect or per-op deadline raises
  :class:`ServiceTimeout`; a server ``RETRY_AFTER`` that outlives the
  retry budget raises :class:`ServiceRetryAfter`; an open circuit
  breaker raises :class:`ServiceUnavailable` without touching the wire.
* **Bounded retry.**  Transport failures on idempotent requests retry up
  to :attr:`RetryPolicy.attempts` times with exponential backoff and
  *deterministic* jitter (the policy's seeded RNG — two clients built
  with the same seed sleep the same schedule).
* **Exactly-once ingest.**  Every ``ingest_batch`` carries an
  idempotency key derived from the client's own batch sequence number;
  the server remembers completed keys and resumes half-done ones, so an
  at-least-once resend never double-applies an activation.
* **Circuit breaker.**  After ``failure_threshold`` consecutive
  transport-level failures the breaker opens and requests fail fast for
  ``cooldown`` seconds, then a half-open probe decides.  Breaker state
  and client retry counters are appended to :meth:`metrics_text` as
  Prometheus samples next to the server's own.
* **Failover.**  Given a ``failover`` endpoint list the client rotates
  to the next endpoint on transport failures and on ``FENCED`` /
  ``READ_ONLY`` / ``STALE`` / stale-epoch refusals (a deposed primary,
  a follower that has not been promoted yet, or a replica behind the
  session token), so one client object rides out a replica failover
  (docs/replication.md).  ``RETRY_AFTER`` shed windows are honoured
  *per endpoint*: an overloaded primary's back-off hint never delays a
  request that can go to a different node, and rotation skips
  endpoints still inside their window.  An observed epoch advance (a
  promotion) clears every shed window — the topology the windows were
  recorded against is gone, and a fresh primary must not be skipped on
  the strength of its predecessor's overload.
* **Read-your-writes sessions.**  With ``session_reads=True`` the
  client carries a session token — the applied watermark implied by
  its own acknowledged writes (a write response's ``seq + 1``) — and
  stamps it on every snapshot read, so a follower (or the read router)
  either serves a state at least that new or answers the typed
  ``STALE`` (docs/replication.md § Read routing).  ``max_staleness``
  additionally bounds how many records a serving replica may trail its
  primary by.
"""

from __future__ import annotations

import itertools
import json
import os
import random
import socket
import time
from dataclasses import dataclass
from typing import IO, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..obs.export import span_dicts
from ..obs.propagate import TraceContext, current_context, new_span_id
from ..obs.trace import Tracer

__all__ = [
    "CircuitBreaker",
    "RetryPolicy",
    "ServiceClient",
    "ServiceConnectError",
    "ServiceError",
    "ServiceRetryAfter",
    "ServiceTimeout",
    "ServiceUnavailable",
]

Label = Union[str, int]

#: Distinguishes concurrently-created clients in their idempotency keys.
_CLIENT_IDS = itertools.count()


class ServiceError(RuntimeError):
    """The server answered ``{"ok": false}``; carries its error message.

    ``code`` mirrors the protocol's ``error_type`` vocabulary
    (``BAD_REQUEST`` / ``RETRY_AFTER`` / ``INTERNAL`` / ...); client-side
    failures use their own codes (``CONNECT`` / ``TIMEOUT`` /
    ``UNAVAILABLE``).
    """

    def __init__(self, message: str, *, code: str = "INTERNAL") -> None:
        super().__init__(message)
        self.code = code


class ServiceConnectError(ServiceError):
    """Could not reach the server (refused, reset, or closed mid-request)."""

    def __init__(self, message: str) -> None:
        super().__init__(message, code="CONNECT")


class ServiceTimeout(ServiceError):
    """A connect or request deadline expired."""

    def __init__(self, message: str) -> None:
        super().__init__(message, code="TIMEOUT")


class ServiceRetryAfter(ServiceError):
    """The server shed the request (overload) beyond the retry budget."""

    def __init__(self, message: str, *, retry_after: float) -> None:
        super().__init__(message, code="RETRY_AFTER")
        self.retry_after = retry_after


class ServiceUnavailable(ServiceError):
    """The circuit breaker is open; the request never reached the wire."""

    def __init__(self, message: str) -> None:
        super().__init__(message, code="UNAVAILABLE")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    ``delay(k)`` for retry number ``k`` (0-based) is
    ``min(base_delay * factor**k, max_delay)`` spread by ``±jitter``
    using the policy consumer's seeded RNG, so retry storms decorrelate
    across clients while any single run replays exactly.
    """

    attempts: int = 4
    base_delay: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def delay(self, retry: int, rng: random.Random) -> float:
        raw = min(self.base_delay * self.factor ** retry, self.max_delay)
        if self.jitter <= 0.0:
            return raw
        spread = raw * self.jitter
        return max(0.0, raw - spread + 2.0 * spread * rng.random())


class CircuitBreaker:
    """Closed → open after N consecutive failures → half-open probe.

    Counts *transport-level* failures only (connect errors, timeouts,
    exhausted retry budgets).  A server that answers — even with an
    error envelope — is alive, and does not move the breaker.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        cooldown: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self.state = self.CLOSED
        #: Consecutive transport failures since the last success.
        self.failures = 0
        #: Lifetime count of closed→open transitions.
        self.opened_total = 0
        self._opened_at = 0.0

    def allow(self) -> bool:
        """Whether a request may go out now (may flip open → half-open)."""
        if self.state == self.OPEN:
            if self._clock() - self._opened_at < self.cooldown:
                return False
            self.state = self.HALF_OPEN
        return True

    def record_success(self) -> None:
        self.failures = 0
        self.state = self.CLOSED

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == self.HALF_OPEN or self.failures >= self.failure_threshold:
            if self.state != self.OPEN:
                self.opened_total += 1
            self.state = self.OPEN
            self._opened_at = self._clock()


class ServiceClient:
    """One TCP connection to a running ANC service.

    Usable as a context manager::

        with ServiceClient("127.0.0.1", 7700) as client:
            client.ingest("alice", "bob", t=12.5)
            client.sync()
            print(client.clusters())

    ``timeout`` is the default per-operation (and connect) deadline;
    individual :meth:`request` calls may override it.  ``retry`` and
    ``breaker`` default to :class:`RetryPolicy()` and
    :class:`CircuitBreaker()`.  ``failover`` lists additional
    ``(host, port)`` endpoints (typically the standbys of a replicated
    deployment) the client rotates through when the current endpoint is
    unreachable, fenced, read-only, or answering from a stale epoch.

    ``trace_sample`` > 0 turns on distributed tracing: every request is
    stamped with a ``trace`` envelope (``docs/observability.md``) whose
    trace id derives from this client's session and request counter —
    fully deterministic, no PRNG.  The sampled flag follows an
    accumulator (``trace_sample=0.25`` samples exactly every 4th
    request); sampled requests additionally record a ``client.<op>``
    root span in :attr:`tracer`, the client-side lane of the merged
    fleet trace.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        failover: Optional[Sequence[Tuple[str, int]]] = None,
        trace_sample: float = 0.0,
        session_reads: bool = False,
        max_staleness: Optional[int] = None,
    ) -> None:
        if not 0.0 <= trace_sample <= 1.0:
            raise ValueError(
                f"trace_sample must be in [0, 1], got {trace_sample}"
            )
        self._host = host
        self._port = int(port)
        self._timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._endpoints: List[Tuple[str, int]] = [(str(host), int(port))]
        for extra_host, extra_port in failover or ():
            endpoint = (str(extra_host), int(extra_port))
            if endpoint not in self._endpoints:
                self._endpoints.append(endpoint)
        self._cursor = 0
        #: Per-endpoint monotonic deadline before which the server asked
        #: us not to resend (RETRY_AFTER).  Keyed by endpoint index so an
        #: overloaded node's shed window never throttles its peers.
        self._shed_until: Dict[int, float] = {}
        self._rng = random.Random(self.retry.seed)
        #: Requests re-sent after a transport failure or RETRY_AFTER.
        self.retries = 0
        #: Successful re-connections after losing an established one.
        self.reconnects = 0
        #: Endpoint rotations (transport failover + fenced/read-only/stale).
        self.failovers = 0
        #: Highest replication epoch seen in any response envelope.
        self.last_epoch = 0
        #: Thread the session token into snapshot reads (read-your-writes).
        self.session_reads = bool(session_reads)
        #: Staleness bound (in records behind the primary) stamped on reads.
        self.max_staleness = (
            int(max_staleness) if max_staleness is not None else None
        )
        #: The applied watermark this session's reads must reflect —
        #: advanced by every acknowledged write to ``seq + 1`` (seq is
        #: 0-based) and by observed ``sync`` barriers.
        self.session_token = 0
        self._batch_seq = 0
        self._session = f"{os.getpid()}-{next(_CLIENT_IDS)}"
        self._trace_sample = trace_sample
        self._trace_seq = 0
        self._trace_acc = 0.0
        #: Client-side span buffer; sampled requests record their
        #: ``client.<op>`` root spans here (the client lane of a fleet
        #: trace — see :meth:`trace_spans`).
        self.tracer = Tracer(enabled=False, capacity=4096)
        self._sock: Optional[socket.socket] = None
        self._file: Optional[IO[bytes]] = None
        self._connect()

    # -- plumbing ---------------------------------------------------------
    def _advance_endpoint(self) -> None:
        """Rotate to the next usable endpoint (no-op with a single one).

        Prefers the first endpoint past its ``RETRY_AFTER`` shed window;
        when every endpoint is still inside one, plain round-robin — the
        per-attempt backoff in :meth:`request` provides the waiting.
        """
        count = len(self._endpoints)
        if count <= 1:
            return
        now = time.monotonic()
        chosen = (self._cursor + 1) % count
        for step in range(1, count):
            candidate = (self._cursor + step) % count
            if self._shed_until.get(candidate, 0.0) <= now:
                chosen = candidate
                break
        self._cursor = chosen
        self._host, self._port = self._endpoints[chosen]
        self.failovers += 1

    def _observe_epoch(self, response: Dict[str, object]) -> int:
        """Track the topology's epoch; returns the pre-update watermark."""
        previous = self.last_epoch
        for field in ("epoch", "fenced_by"):
            value = response.get(field)
            if isinstance(value, int):
                self.last_epoch = max(self.last_epoch, value)
        if self.last_epoch > previous and self._shed_until:
            # A promotion happened: the shed windows were recorded
            # against the pre-failover topology, and the endpoint that
            # shed as an overloaded primary may now *be* the fresh
            # primary — rotation must not skip it on its predecessor's
            # overload hint.
            self._shed_until.clear()
        return previous

    def _connect(self) -> None:
        """Establish a connection, retrying refusals with backoff.

        With one endpoint this raises :class:`ServiceTimeout` when the
        connect deadline expires (the server is reachable but not
        answering — waiting longer is a different failure than "nothing
        listens there") and :class:`ServiceConnectError` once refusals
        exhaust the budget.  With a failover list every endpoint is
        tried each attempt (rotating on refusal *and* timeout) before
        backing off.
        """
        attempts = max(1, self.retry.attempts)
        single = len(self._endpoints) == 1
        last: Optional[ServiceError] = None
        cause: Optional[OSError] = None
        for attempt in range(attempts):
            if attempt > 0:
                self._sleep(self.retry.delay(attempt - 1, self._rng))
            for _ in range(len(self._endpoints)):
                host, port = self._endpoints[self._cursor]
                try:
                    sock = socket.create_connection(
                        (host, port), timeout=self._timeout
                    )
                except socket.timeout as exc:
                    timed_out = ServiceTimeout(
                        f"connecting to {host}:{port} timed out "
                        f"after {self._timeout}s"
                    )
                    if single:
                        raise timed_out from exc
                    last, cause = timed_out, exc
                    self._advance_endpoint()
                    continue
                except OSError as exc:  # anclint: disable=service-exception-discipline — refusal is retried (on the next endpoint when there is one); exhaustion raises ServiceConnectError from the stored cause below
                    last = ServiceConnectError(
                        f"cannot connect to {host}:{port}: {exc}"
                    )
                    cause = exc
                    self._advance_endpoint()
                    continue
                self._sock = sock
                self._file = sock.makefile("rwb")
                self._host, self._port = host, port
                return
        if isinstance(last, ServiceTimeout):
            raise last from cause
        targets = ", ".join(f"{h}:{p}" for h, p in self._endpoints)
        raise ServiceConnectError(
            f"cannot connect to {targets} after {attempts} attempts: {cause}"
        ) from cause

    def _teardown(self) -> None:
        """Drop the broken connection (reconnect happens lazily on retry)."""
        if self._file is not None:
            try:
                self._file.close()
            except OSError:  # anclint: disable=service-exception-discipline — closing an already-broken pipe; the socket close below is the cleanup
                pass
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # anclint: disable=service-exception-discipline — nothing to map: the descriptor is gone either way
                pass
        self._file = None
        self._sock = None

    def _sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    def _round_trip(self, payload: bytes, timeout: Optional[float]) -> Dict[str, object]:
        sock, file = self._sock, self._file
        if sock is None or file is None:
            raise ConnectionError("not connected")
        sock.settimeout(timeout if timeout is not None else self._timeout)
        file.write(payload)
        file.flush()
        line = file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line)
        if not isinstance(response, dict):
            raise ServiceError(f"malformed response: {response!r}")
        return response

    def _mint_trace(self) -> Optional[TraceContext]:
        """The next request's root trace context (None = tracing off).

        Both halves are deterministic: the trace id derives from the
        client session and a request counter, and the sampled flag
        follows an error-diffusion accumulator — ``trace_sample=0.25``
        samples exactly requests 4, 8, 12, ... with no PRNG, so a test
        (or an incident replay) sees the same traces every run.
        """
        if self._trace_sample <= 0.0:
            return None
        self._trace_seq += 1
        self._trace_acc += self._trace_sample
        sampled = self._trace_acc >= 1.0 - 1e-12
        if sampled:
            self._trace_acc -= 1.0
        trace_id = f"{self._session}:{self._trace_seq:x}"
        return TraceContext(trace_id, new_span_id(), sampled)

    def request(
        self,
        op: str,
        *,
        timeout: Optional[float] = None,
        idempotent: bool = True,
        **fields: object,
    ) -> Dict[str, object]:
        """Send one request; return the decoded response or raise typed.

        Transport failures and ``RETRY_AFTER`` envelopes are retried
        (with backoff) while ``idempotent`` is true; other error
        envelopes raise :class:`ServiceError` immediately with the
        server's ``error_type`` as :attr:`ServiceError.code`.

        With a failover list, transport failures rotate endpoints, and
        three refusals become retryable by rotating instead of raising:
        ``FENCED`` / ``READ_ONLY`` (this node cannot take writes — some
        peer presumably can) and an ``ok`` answer stamped with an epoch
        below the highest this client has seen (a deposed primary still
        answering; its reads may be arbitrarily stale).  ``RETRY_AFTER``
        is honoured per endpoint: the shed node's window is recorded,
        and the request goes immediately to a peer outside its own
        window when one exists.
        """
        body = {"op": op, **{k: v for k, v in fields.items() if v is not None}}
        ctx = self._mint_trace()
        if ctx is None:
            return self._send(op, body, timeout=timeout, idempotent=idempotent)
        with self.tracer.wire_span(f"client.{op}", ctx, op=op):
            bound = current_context()
            if bound is not None:
                body["trace"] = bound.to_wire()
            return self._send(op, body, timeout=timeout, idempotent=idempotent)

    def _send(
        self,
        op: str,
        body: Dict[str, object],
        *,
        timeout: Optional[float],
        idempotent: bool,
    ) -> Dict[str, object]:
        """The retry/failover loop behind :meth:`request`."""
        if not self.breaker.allow():
            raise ServiceUnavailable(
                f"circuit breaker open after {self.breaker.failures} "
                f"consecutive failures; cooling down {self.breaker.cooldown}s"
            )
        payload = json.dumps(body).encode() + b"\n"
        attempts = max(1, self.retry.attempts) if idempotent else 1
        last_error: Optional[ServiceError] = None
        next_delay: Optional[float] = None
        for attempt in range(attempts):
            if attempt > 0:
                self.retries += 1
                if next_delay is None:
                    next_delay = self.retry.delay(attempt - 1, self._rng)
                self._sleep(next_delay)
                next_delay = None
            if self._sock is None:
                try:
                    self._connect()
                    self.reconnects += 1
                except ServiceError as exc:
                    last_error = exc
                    continue
            try:
                response = self._round_trip(payload, timeout)
            except socket.timeout:
                self._teardown()
                self._advance_endpoint()
                last_error = ServiceTimeout(
                    f"{op} timed out after {timeout or self._timeout}s"
                )
                continue
            except (ConnectionError, OSError) as exc:
                self._teardown()
                self._advance_endpoint()
                last_error = ServiceConnectError(f"connection lost during {op}: {exc}")
                continue
            epoch_seen = self._observe_epoch(response)
            if response.get("ok"):
                epoch = response.get("epoch")
                if (
                    len(self._endpoints) > 1
                    and isinstance(epoch, int)
                    and 0 < epoch < epoch_seen
                ):
                    # A deposed node still answering: its data predates
                    # the fence.  Ask a peer instead.
                    last_error = ServiceError(
                        f"{op} answered from stale epoch {epoch} "
                        f"(newest seen: {epoch_seen})",
                        code="STALE_EPOCH",
                    )
                    self._teardown()
                    self._advance_endpoint()
                    continue
                self.breaker.record_success()
                return response
            error_type = str(response.get("error_type", "INTERNAL"))
            message = str(response.get("error", "unknown server error"))
            if error_type == "RETRY_AFTER":
                hint = response.get("retry_after")
                retry_after = (
                    float(hint)
                    if isinstance(hint, (int, float))
                    else self.retry.base_delay
                )
                last_error = ServiceRetryAfter(message, retry_after=retry_after)
                shed_endpoint = self._cursor
                self._shed_until[shed_endpoint] = time.monotonic() + retry_after
                self._advance_endpoint()
                if self._cursor != shed_endpoint:
                    # A peer outside its own shed window can take this
                    # request now; the overloaded node's hint only
                    # throttles the overloaded node.
                    self._teardown()
                    next_delay = 0.0
                else:
                    next_delay = min(retry_after, self.retry.max_delay)
                continue
            if error_type in ("FENCED", "READ_ONLY") and len(self._endpoints) > 1:
                # This node cannot take the write, but a peer (the newly
                # promoted primary) presumably can.
                last_error = ServiceError(message, code=error_type)
                self._teardown()
                self._advance_endpoint()
                continue
            if error_type == "STALE" and idempotent:
                # The node is behind this session's token (or the
                # staleness bound).  A peer may be caught up; with a
                # single endpoint the backoff gives this one time to
                # catch up.  Either way the retry budget bounds the wait
                # and exhaustion surfaces the typed STALE.
                last_error = ServiceError(message, code=error_type)
                if len(self._endpoints) > 1:
                    self._teardown()
                    self._advance_endpoint()
                continue
            # The server answered: it is alive.  Surface its error as-is
            # without moving the breaker or burning retries.
            raise ServiceError(message, code=error_type)
        self.breaker.record_failure()
        if last_error is None:  # attempts >= 1 always sets it; belt and braces
            last_error = ServiceConnectError(f"{op} failed without a response")
        raise last_error

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- client-side metrics ----------------------------------------------
    def client_metrics_text(self, *, namespace: str = "anc") -> str:
        """Client resilience counters in Prometheus text format.

        Rendered in the same style as the server's
        :func:`~repro.obs.export.render_prometheus` output so the two
        concatenate into one scrape body (see :meth:`metrics_text`).
        Breaker state encodes as 0 = closed, 1 = open, 2 = half-open.
        """
        states = {
            CircuitBreaker.CLOSED: 0.0,
            CircuitBreaker.OPEN: 1.0,
            CircuitBreaker.HALF_OPEN: 2.0,
        }
        prefix = f"{namespace}_client" if namespace else "client"
        samples: List[Tuple[str, str, float]] = [
            ("retries_total", "counter", float(self.retries)),
            ("reconnects_total", "counter", float(self.reconnects)),
            ("failovers_total", "counter", float(self.failovers)),
            ("last_epoch", "gauge", float(self.last_epoch)),
            ("breaker_opened_total", "counter", float(self.breaker.opened_total)),
            ("breaker_failures", "gauge", float(self.breaker.failures)),
            ("breaker_state", "gauge", states.get(self.breaker.state, -1.0)),
        ]
        lines: List[str] = []
        for name, kind, value in samples:
            lines.append(f"# TYPE {prefix}_{name} {kind}")
            lines.append(f"{prefix}_{name} {value:g}")
        return "\n".join(lines) + "\n"

    # -- convenience ops ---------------------------------------------------
    def ping(self) -> Dict[str, object]:
        return self.request("ping")

    def ingest(self, u: Label, v: Label, t: float) -> int:
        """Ingest one activation; returns its sequence number.

        Routed through :meth:`ingest_batch` so the single-activation path
        gets the same idempotency key and resend safety.
        """
        return self.ingest_batch([(u, v, t)])

    def ingest_batch(
        self,
        items: Sequence[Tuple[Label, Label, float]],
        *,
        key: Optional[str] = None,
    ) -> int:
        """Ingest many activations; returns the last sequence number.

        ``key`` is the idempotency key; the default derives one from this
        client's batch sequence number, making retries (automatic or
        manual resends of the same call) exactly-once on the server.
        """
        if key is None:
            self._batch_seq += 1
            key = f"{self._session}:{self._batch_seq}"
        response = self.request(
            "ingest_batch", items=[[u, v, t] for u, v, t in items], key=key
        )
        seq = int(response["seq"])  # type: ignore[arg-type]
        # seq is the 0-based sequence of the last record, so the state
        # reflecting this write has applied >= seq + 1 — the session
        # token subsequent reads must clear (docs/replication.md).
        self.session_token = max(self.session_token, seq + 1)
        return seq

    def _read_fields(self) -> Dict[str, object]:
        """Consistency fields stamped on snapshot reads (None = omitted)."""
        fields: Dict[str, object] = {}
        if self.session_reads and self.session_token > 0:
            fields["token"] = self.session_token
        if self.max_staleness is not None:
            fields["max_staleness"] = self.max_staleness
        return fields

    def clusters(
        self, level: Optional[int] = None, *, min_size: int = 1
    ) -> List[List[Label]]:
        """All clusters at ``level`` (default √n granularity)."""
        return self.clusters_info(level, min_size=min_size)["clusters"]  # type: ignore[return-value]

    def clusters_info(
        self, level: Optional[int] = None, *, min_size: int = 1
    ) -> Dict[str, object]:
        """Clusters plus level/time/applied metadata."""
        return self.request(
            "clusters", level=level, min_size=min_size, **self._read_fields()
        )

    def local(self, node: Label, level: Optional[int] = None) -> List[Label]:
        """The node's cluster at ``level``."""
        return self.request(
            "local", node=node, level=level, **self._read_fields()
        )["cluster"]  # type: ignore[return-value]

    def zoom_in(self, level: int) -> int:
        return int(self.request("zoom_in", level=level)["level"])  # type: ignore[arg-type]

    def zoom_out(self, level: int) -> int:
        return int(self.request("zoom_out", level=level)["level"])  # type: ignore[arg-type]

    def watch(self, node: Label, level: Optional[int] = None) -> List[Label]:
        """Watch a node's cluster; returns the current cluster."""
        return self.request(
            "watch", node=node, level=level, **self._read_fields()
        )["cluster"]  # type: ignore[return-value]

    def unwatch(self, node: Label, level: Optional[int] = None) -> None:
        self.request("unwatch", node=node, level=level)

    def changes(self) -> List[Dict[str, object]]:
        """Drain accumulated cluster-change events for watched nodes."""
        return self.request("changes")["changes"]  # type: ignore[return-value]

    def sync(self) -> int:
        """Block until everything ingested so far is applied and visible."""
        applied = int(self.request("sync")["applied"])  # type: ignore[arg-type]
        self.session_token = max(self.session_token, applied)
        return applied

    def stats(self) -> Dict[str, object]:
        return self.request("stats")["stats"]  # type: ignore[return-value]

    def metrics(self, *, rate_key: Optional[str] = None) -> Dict[str, object]:
        """The metrics snapshot (read-only unless a ``rate_key`` is given)."""
        return self.request("metrics", rate_key=rate_key)["metrics"]  # type: ignore[return-value]

    def metrics_text(self, *, namespace: Optional[str] = None) -> str:
        """Server Prometheus exposition plus this client's own samples."""
        text = str(self.request("metrics_text", namespace=namespace)["text"])
        return text + self.client_metrics_text(
            namespace=namespace if namespace is not None else "anc"
        )

    def trace(
        self,
        action: str = "status",
        *,
        sample: Optional[float] = None,
        drain: Optional[bool] = None,
    ) -> Dict[str, object]:
        """Drive the server-side engine tracer (docs/observability.md).

        ``action``: ``start`` / ``stop`` / ``status`` / ``dump`` /
        ``clear``; ``dump`` returns a Chrome ``trace_event`` document
        under ``"trace"``.
        """
        return self.request("trace", action=action, sample=sample, drain=drain)

    def trace_spans(self, *, drain: bool = False) -> List[Dict[str, object]]:
        """This client's own recorded spans in wire form.

        The client lane of a fleet trace: merge with the processes a
        ``trace_fetch`` returns (:func:`repro.obs.export.fleet_chrome_trace`).
        """
        spans = self.tracer.drain() if drain else self.tracer.spans()
        return span_dicts(spans, epoch_unix=self.tracer.epoch_unix)

    def trace_fetch(self, *, drain: bool = False) -> Dict[str, object]:
        """Fetch the server's (or, via a router, the fleet's) span buffers."""
        return self.request("trace_fetch", drain=drain or None)

    def profile(
        self, action: str = "status", *, hz: Optional[float] = None
    ) -> Dict[str, object]:
        """Drive the server-side sampling profiler (docs/observability.md).

        ``action``: ``start`` / ``stop`` / ``status`` / ``report``;
        ``report`` returns the profile document under ``"profile"``.
        """
        return self.request("profile", action=action, hz=hz)

    def snapshot(self) -> str:
        """Force a durable checkpoint; returns its path on the server."""
        return str(self.request("snapshot")["path"])

    def shutdown(self) -> None:
        """Ask the server to shut down gracefully."""
        self.request("shutdown")
