"""Long-lived serving layer over the ANC engines.

The paper's headline result — per-activation index maintenance up to
10⁶× faster than reconstruction (§V) — only pays off inside a serving
loop that interleaves a live activation stream with cluster queries.
This package is that loop:

* :mod:`~repro.service.ingest` — bounded intake queue with
  micro-batching (flush on batch size or max latency);
* :mod:`~repro.service.engine_host` — single-writer/multi-reader
  concurrency: the engine update runs on a dedicated writer thread while
  queries are answered from an immutable published snapshot;
* :mod:`~repro.service.snapshots` — write-ahead activation log plus
  periodic engine checkpoints (through :mod:`repro.index.persistence`),
  so recovery = load checkpoint + replay WAL tail;
* :mod:`~repro.service.metrics` — counters and sliding-window
  histograms behind a JSON snapshot;
* :mod:`~repro.service.server` / :mod:`~repro.service.client` — a
  stdlib-only TCP JSON-lines protocol and its blocking client.

Start a server from the command line with ``repro-anc serve`` or
programmatically via :class:`~repro.service.server.ANCServer`; see
``docs/service.md`` for the protocol and operational knobs.
"""

from .client import (
    CircuitBreaker,
    RetryPolicy,
    ServiceClient,
    ServiceConnectError,
    ServiceError,
    ServiceRetryAfter,
    ServiceTimeout,
    ServiceUnavailable,
)
from .engine_host import EngineHost, PublishedState
from .errors import BadRequest, Overloaded, ServiceFault, Unavailable, UnknownOp
from .ingest import MicroBatcher
from .metrics import MetricsRegistry
from .server import ANCServer, ServerConfig
from .snapshots import (
    CheckpointCorruptError,
    CheckpointStore,
    WalCorruptError,
    WriteAheadLog,
    dump_engine_state,
    recover_engine,
    restore_engine,
)

__all__ = [
    "ANCServer",
    "ServerConfig",
    "ServiceClient",
    "ServiceError",
    "ServiceConnectError",
    "ServiceTimeout",
    "ServiceRetryAfter",
    "ServiceUnavailable",
    "RetryPolicy",
    "CircuitBreaker",
    "ServiceFault",
    "BadRequest",
    "UnknownOp",
    "Overloaded",
    "Unavailable",
    "EngineHost",
    "PublishedState",
    "MicroBatcher",
    "MetricsRegistry",
    "CheckpointStore",
    "WriteAheadLog",
    "WalCorruptError",
    "CheckpointCorruptError",
    "dump_engine_state",
    "restore_engine",
    "recover_engine",
]
