"""The asyncio TCP server: JSON-lines protocol over the engine host.

Stdlib-only.  Each connection carries newline-delimited JSON requests;
every request gets exactly one JSON response (``{"ok": true, ...}`` or
``{"ok": false, "error": ...}``), echoing the request's ``id`` when one
was sent, so clients may pipeline.  See ``docs/service.md`` for the full
protocol table.

Wiring (one of everything):

    clients ──TCP──> handlers ──ingest──> MicroBatcher ──> EngineHost
                         │                                    │
                         └──────── queries ◄── PublishedState ┘
    WAL append on ingest; periodic checkpoints through the host's
    writer thread; periodic metrics log line.

On startup with a ``data_dir`` the server first recovers: newest
complete checkpoint + WAL tail replay (see
:mod:`~repro.service.snapshots`), so a ``kill -9`` loses nothing that
was acknowledged.
"""

from __future__ import annotations

import asyncio
import json
import logging
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Union,
)

from ..core.activation import Activation
from ..core.anc import ANCParams, make_engine
from ..graph.graph import Graph, edge_key
from ..obs.export import chrome_trace, render_prometheus
from ..obs.trace import Observability, Tracer
from .engine_host import EngineHost
from .errors import Overloaded, UnknownOp, fault_response
from .ingest import MicroBatcher
from .metrics import MetricsRegistry
from .snapshots import CheckpointStore, WriteAheadLog, recover_engine

if TYPE_CHECKING:  # hook-only dependency (see repro.faults)
    from ..faults.plan import FaultPlan

__all__ = ["ANCServer", "ServerConfig"]

log = logging.getLogger("repro.service")


@dataclass
class ServerConfig:
    """Operational knobs of one server process."""

    host: str = "127.0.0.1"
    #: Port to bind; 0 picks a free port (read :attr:`ANCServer.port` after start).
    port: int = 0
    #: Engine to serve: ``anco`` / ``ancor`` / ``ancf``.
    engine: str = "anco"
    #: Micro-batch flush thresholds (see :class:`MicroBatcher`).
    batch_size: int = 64
    max_latency: float = 0.05
    #: Intake queue bound — the backpressure limit.
    max_pending: int = 4096
    #: Durability directory (WAL + checkpoints); None = in-memory only.
    data_dir: Optional[Union[str, Path]] = None
    #: Checkpoint after this many applied activations (0 = only on shutdown).
    checkpoint_every: int = 2000
    #: Also checkpoint at least every this many seconds (0 = disabled).
    checkpoint_interval: float = 0.0
    #: Period of the metrics log line (0 = disabled).
    metrics_interval: float = 30.0
    #: Span ring-buffer capacity of the engine tracer (``trace`` op).
    trace_capacity: int = 8192
    #: Queue depth at which ingest *sheds* with a typed ``RETRY_AFTER``
    #: instead of delaying the acknowledgement (0 = never shed).
    shed_watermark: int = 0
    #: Evict a connection whose response write does not drain within this
    #: many seconds — a stalled/slow reader (0 = wait forever).
    write_timeout: float = 30.0
    #: How long the ``degraded`` flag stays up after a shed or eviction.
    degraded_hold: float = 5.0
    #: Remembered ``ingest_batch`` keys for idempotent resend (LRU bound).
    dedup_capacity: int = 1024
    #: Fault-injection plan (:mod:`repro.faults`); ``None`` = disarmed.
    faults: "Optional[FaultPlan]" = None


class _BatchEntry:
    """Idempotency state of one keyed ``ingest_batch``.

    ``done`` counts the items already ingested under this key, so a
    retry after a mid-batch failure (reset, shed) *resumes* rather than
    re-appending the prefix — the exactly-once half of the client's
    at-least-once resend.  ``future`` resolves to the response so a
    concurrent duplicate awaits the original instead of racing it.
    """

    __slots__ = ("done", "last_seq", "future")

    def __init__(self) -> None:
        self.done = 0
        self.last_seq = -1
        self.future: Optional[asyncio.Future] = None


class ANCServer:
    """A long-lived clustering service over one relation network.

    Parameters
    ----------
    graph:
        The relation network ``G(V, E)``.
    names:
        Original node labels (``names[i]`` for dense id ``i``) as
        returned by the edge-list readers; protocol messages use these
        labels.  ``None`` serves dense integer ids directly.
    config:
        Operational knobs; see :class:`ServerConfig`.
    params:
        Engine parameters for a cold start (a recovered checkpoint's
        stored parameters win over these).
    """

    def __init__(
        self,
        graph: Graph,
        names: Optional[Sequence[Hashable]] = None,
        *,
        config: Optional[ServerConfig] = None,
        params: Optional[ANCParams] = None,
    ) -> None:
        self.graph = graph
        self.config = config or ServerConfig()
        self.names = list(names) if names is not None else None
        self._label_to_id: Dict[str, int] = (
            {str(name): i for i, name in enumerate(self.names)}
            if self.names is not None
            else {}
        )

        self._faults = self.config.faults
        store: Optional[CheckpointStore] = None
        wal: Optional[WriteAheadLog] = None
        if self.config.data_dir is not None:
            store = CheckpointStore(self.config.data_dir, faults=self._faults)
            engine, replayed = recover_engine(
                graph,
                store,
                params=params,
                engine_name=self.config.engine.upper(),
            )
            if replayed or engine.activations_processed:
                log.info(
                    "recovered engine at %d activations (%d replayed from WAL)",
                    engine.activations_processed,
                    replayed,
                )
            wal = WriteAheadLog(store.wal_path, faults=self._faults)
        else:
            engine = make_engine(self.config.engine.upper(), graph, params)

        self.metrics = MetricsRegistry()
        # Engine-deep observability: one registry + one tracer shared by
        # the engine, its index, the query engine and the watcher.  The
        # tracer starts disabled (the no-op fast path); the ``trace`` op
        # turns it on live.
        self.tracer = Tracer(enabled=False, capacity=self.config.trace_capacity)
        self.obs = Observability(registry=self.metrics, tracer=self.tracer)
        engine.attach_obs(self.obs)
        if self._faults is not None:
            self._faults.attach_obs(self.obs)
        self.batcher = MicroBatcher(
            batch_size=self.config.batch_size,
            max_latency=self.config.max_latency,
            max_pending=self.config.max_pending,
        )
        self.batcher.faults = self._faults
        self.host = EngineHost(
            engine,
            self.batcher,
            wal=wal,
            checkpoints=store,
            checkpoint_every=self.config.checkpoint_every,
            metrics=self.metrics,
            shed_watermark=self.config.shed_watermark,
        )
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._run_task: Optional[asyncio.Task] = None
        self._background: List[asyncio.Task] = []
        self._stop = asyncio.Event()
        # Graceful-degradation state: sticks for ``degraded_hold`` seconds
        # after the last shed/eviction so operators see transients.
        self._degraded_until = 0.0
        self._dedup: "OrderedDict[str, _BatchEntry]" = OrderedDict()
        self._c_evictions = self.metrics.counter("slow_reader_evictions")
        self._c_dedup = self.metrics.counter("ingest_dedup_hits")
        self.metrics.gauge("degraded", lambda: 1.0 if self.degraded else 0.0)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and start the writer + background tasks."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=4 * 1024 * 1024,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._run_task = asyncio.create_task(self.host.run())
        if self.config.metrics_interval > 0:
            self._background.append(
                asyncio.create_task(self._metrics_loop(self.config.metrics_interval))
            )
        if self.config.checkpoint_interval > 0 and self.host.checkpoints is not None:
            self._background.append(
                asyncio.create_task(
                    self._checkpoint_loop(self.config.checkpoint_interval)
                )
            )
        log.info("serving on %s:%d", self.config.host, self.port)

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` (or a client ``shutdown``), then drain."""
        if self._server is None:
            await self.start()
        await self._stop.wait()
        await self._shutdown()

    async def run(self, *, announce: Optional[Callable[[str], object]] = None) -> None:
        """Start, announce ``SERVING <host> <port>``, serve until stopped.

        ``announce`` is a callable receiving the announce line (default:
        print to stdout, which the benchmark's process harness parses).
        """
        await self.start()
        line = f"SERVING {self.config.host} {self.port}"
        if announce is None:
            print(line, flush=True)
        else:
            announce(line)
        await self.serve_forever()

    def request_stop(self) -> None:
        """Ask the server to shut down (idempotent, safe from handlers)."""
        self._stop.set()

    async def stop(self) -> None:
        """Request and await a graceful shutdown."""
        self.request_stop()
        if self._server is not None:
            await self._shutdown()

    async def _shutdown(self) -> None:
        if self._server is None:
            return
        server, self._server = self._server, None
        server.close()
        await server.wait_closed()
        for task in self._background:
            task.cancel()
        for task in self._background:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._background.clear()
        # Drain the queue, cut a final checkpoint, stop the writer.
        await self.host.close(self._run_task)
        if self.host.wal is not None:
            self.host.wal.close()
        log.info("shut down cleanly at %d activations", self.host.applied)

    async def _metrics_loop(self, interval: float) -> None:
        while True:
            await asyncio.sleep(interval)
            log.info("metrics %s", self.metrics.log_line())

    async def _checkpoint_loop(self, interval: float) -> None:
        while True:
            await asyncio.sleep(interval)
            await self.host.checkpoint()

    # ------------------------------------------------------------------
    # Graceful degradation
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """Overloaded now, or shed/evicted within the last ``degraded_hold`` s.

        Surfaced in the ``stats`` op and as the ``degraded`` Prometheus
        gauge; the contract is in docs/faults.md.
        """
        watermark = self.config.shed_watermark
        if watermark > 0 and self.batcher.depth >= watermark:
            return True
        return time.monotonic() < self._degraded_until

    def _note_degraded(self) -> None:
        self._degraded_until = time.monotonic() + self.config.degraded_hold

    # ------------------------------------------------------------------
    # Protocol plumbing
    # ------------------------------------------------------------------
    def _label(self, v: int) -> Union[str, int]:
        return str(self.names[v]) if self.names is not None else v

    def _labels(self, nodes: Sequence[int]) -> List[Union[str, int]]:
        return [self._label(v) for v in nodes]

    def _resolve_node(self, raw: object) -> int:
        """Map a protocol node reference (label or dense id) to a node id."""
        if self.names is not None:
            v = self._label_to_id.get(str(raw))
            if v is not None:
                return v
        if isinstance(raw, int) or (isinstance(raw, str) and raw.lstrip("-").isdigit()):
            v = int(raw)
            if self.graph.has_node(v):
                return v
        raise ValueError(f"unknown node {raw!r}")

    def _resolve_activation(self, item: Sequence[object]) -> Activation:
        if len(item) != 3:
            raise ValueError(f"activation must be [u, v, t], got {item!r}")
        u = self._resolve_node(item[0])
        v = self._resolve_node(item[1])
        if u == v:
            raise ValueError(f"self-activation on node {item[0]!r}")
        u, v = edge_key(u, v)
        if not self.graph.has_edge(u, v):
            raise ValueError(f"({item[0]!r}, {item[1]!r}) is not a relation edge")
        t = self.host.clamp_time(float(item[2]))
        return Activation(u, v, t)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            if self._faults is not None:
                action = self._faults.hit("server.accept")
                if action is not None and action.kind == "reset":
                    writer.transport.abort()
                    return
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                if self._faults is not None:
                    action = self._faults.hit("server.request")
                    if action is not None:
                        if action.kind == "reset":
                            writer.transport.abort()
                            return
                        if action.kind == "delay":
                            await asyncio.sleep(action.seconds())
                response = await self._handle_request(line)
                writer.write(json.dumps(response).encode() + b"\n")
                if not await self._drain(writer):
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):  # anclint: disable=service-exception-discipline — peer went away mid-conversation; no one is left to answer, so closing our side (the finally below) is the handling
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # anclint: disable=service-exception-discipline — the close handshake racing the peer's reset is how an already-dead connection finishes; nothing to map
                pass

    async def _drain(self, writer: asyncio.StreamWriter) -> bool:
        """Flush one response, evicting a reader that will not take it.

        A client that stops reading (the stalled-consumer failure mode)
        would otherwise pin this handler — and its buffered responses —
        forever.  ``write_timeout`` bounds the wait; on expiry the
        connection is aborted and counted (``slow_reader_evictions``),
        and the server flags itself degraded.  Returns False when the
        connection was evicted.
        """
        timeout = self.config.write_timeout
        stalled = 0.0
        if self._faults is not None:
            action = self._faults.hit("server.send")
            if action is not None and action.kind == "stall":
                # Deterministic stand-in for "drain never completes":
                # hold the handler like a full socket buffer would.
                stalled = action.seconds()
        try:
            if stalled > 0.0:
                await asyncio.wait_for(asyncio.sleep(stalled), timeout or None)
            await asyncio.wait_for(writer.drain(), timeout or None)
        except asyncio.TimeoutError:
            self._c_evictions.inc()
            self._note_degraded()
            log.warning("evicting slow reader (write stalled > %.1fs)", timeout)
            writer.transport.abort()
            return False
        return True

    async def _handle_request(self, raw: bytes) -> Dict[str, object]:
        request_id: object = None
        try:
            request = json.loads(raw)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            request_id = request.get("id")
            op = request.get("op")
            handler = self._OPS.get(op)
            if handler is None:
                raise UnknownOp(f"unknown op {op!r}")
            response = await handler(self, request)
            response.setdefault("ok", True)
        except Exception as exc:  # protocol boundary: map to a typed envelope
            if isinstance(exc, Overloaded):
                self._note_degraded()
            response = fault_response(exc)
        if request_id is not None:
            response["id"] = request_id
        return response

    # ------------------------------------------------------------------
    # Op handlers
    # ------------------------------------------------------------------
    async def _op_ping(self, request: Dict) -> Dict[str, object]:
        return {"t": self.host.state.t, "applied": self.host.applied}

    async def _op_ingest(self, request: Dict) -> Dict[str, object]:
        act = self._resolve_activation(
            [request.get("u"), request.get("v"), request.get("t", self.host.state.t)]
        )
        seq = await self.host.ingest(act)
        return {"seq": seq, "t": act.t}

    async def _op_ingest_batch(self, request: Dict) -> Dict[str, object]:
        items = request.get("items")
        if not isinstance(items, list):
            raise ValueError("ingest_batch needs a list 'items' of [u, v, t]")
        key = request.get("key")
        if self._faults is not None:
            action = self._faults.hit("server.ingest_batch", key=key)
            if action is not None:
                if action.kind == "delay":
                    await asyncio.sleep(action.seconds())
                elif action.kind == "duplicate" and isinstance(key, str):
                    # Network-level duplication: the same request arrives
                    # twice; the second pass must dedup against the first.
                    await self._ingest_batch_keyed(key, items)
                    return await self._ingest_batch_keyed(key, items)
        if not isinstance(key, str):
            # Legacy un-keyed path: at-most-once, no resend safety.
            seq = -1
            for item in items:
                act = self._resolve_activation(item)
                seq = await self.host.ingest(act)
            return {"accepted": len(items), "seq": seq}
        return await self._ingest_batch_keyed(key, items)

    async def _ingest_batch_keyed(
        self, key: str, items: List[object]
    ) -> Dict[str, object]:
        """Idempotent ingest: at-least-once delivery, exactly-once apply.

        The client keys each batch by its own sequence number and resends
        the *same* key on retry.  Completed keys replay their cached
        response; an in-flight duplicate awaits the original; a key whose
        previous attempt failed mid-batch resumes from the first
        un-ingested item (see :class:`_BatchEntry`).
        """
        entry = self._dedup.get(key)
        if entry is None:
            entry = self._dedup[key] = _BatchEntry()
            self._trim_dedup()
        else:
            self._dedup.move_to_end(key)
        future = entry.future
        if future is not None:
            if not future.done():
                self._c_dedup.inc()
                result = await future
                return {**result, "deduped": True}
            if not future.cancelled() and future.exception() is None:
                self._c_dedup.inc()
                return {**future.result(), "deduped": True}
            # The previous attempt failed partway; fall through and resume.
        entry.future = asyncio.get_running_loop().create_future()
        try:
            while entry.done < len(items):
                act = self._resolve_activation(items[entry.done])  # type: ignore[arg-type]
                entry.last_seq = await self.host.ingest(act)
                entry.done += 1
            response: Dict[str, object] = {
                "accepted": len(items),
                "seq": entry.last_seq,
            }
        except BaseException as exc:
            if not entry.future.done():
                entry.future.set_exception(exc)
                entry.future.exception()  # mark retrieved; retries re-raise via `raise`
            raise
        entry.future.set_result(response)
        return response

    def _trim_dedup(self) -> None:
        """Drop the oldest *settled* dedup keys past the capacity bound."""
        capacity = max(1, self.config.dedup_capacity)
        for key in list(self._dedup):
            if len(self._dedup) <= capacity:
                break
            entry = self._dedup[key]
            if entry.future is None or entry.future.done():
                del self._dedup[key]

    async def _op_clusters(self, request: Dict) -> Dict[str, object]:
        level, clusters = await self.host.clusters(request.get("level"))
        min_size = int(request.get("min_size", 1))
        state = self.host.state
        return {
            "level": level,
            "num_levels": state.num_levels,
            "t": state.t,
            "applied": state.activations,
            "clusters": [
                self._labels(c) for c in clusters if len(c) >= min_size
            ],
        }

    async def _op_local(self, request: Dict) -> Dict[str, object]:
        node = self._resolve_node(request.get("node"))
        level, cluster = await self.host.cluster_of(node, request.get("level"))
        state = self.host.state
        return {
            "level": level,
            "t": state.t,
            "applied": state.activations,
            "cluster": self._labels(cluster),
        }

    async def _op_zoom_in(self, request: Dict) -> Dict[str, object]:
        return {"level": self.host.zoom_in(int(request.get("level", 0)))}

    async def _op_zoom_out(self, request: Dict) -> Dict[str, object]:
        return {"level": self.host.zoom_out(int(request.get("level", 0)))}

    async def _op_watch(self, request: Dict) -> Dict[str, object]:
        node = self._resolve_node(request.get("node"))
        cluster = await self.host.watch(node, request.get("level"))
        return {"cluster": self._labels(cluster)}

    async def _op_unwatch(self, request: Dict) -> Dict[str, object]:
        node = self._resolve_node(request.get("node"))
        await self.host.unwatch(node, request.get("level"))
        return {}

    async def _op_changes(self, request: Dict) -> Dict[str, object]:
        events = self.host.drain_watch_events()
        return {
            "changes": [
                {
                    "node": self._label(e.node),
                    "level": e.level,
                    "t": e.t,
                    "joined": self._labels(sorted(e.joined)),
                    "left": self._labels(sorted(e.left)),
                }
                for e in events
            ]
        }

    async def _op_sync(self, request: Dict) -> Dict[str, object]:
        state = await self.host.wait_applied()
        return {"applied": state.activations, "t": state.t}

    async def _op_stats(self, request: Dict) -> Dict[str, object]:
        stats = self.host.stats()
        stats["degraded"] = self.degraded
        return {"stats": stats}

    async def _op_metrics(self, request: Dict) -> Dict[str, object]:
        # Read-only by default: a polling client must not reset anyone
        # else's rate window (notably the operator log line's).  Clients
        # that want delta rates pass their own ``rate_key``.
        rate_key = request.get("rate_key")
        return {
            "metrics": self.metrics.snapshot(
                rate_key=str(rate_key) if rate_key is not None else None
            )
        }

    async def _op_metrics_text(self, request: Dict) -> Dict[str, object]:
        namespace = str(request.get("namespace", "anc"))
        return {"text": render_prometheus(self.metrics, namespace=namespace)}

    async def _op_trace(self, request: Dict) -> Dict[str, object]:
        tracer = self.tracer
        action = str(request.get("action", "status"))
        if action == "start":
            sample = request.get("sample")
            if sample is not None:
                tracer.set_sample(float(sample))
            tracer.enable()
        elif action == "stop":
            tracer.disable()
        elif action == "clear":
            tracer.drain()
        elif action == "dump":
            spans = (
                tracer.drain() if bool(request.get("drain", True)) else tracer.spans()
            )
            return {"trace": chrome_trace(spans), **tracer.status()}
        elif action != "status":
            raise ValueError(
                f"unknown trace action {action!r}; expected "
                f"start/stop/status/dump/clear"
            )
        return dict(tracer.status())

    async def _op_snapshot(self, request: Dict) -> Dict[str, object]:
        await self.host.wait_applied()
        path = await self.host.checkpoint()
        if path is None:
            raise ValueError("server has no data_dir; checkpoints are disabled")
        return {"path": path, "applied": self.host.applied}

    async def _op_shutdown(self, request: Dict) -> Dict[str, object]:
        self.request_stop()
        return {"stopping": True}

    _OPS = {
        "ping": _op_ping,
        "ingest": _op_ingest,
        "ingest_batch": _op_ingest_batch,
        "clusters": _op_clusters,
        "local": _op_local,
        "zoom_in": _op_zoom_in,
        "zoom_out": _op_zoom_out,
        "watch": _op_watch,
        "unwatch": _op_unwatch,
        "changes": _op_changes,
        "sync": _op_sync,
        "stats": _op_stats,
        "metrics": _op_metrics,
        "metrics_text": _op_metrics_text,
        "trace": _op_trace,
        "snapshot": _op_snapshot,
        "shutdown": _op_shutdown,
    }
