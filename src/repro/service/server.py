"""The asyncio TCP server: JSON-lines protocol over the engine host.

Stdlib-only.  Each connection carries newline-delimited JSON requests;
every request gets exactly one JSON response (``{"ok": true, ...}`` or
``{"ok": false, "error": ...}``), echoing the request's ``id`` when one
was sent, so clients may pipeline.  See ``docs/service.md`` for the full
protocol table.

Wiring (one of everything):

    clients ──TCP──> handlers ──ingest──> MicroBatcher ──> EngineHost
                         │                                    │
                         └──────── queries ◄── PublishedState ┘
    WAL append on ingest; periodic checkpoints through the host's
    writer thread; periodic metrics log line.

On startup with a ``data_dir`` the server first recovers: newest
complete checkpoint + WAL tail replay (see
:mod:`~repro.service.snapshots`), so a ``kill -9`` loses nothing that
was acknowledged.

A server runs as the ``primary`` (writable) or as a ``follower`` — a
warm standby that pulls committed WAL records from its primary
(``wal_fetch``/``replica_ack`` ops, driven by
:class:`repro.replica.link.ReplicationLink`), serves read-only snapshot
queries and can be promoted on failover.  Every response envelope is
stamped with the node's ``epoch`` and ``role``; epoch fencing and the
divergence auditor are documented in ``docs/replication.md``.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import logging
import os
import re
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Deque,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Set,
    Union,
)

from ..core.activation import Activation
from ..core.anc import ANCParams, make_engine
from ..graph.graph import Graph, edge_key
from ..obs.export import chrome_trace, render_prometheus, span_dicts
from ..obs.profiler import SamplingProfiler
from ..obs.propagate import TraceContext
from ..obs.trace import Observability, Tracer
from .engine_host import EngineHost
from .errors import (
    Diverged,
    Fenced,
    Overloaded,
    ReadOnly,
    Stale,
    UnknownOp,
    fault_response,
)
from .ingest import MicroBatcher
from .metrics import MetricsRegistry
from .snapshots import CheckpointStore, WalRecord, WriteAheadLog, recover_to

if TYPE_CHECKING:  # hook-only dependency (see repro.faults)
    from ..faults.plan import FaultPlan

__all__ = ["ANCServer", "ServerConfig"]

log = logging.getLogger("repro.service")


@dataclass
class ServerConfig:
    """Operational knobs of one server process."""

    host: str = "127.0.0.1"
    #: Port to bind; 0 picks a free port (read :attr:`ANCServer.port` after start).
    port: int = 0
    #: Engine to serve: ``anco`` / ``ancor`` / ``ancf``.
    engine: str = "anco"
    #: Micro-batch flush thresholds (see :class:`MicroBatcher`).
    batch_size: int = 64
    max_latency: float = 0.05
    #: Intake queue bound — the backpressure limit.
    max_pending: int = 4096
    #: Durability directory (WAL + checkpoints); None = in-memory only.
    data_dir: Optional[Union[str, Path]] = None
    #: Checkpoint after this many applied activations (0 = only on shutdown).
    checkpoint_every: int = 2000
    #: Also checkpoint at least every this many seconds (0 = disabled).
    checkpoint_interval: float = 0.0
    #: Period of the metrics log line (0 = disabled).
    metrics_interval: float = 30.0
    #: Span ring-buffer capacity of the engine tracer (``trace`` op).
    trace_capacity: int = 8192
    #: Queue depth at which ingest *sheds* with a typed ``RETRY_AFTER``
    #: instead of delaying the acknowledgement (0 = never shed).
    shed_watermark: int = 0
    #: Evict a connection whose response write does not drain within this
    #: many seconds — a stalled/slow reader (0 = wait forever).
    write_timeout: float = 30.0
    #: How long the ``degraded`` flag stays up after a shed or eviction.
    degraded_hold: float = 5.0
    #: Remembered ``ingest_batch`` keys for idempotent resend (LRU bound).
    dedup_capacity: int = 1024
    #: Role of this node: ``primary`` (writable) or ``follower`` (a
    #: read-only replica; pair with ``primary_host``/``primary_port``).
    role: str = "primary"
    #: Endpoint of the primary a follower replicates from.
    primary_host: Optional[str] = None
    primary_port: int = 0
    #: Identity under which a follower acks (default ``host:port``).
    replica_id: str = ""
    #: In-memory WAL tail kept for followers, so ``wal_fetch`` is served
    #: without touching the disk until a follower falls far behind.
    wal_tail_capacity: int = 4096
    #: Follower fetch cadence while caught up (seconds).
    poll_interval: float = 0.02
    #: Divergence-audit cadence on a follower (seconds; 0 = disabled).
    audit_interval: float = 0.25
    #: Start the sampling profiler at boot (``serve --profile``); the
    #: ``profile`` op starts/stops it live either way.
    profile: bool = False
    #: Sampling cadence of the wall-clock profiler (prime by default so
    #: the cadence cannot phase-lock with periodic work).
    profile_hz: float = 97.0
    #: Shard id when this server runs as a :mod:`repro.shard` worker;
    #: stamped on every response envelope (and ``stats``) so routers and
    #: operators can attribute answers.  ``None`` = unsharded.
    shard_id: Optional[int] = None
    #: Fault-injection plan (:mod:`repro.faults`); ``None`` = disarmed.
    faults: "Optional[FaultPlan]" = None


class _BatchEntry:
    """Idempotency state of one keyed ``ingest_batch``.

    ``done`` counts the items already ingested under this key, so a
    retry after a mid-batch failure (reset, shed) *resumes* rather than
    re-appending the prefix — the exactly-once half of the client's
    at-least-once resend.  ``future`` resolves to the response so a
    concurrent duplicate awaits the original instead of racing it.
    """

    __slots__ = ("done", "last_seq", "future")

    def __init__(self) -> None:
        self.done = 0
        self.last_seq = -1
        self.future: Optional[asyncio.Future] = None


class ANCServer:
    """A long-lived clustering service over one relation network.

    Parameters
    ----------
    graph:
        The relation network ``G(V, E)``.
    names:
        Original node labels (``names[i]`` for dense id ``i``) as
        returned by the edge-list readers; protocol messages use these
        labels.  ``None`` serves dense integer ids directly.
    config:
        Operational knobs; see :class:`ServerConfig`.
    params:
        Engine parameters for a cold start (a recovered checkpoint's
        stored parameters win over these).
    """

    def __init__(
        self,
        graph: Graph,
        names: Optional[Sequence[Hashable]] = None,
        *,
        config: Optional[ServerConfig] = None,
        params: Optional[ANCParams] = None,
    ) -> None:
        self.graph = graph
        self.config = config or ServerConfig()
        self.names = list(names) if names is not None else None
        self._label_to_id: Dict[str, int] = (
            {str(name): i for i, name in enumerate(self.names)}
            if self.names is not None
            else {}
        )

        if self.config.role not in ("primary", "follower"):
            raise ValueError(
                f"unknown role {self.config.role!r}; expected "
                f"'primary' or 'follower'"
            )

        self._faults = self.config.faults
        store: Optional[CheckpointStore] = None
        wal: Optional[WriteAheadLog] = None
        recovered_epoch = 0
        recovered_dedup: "OrderedDict[str, _BatchEntry]" = OrderedDict()
        if self.config.data_dir is not None:
            store = CheckpointStore(self.config.data_dir, faults=self._faults)
            recovery = recover_to(
                graph,
                store,
                params=params,
                engine_name=self.config.engine.upper(),
            )
            engine = recovery.engine
            recovered_epoch = recovery.epoch
            # Rebuild the exactly-once dedup map from the keyed WAL
            # records (capped to the newest ``dedup_capacity`` keys), so
            # a client resend that straddles the restart resumes instead
            # of double-applying.
            for key, (done, last_seq) in list(recovery.dedup.items())[
                -max(1, self.config.dedup_capacity):
            ]:
                entry = _BatchEntry()
                entry.done = done
                entry.last_seq = last_seq
                recovered_dedup[key] = entry
            if recovery.replayed or engine.activations_processed:
                log.info(
                    "recovered engine at %d activations (%d replayed from "
                    "WAL, epoch %d, %d dedup keys)",
                    engine.activations_processed,
                    recovery.replayed,
                    recovery.epoch,
                    len(recovered_dedup),
                )
            wal = WriteAheadLog(store.wal_path, faults=self._faults)
        else:
            engine = make_engine(self.config.engine.upper(), graph, params)

        self.metrics = MetricsRegistry()
        # Engine-deep observability: one registry + one tracer shared by
        # the engine, its index, the query engine and the watcher.  The
        # tracer starts disabled (the no-op fast path); the ``trace`` op
        # turns it on live.
        self.tracer = Tracer(enabled=False, capacity=self.config.trace_capacity)
        self.profiler = SamplingProfiler(self.config.profile_hz, tracer=self.tracer)
        self.obs = Observability(registry=self.metrics, tracer=self.tracer)
        engine.attach_obs(self.obs)
        if self._faults is not None:
            self._faults.attach_obs(self.obs)
        self.batcher = MicroBatcher(
            batch_size=self.config.batch_size,
            max_latency=self.config.max_latency,
            max_pending=self.config.max_pending,
        )
        self.batcher.faults = self._faults
        self.host = EngineHost(
            engine,
            self.batcher,
            wal=wal,
            checkpoints=store,
            checkpoint_every=self.config.checkpoint_every,
            metrics=self.metrics,
            shed_watermark=self.config.shed_watermark,
        )
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._run_task: Optional[asyncio.Task] = None
        self._background: List[asyncio.Task] = []
        self._stop = asyncio.Event()
        # Graceful-degradation state: sticks for ``degraded_hold`` seconds
        # after the last shed/eviction so operators see transients.
        self._degraded_until = 0.0
        self._dedup: "OrderedDict[str, _BatchEntry]" = recovered_dedup

        # -- replication state (docs/replication.md) -------------------
        #: ``primary`` | ``follower`` (promote flips a follower live).
        self.role = self.config.role
        #: This node's primary epoch — the fencing token.  A fresh
        #: primary starts at 1 (0 marks pre-replication data); followers
        #: adopt the epochs of the records they apply.
        self.epoch = (
            max(recovered_epoch, 1)
            if self.role == "primary"
            else recovered_epoch
        )
        #: Highest epoch a ``fence`` op stamped on this node; writes are
        #: refused while ``fenced_by > epoch`` (the deposed primary).
        self.fenced_by = 0
        #: Sticky divergence-audit verdict; ``None`` = consistent.
        self.diverged: Optional[str] = None
        #: The follower's replication link (started by :meth:`start`).
        self.replication: Optional[object] = None
        self.host.epoch = self.epoch
        if wal is not None:
            wal.epoch = self.epoch
            wal.on_append = self._on_wal_append
        #: Recent committed records served to followers without a file scan.
        self._wal_tail: Deque[WalRecord] = deque(
            maxlen=max(1, self.config.wal_tail_capacity)
        )
        #: follower id -> {"applied": int, "last_seen": monotonic seconds}.
        self._replicas: Dict[str, Dict[str, float]] = {}
        self._crashed = False
        self._conns: Set[asyncio.StreamWriter] = set()

        self._c_evictions = self.metrics.counter("slow_reader_evictions")
        self._c_dedup = self.metrics.counter("ingest_dedup_hits")
        self._c_fetch = self.metrics.counter("wal_fetch_served")
        self.metrics.gauge("degraded", lambda: 1.0 if self.degraded else 0.0)
        self.metrics.gauge("epoch", lambda: float(self.epoch))
        self.metrics.gauge(
            "replica_diverged", lambda: 1.0 if self.diverged else 0.0
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and start the writer + background tasks."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=4 * 1024 * 1024,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.profile:
            self.profiler.start()
        self._run_task = asyncio.create_task(self.host.run())
        if self.config.metrics_interval > 0:
            self._background.append(
                asyncio.create_task(self._metrics_loop(self.config.metrics_interval))
            )
        if self.config.checkpoint_interval > 0 and self.host.checkpoints is not None:
            self._background.append(
                asyncio.create_task(
                    self._checkpoint_loop(self.config.checkpoint_interval)
                )
            )
        if self.role == "follower" and self.config.primary_host is not None:
            # Deferred import: repro.replica builds on this module.
            from ..replica.link import ReplicationLink

            link = ReplicationLink(
                self,
                (self.config.primary_host, int(self.config.primary_port)),
                replica_id=self.config.replica_id
                or f"{self.config.host}:{self.port}",
                poll_interval=self.config.poll_interval,
                audit_interval=self.config.audit_interval,
            )
            self.replication = link
            self._background.append(asyncio.create_task(link.run()))
        log.info(
            "serving on %s:%d as %s (epoch %d)",
            self.config.host,
            self.port,
            self.role,
            self.epoch,
        )

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` (or a client ``shutdown``), then drain."""
        if self._server is None:
            await self.start()
        await self._stop.wait()
        await self._shutdown()

    async def run(self, *, announce: Optional[Callable[[str], object]] = None) -> None:
        """Start, announce ``SERVING <host> <port>``, serve until stopped.

        ``announce`` is a callable receiving the announce line (default:
        print to stdout, which the benchmark's process harness parses).
        """
        await self.start()
        line = f"SERVING {self.config.host} {self.port}"
        if announce is None:
            print(line, flush=True)
        else:
            announce(line)
        await self.serve_forever()

    def request_stop(self) -> None:
        """Ask the server to shut down (idempotent, safe from handlers)."""
        self._stop.set()

    async def stop(self) -> None:
        """Request and await a graceful shutdown."""
        self.request_stop()
        if self._server is not None:
            await self._shutdown()

    def _crash(self) -> None:
        """Simulated ``kill -9`` (chaos only): die *now*, clean up nothing.

        Every connection is aborted mid-conversation, the queue is
        dropped on the floor and no final checkpoint is cut — recovery
        must come from the WAL plus the last complete checkpoint alone,
        exactly like a real sudden process death.
        """
        if self._crashed:
            return
        self._crashed = True
        log.warning("injected crash: hard-stopping the server")
        for writer in list(self._conns):
            writer.transport.abort()
        self.request_stop()

    async def _shutdown(self) -> None:
        if self._server is None:
            return
        server, self._server = self._server, None
        server.close()
        await server.wait_closed()
        for task in self._background:
            task.cancel()
        for task in self._background:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._background.clear()
        if self._crashed:
            # kill -9 semantics: no drain, no final checkpoint.
            if self._run_task is not None:
                self._run_task.cancel()
                try:
                    await self._run_task
                except asyncio.CancelledError:
                    pass
            await self.host.abort()
        else:
            # Drain the queue, cut a final checkpoint, stop the writer.
            await self.host.close(self._run_task)
        if self.host.wal is not None:
            self.host.wal.close()
        self.profiler.stop()
        if self._crashed:
            log.info("crashed hard at %d applied activations", self.host.applied)
        else:
            log.info("shut down cleanly at %d activations", self.host.applied)

    async def _metrics_loop(self, interval: float) -> None:
        while True:
            await asyncio.sleep(interval)
            log.info("metrics %s", self.metrics.log_line())

    async def _checkpoint_loop(self, interval: float) -> None:
        while True:
            await asyncio.sleep(interval)
            await self.host.checkpoint()

    # ------------------------------------------------------------------
    # Graceful degradation
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """Overloaded now, or shed/evicted within the last ``degraded_hold`` s.

        Surfaced in the ``stats`` op and as the ``degraded`` Prometheus
        gauge; the contract is in docs/faults.md.
        """
        watermark = self.config.shed_watermark
        if watermark > 0 and self.batcher.depth >= watermark:
            return True
        return time.monotonic() < self._degraded_until

    def _note_degraded(self) -> None:
        self._degraded_until = time.monotonic() + self.config.degraded_hold

    # ------------------------------------------------------------------
    # Replication plumbing (docs/replication.md)
    # ------------------------------------------------------------------
    @property
    def fenced(self) -> bool:
        """True once a newer primary's fence deposed this node."""
        return self.fenced_by > self.epoch

    @property
    def crashed(self) -> bool:
        """True after an injected hard crash; the replication link exits."""
        return self._crashed

    def _require_writable(self) -> None:
        """Refuse writes on any node that is not the live primary."""
        if self.role != "primary":
            raise ReadOnly(
                f"this node is a {self.role}; ingest goes to the primary"
            )
        if self.fenced:
            raise Fenced(
                f"this primary (epoch {self.epoch}) was deposed by epoch "
                f"{self.fenced_by}; ingest goes to the new primary",
                epoch=self.epoch,
                fenced_by=self.fenced_by,
            )

    def _require_queryable(self) -> None:
        """Refuse cluster queries once the divergence auditor tripped."""
        if self.diverged is not None:
            raise Diverged(
                f"refusing cluster queries on diverged state: {self.diverged}"
            )

    def _replication_lag(self) -> int:
        """Records this node trails its primary by (0 on a primary)."""
        link = self.replication
        if link is None:
            return 0
        return int(link.lag)  # type: ignore[attr-defined]

    def _check_read_bound(self, request: Dict) -> None:
        """Enforce the read-path consistency bounds on a snapshot query.

        ``token`` is the client session's required applied watermark
        (read-your-writes: a write response's ``seq + 1``);
        ``max_staleness`` bounds how many records this node may trail
        its primary by.  Either violation raises the typed
        :class:`Stale` carrying this node's current watermark — never a
        silently stale answer (docs/replication.md § Read routing).
        """
        applied = self.host.applied
        token = request.get("token")
        if token is not None:
            required = int(token)  # type: ignore[arg-type]
            if required > applied:
                raise Stale(
                    f"applied watermark {applied} is behind session "
                    f"token {required}",
                    applied=applied,
                    required=required,
                )
        bound = request.get("max_staleness")
        if bound is not None:
            lag = self._replication_lag()
            if lag > int(bound):  # type: ignore[arg-type]
                raise Stale(
                    f"replication lag {lag} exceeds max_staleness {bound}",
                    applied=applied,
                    required=applied + lag,
                )

    def mark_diverged(self, detail: str) -> None:
        """Trip the sticky ``diverged`` state (divergence auditor verdict)."""
        if self.diverged is None:
            self.diverged = detail
            self._note_degraded()
            log.error("replica diverged: %s", detail)

    def _on_wal_append(self, record: WalRecord) -> None:
        # Fires on the event-loop thread (both host.ingest and
        # apply_replicated run there), so the deque needs no lock.
        self._wal_tail.append(record)

    def _wal_entries(self) -> int:
        """Committed records in this node's log (the replication head)."""
        wal = self.host.wal
        return wal.entries if wal is not None else self.host.ingested

    def _wal_slice(self, from_seq: int, limit: int) -> List[WalRecord]:
        """Records ``[from_seq, from_seq + limit)`` — tail buffer first.

        Falls back to a file scan when the follower is further behind
        than the in-memory tail reaches; a WAL-less (in-memory) node can
        only serve what its tail buffer still holds.
        """
        tail = self._wal_tail
        if tail and tail[0].seq <= from_seq:
            return [r for r in tail if r.seq >= from_seq][:limit]
        if from_seq >= self._wal_entries() or self.host.wal is None:
            return []
        return list(
            itertools.islice(
                WriteAheadLog.replay_records(self.host.wal.path, skip=from_seq),
                limit,
            )
        )

    def _note_replica(self, follower: str, applied: int) -> None:
        """Record a follower's progress; lazily register its lag gauge."""
        now = time.monotonic()
        info = self._replicas.get(follower)
        if info is None:
            info = self._replicas[follower] = {
                "applied": 0.0,
                "last_seen": 0.0,
                "advanced_at": now,
            }
            gauge = "replica_lag_" + re.sub(r"\W", "_", follower)
            self.metrics.gauge(
                gauge,
                lambda f=follower: float(
                    max(0, self._wal_entries() - int(self._replicas[f]["applied"]))
                ),
            )
        if float(applied) > info["applied"]:
            info["applied"] = float(applied)
            info["advanced_at"] = now
        info["last_seen"] = now

    async def apply_replicated(self, record: WalRecord) -> int:
        """Apply one fetched primary record (called by the follower link).

        Beyond the host's WAL-level gap/epoch refusal this maintains the
        server-side exactly-once dedup map, so a client batch resent
        across a failover resumes on the promoted follower exactly where
        the old primary's replicated records left it.
        """
        if self.role != "follower":
            raise ReadOnly("only a follower applies replicated records")
        if self._faults is not None:
            action = self._faults.hit("replica.apply", seq=record.seq)
            if action is not None and action.kind == "crash":
                from ..faults.plan import InjectedCrash

                self._crash()
                raise InjectedCrash(
                    "replica.apply",
                    action.kind,
                    f"crashed applying replicated seq {record.seq}",
                )
        seq = await self.host.apply_replicated(record)
        self.epoch = max(self.epoch, record.epoch)
        self.host.epoch = self.epoch
        if record.key is not None:
            entry = self._dedup.get(record.key)
            if entry is None:
                entry = self._dedup[record.key] = _BatchEntry()
                self._trim_dedup()
            else:
                self._dedup.move_to_end(record.key)
            entry.done += 1
            entry.last_seq = seq
        return seq

    # ------------------------------------------------------------------
    # Protocol plumbing
    # ------------------------------------------------------------------
    def _label(self, v: int) -> Union[str, int]:
        return str(self.names[v]) if self.names is not None else v

    def _labels(self, nodes: Sequence[int]) -> List[Union[str, int]]:
        return [self._label(v) for v in nodes]

    def _resolve_node(self, raw: object) -> int:
        """Map a protocol node reference (label or dense id) to a node id."""
        if self.names is not None:
            v = self._label_to_id.get(str(raw))
            if v is not None:
                return v
        if isinstance(raw, int) or (isinstance(raw, str) and raw.lstrip("-").isdigit()):
            v = int(raw)
            if self.graph.has_node(v):
                return v
        raise ValueError(f"unknown node {raw!r}")

    def _resolve_activation(self, item: Sequence[object]) -> Activation:
        if len(item) != 3:
            raise ValueError(f"activation must be [u, v, t], got {item!r}")
        u = self._resolve_node(item[0])
        v = self._resolve_node(item[1])
        if u == v:
            raise ValueError(f"self-activation on node {item[0]!r}")
        u, v = edge_key(u, v)
        if not self.graph.has_edge(u, v):
            raise ValueError(f"({item[0]!r}, {item[1]!r}) is not a relation edge")
        t = self.host.clamp_time(float(item[2]))
        return Activation(u, v, t)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._conns.add(writer)
        try:
            if self._faults is not None:
                action = self._faults.hit("server.accept")
                if action is not None and action.kind == "reset":
                    writer.transport.abort()
                    return
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                if self._faults is not None:
                    action = self._faults.hit("server.request")
                    if action is not None:
                        if action.kind == "reset":
                            writer.transport.abort()
                            return
                        if action.kind == "delay":
                            await asyncio.sleep(action.seconds())
                response = await self._handle_request(line)
                if response is None:
                    # Injected link drop or crash: sever, never answer.
                    writer.transport.abort()
                    return
                writer.write(json.dumps(response).encode() + b"\n")
                if not await self._drain(writer):
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):  # anclint: disable=service-exception-discipline — peer went away mid-conversation; no one is left to answer, so closing our side (the finally below) is the handling
            pass
        finally:
            self._conns.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # anclint: disable=service-exception-discipline — the close handshake racing the peer's reset is how an already-dead connection finishes; nothing to map
                pass

    async def _drain(self, writer: asyncio.StreamWriter) -> bool:
        """Flush one response, evicting a reader that will not take it.

        A client that stops reading (the stalled-consumer failure mode)
        would otherwise pin this handler — and its buffered responses —
        forever.  ``write_timeout`` bounds the wait; on expiry the
        connection is aborted and counted (``slow_reader_evictions``),
        and the server flags itself degraded.  Returns False when the
        connection was evicted.
        """
        timeout = self.config.write_timeout
        stalled = 0.0
        if self._faults is not None:
            action = self._faults.hit("server.send")
            if action is not None and action.kind == "stall":
                # Deterministic stand-in for "drain never completes":
                # hold the handler like a full socket buffer would.
                stalled = action.seconds()
        try:
            if stalled > 0.0:
                await asyncio.wait_for(asyncio.sleep(stalled), timeout or None)
            await asyncio.wait_for(writer.drain(), timeout or None)
        except asyncio.TimeoutError:
            self._c_evictions.inc()
            self._note_degraded()
            log.warning("evicting slow reader (write stalled > %.1fs)", timeout)
            writer.transport.abort()
            return False
        return True

    def _is_injected_crash(self, exc: BaseException) -> bool:
        if self._faults is None:
            return False
        from ..faults.plan import InjectedCrash

        return isinstance(exc, InjectedCrash)

    async def _handle_request(self, raw: bytes) -> Optional[Dict[str, object]]:
        """Answer one request; ``None`` means "sever the connection".

        Every envelope is stamped with this node's ``epoch`` and ``role``
        so clients can reject answers from a deposed primary (the
        stale-read half of fencing; docs/replication.md).
        """
        request_id: object = None
        try:
            request = json.loads(raw)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            request_id = request.get("id")
            op = request.get("op")
            handler = self._OPS.get(op)
            if handler is None:
                raise UnknownOp(f"unknown op {op!r}")
            # Bind the request's trace context (when the client sent one)
            # around the whole dispatch: a sampled request records one
            # ``server.<op>`` span parented to the caller's span, and any
            # request this handler makes downstream inherits the context.
            ctx = TraceContext.from_wire(request.get("trace"))
            with self.tracer.wire_span(f"server.{op}", ctx, op=str(op)):
                response = await handler(self, request)
            response.setdefault("ok", True)
        except ConnectionResetError:  # anclint: disable=service-exception-discipline — the injected replication-link drop: the contract is *no* answer, so the connection is severed instead of mapped
            return None
        except Exception as exc:  # protocol boundary: map to a typed envelope
            if self._is_injected_crash(exc):
                # Simulated kill -9 escaping a handler: the process is
                # gone; nobody is left to send a response.
                self._crash()
                return None
            if isinstance(exc, Overloaded):
                self._note_degraded()
            response = fault_response(exc)
        response["epoch"] = self.epoch
        response["role"] = self.role
        if self.config.shard_id is not None:
            response["shard"] = self.config.shard_id
        if request_id is not None:
            response["id"] = request_id
        return response

    # ------------------------------------------------------------------
    # Op handlers
    # ------------------------------------------------------------------
    async def _op_ping(self, request: Dict) -> Dict[str, object]:
        return {"t": self.host.state.t, "applied": self.host.applied}

    async def _op_ingest(self, request: Dict) -> Dict[str, object]:
        self._require_writable()
        act = self._resolve_activation(
            [request.get("u"), request.get("v"), request.get("t", self.host.state.t)]
        )
        seq = await self.host.ingest(act)
        return {"seq": seq, "t": act.t}

    async def _op_ingest_batch(self, request: Dict) -> Dict[str, object]:
        self._require_writable()
        items = request.get("items")
        if not isinstance(items, list):
            raise ValueError("ingest_batch needs a list 'items' of [u, v, t]")
        key = request.get("key")
        if isinstance(key, str) and (not key or any(ch.isspace() for ch in key)):
            # Keys are persisted inside space-delimited WAL records.
            raise ValueError(
                "ingest_batch key must be non-empty and whitespace-free"
            )
        if self._faults is not None:
            action = self._faults.hit("server.ingest_batch", key=key)
            if action is not None:
                if action.kind == "delay":
                    await asyncio.sleep(action.seconds())
                elif action.kind == "duplicate" and isinstance(key, str):
                    # Network-level duplication: the same request arrives
                    # twice; the second pass must dedup against the first.
                    await self._ingest_batch_keyed(key, items)
                    return await self._ingest_batch_keyed(key, items)
        if not isinstance(key, str):
            # Legacy un-keyed path: at-most-once, no resend safety.
            seq = -1
            for item in items:
                act = self._resolve_activation(item)
                seq = await self.host.ingest(act)
            return {"accepted": len(items), "seq": seq}
        return await self._ingest_batch_keyed(key, items)

    async def _ingest_batch_keyed(
        self, key: str, items: List[object]
    ) -> Dict[str, object]:
        """Idempotent ingest: at-least-once delivery, exactly-once apply.

        The client keys each batch by its own sequence number and resends
        the *same* key on retry.  Completed keys replay their cached
        response; an in-flight duplicate awaits the original; a key whose
        previous attempt failed mid-batch resumes from the first
        un-ingested item (see :class:`_BatchEntry`).
        """
        entry = self._dedup.get(key)
        if entry is None:
            entry = self._dedup[key] = _BatchEntry()
            self._trim_dedup()
        else:
            self._dedup.move_to_end(key)
        future = entry.future
        if future is not None:
            if not future.done():
                self._c_dedup.inc()
                result = await future
                return {**result, "deduped": True}
            if not future.cancelled() and future.exception() is None:
                self._c_dedup.inc()
                return {**future.result(), "deduped": True}
            # The previous attempt failed partway; fall through and resume.
        if entry.done:
            # Resuming a key whose prefix is already applied — by this
            # node's own failed attempt, or by records replicated from a
            # deposed primary before a failover. Either way the resend
            # is being absorbed by the dedup map, not re-ingested.
            self._c_dedup.inc()
        entry.future = asyncio.get_running_loop().create_future()
        try:
            while entry.done < len(items):
                act = self._resolve_activation(items[entry.done])  # type: ignore[arg-type]
                entry.last_seq = await self.host.ingest(act, key=key)
                entry.done += 1
            response: Dict[str, object] = {
                "accepted": len(items),
                "seq": entry.last_seq,
            }
        except BaseException as exc:
            if not entry.future.done():
                entry.future.set_exception(exc)
                entry.future.exception()  # mark retrieved; retries re-raise via `raise`
            raise
        entry.future.set_result(response)
        return response

    def _trim_dedup(self) -> None:
        """Drop the oldest *settled* dedup keys past the capacity bound."""
        capacity = max(1, self.config.dedup_capacity)
        for key in list(self._dedup):
            if len(self._dedup) <= capacity:
                break
            entry = self._dedup[key]
            if entry.future is None or entry.future.done():
                del self._dedup[key]

    async def _op_clusters(self, request: Dict) -> Dict[str, object]:
        self._require_queryable()
        self._check_read_bound(request)
        level, clusters = await self.host.clusters(request.get("level"))
        min_size = int(request.get("min_size", 1))
        state = self.host.state
        return {
            "level": level,
            "num_levels": state.num_levels,
            "t": state.t,
            "applied": state.activations,
            "clusters": [
                self._labels(c) for c in clusters if len(c) >= min_size
            ],
        }

    async def _op_local(self, request: Dict) -> Dict[str, object]:
        self._require_queryable()
        self._check_read_bound(request)
        node = self._resolve_node(request.get("node"))
        level, cluster = await self.host.cluster_of(node, request.get("level"))
        state = self.host.state
        return {
            "level": level,
            "t": state.t,
            "applied": state.activations,
            "cluster": self._labels(cluster),
        }

    async def _op_zoom_in(self, request: Dict) -> Dict[str, object]:
        return {"level": self.host.zoom_in(int(request.get("level", 0)))}

    async def _op_zoom_out(self, request: Dict) -> Dict[str, object]:
        return {"level": self.host.zoom_out(int(request.get("level", 0)))}

    async def _op_watch(self, request: Dict) -> Dict[str, object]:
        self._require_queryable()
        self._check_read_bound(request)
        node = self._resolve_node(request.get("node"))
        cluster = await self.host.watch(node, request.get("level"))
        return {"cluster": self._labels(cluster)}

    async def _op_unwatch(self, request: Dict) -> Dict[str, object]:
        node = self._resolve_node(request.get("node"))
        await self.host.unwatch(node, request.get("level"))
        return {}

    async def _op_changes(self, request: Dict) -> Dict[str, object]:
        events = self.host.drain_watch_events()
        return {
            "changes": [
                {
                    "node": self._label(e.node),
                    "level": e.level,
                    "t": e.t,
                    "joined": self._labels(sorted(e.joined)),
                    "left": self._labels(sorted(e.left)),
                }
                for e in events
            ]
        }

    async def _op_sync(self, request: Dict) -> Dict[str, object]:
        state = await self.host.wait_applied()
        return {"applied": state.activations, "t": state.t}

    async def _op_stats(self, request: Dict) -> Dict[str, object]:
        stats = self.host.stats()
        stats["degraded"] = self.degraded
        stats["role"] = self.role
        stats["epoch"] = self.epoch
        stats["fenced_by"] = self.fenced_by
        stats["diverged"] = self.diverged
        stats["wal_entries"] = self._wal_entries()
        stats["replicas"] = len(self._replicas)
        if self.config.shard_id is not None:
            stats["shard"] = self.config.shard_id
        return {"stats": stats}

    async def _op_metrics(self, request: Dict) -> Dict[str, object]:
        # Read-only by default: a polling client must not reset anyone
        # else's rate window (notably the operator log line's).  Clients
        # that want delta rates pass their own ``rate_key``.
        rate_key = request.get("rate_key")
        return {
            "metrics": self.metrics.snapshot(
                rate_key=str(rate_key) if rate_key is not None else None
            )
        }

    async def _op_metrics_text(self, request: Dict) -> Dict[str, object]:
        namespace = str(request.get("namespace", "anc"))
        return {"text": render_prometheus(self.metrics, namespace=namespace)}

    async def _op_trace(self, request: Dict) -> Dict[str, object]:
        tracer = self.tracer
        action = str(request.get("action", "status"))
        if action == "start":
            sample = request.get("sample")
            if sample is not None:
                tracer.set_sample(float(sample))
            tracer.enable()
        elif action == "stop":
            tracer.disable()
        elif action == "clear":
            tracer.drain()
        elif action == "dump":
            spans = (
                tracer.drain() if bool(request.get("drain", True)) else tracer.spans()
            )
            return {"trace": chrome_trace(spans), **tracer.status()}
        elif action != "status":
            raise ValueError(
                f"unknown trace action {action!r}; expected "
                f"start/stop/status/dump/clear"
            )
        return dict(tracer.status())

    async def _op_trace_fetch(self, request: Dict) -> Dict[str, object]:
        """This process's span buffer in wire form (fleet trace assembly).

        The router scatters this op to every worker and merges the
        answers — plus its own buffer — into one multi-process Chrome
        trace (:func:`repro.obs.export.fleet_chrome_trace`).  Span start
        times are absolute unix seconds (the tracer's ``epoch_unix``
        anchor), so buffers from different processes land on one shared
        timeline without clock negotiation.
        """
        spans = (
            self.tracer.drain()
            if bool(request.get("drain", False))
            else self.tracer.spans()
        )
        name = (
            f"shard-{self.config.shard_id}"
            if self.config.shard_id is not None
            else self.role
        )
        return {
            "pid": os.getpid(),
            "process": name,
            "spans": span_dicts(spans, epoch_unix=self.tracer.epoch_unix),
        }

    async def _op_profile(self, request: Dict) -> Dict[str, object]:
        """Drive the sampling profiler: start / stop / status / report."""
        action = str(request.get("action", "status"))
        profiler = self.profiler
        if action == "start":
            hz = request.get("hz")
            if hz is not None and not profiler.running:
                # A fresh profiler: a new cadence must not dilute the
                # previous run's sample counts.
                profiler = SamplingProfiler(float(hz), tracer=self.tracer)
                self.profiler = profiler
            profiler.start()
        elif action == "stop":
            profiler.stop()
        elif action == "report":
            return {"profile": profiler.report(), **profiler.status()}
        elif action != "status":
            raise ValueError(
                f"unknown profile action {action!r}; expected "
                f"start/stop/status/report"
            )
        return dict(profiler.status())

    async def _op_snapshot(self, request: Dict) -> Dict[str, object]:
        await self.host.wait_applied()
        path = await self.host.checkpoint()
        if path is None:
            raise ValueError("server has no data_dir; checkpoints are disabled")
        return {"path": path, "applied": self.host.applied}

    async def _op_shutdown(self, request: Dict) -> Dict[str, object]:
        self.request_stop()
        return {"stopping": True}

    # -- replication ops (docs/replication.md) -------------------------
    async def _op_wal_fetch(self, request: Dict) -> Dict[str, object]:
        """Serve committed WAL records to a follower (pull replication).

        A *fenced* node still answers — a behind follower may legally
        finish catching up from a deposed primary's committed prefix.
        """
        from_seq = int(request.get("from_seq", 0))
        if from_seq < 0:
            raise ValueError(f"from_seq must be >= 0, got {from_seq}")
        limit = max(1, min(int(request.get("max", 512)), 4096))
        follower = request.get("follower")
        if isinstance(follower, str) and follower:
            self._note_replica(follower, from_seq)
        records = self._wal_slice(from_seq, limit)
        if self._faults is not None:
            action = self._faults.hit("replica.fetch", from_seq=from_seq)
            if action is not None:
                if action.kind == "stall":
                    await asyncio.sleep(action.seconds())
                elif action.kind == "drop":
                    raise ConnectionResetError("injected replication-link drop")
                elif action.kind == "reorder" and len(records) > 1:
                    records = records[::-1]
        self._c_fetch.inc(len(records))
        return {
            "records": [
                [r.seq, r.act.u, r.act.v, r.act.t, r.epoch, r.key]
                for r in records
            ],
            "entries": self._wal_entries(),
        }

    async def _op_replica_ack(self, request: Dict) -> Dict[str, object]:
        follower = request.get("follower")
        if not isinstance(follower, str) or not follower:
            raise ValueError("replica_ack needs a non-empty 'follower' id")
        applied = int(request.get("applied", 0))
        self._note_replica(follower, applied)
        return {"entries": self._wal_entries()}

    async def _op_replicas(self, request: Dict) -> Dict[str, object]:
        now = time.monotonic()
        entries = self._wal_entries()
        return {
            "entries": entries,
            "replicas": {
                follower: {
                    "applied": int(info["applied"]),
                    "lag": max(0, entries - int(info["applied"])),
                    "age": round(now - info["last_seen"], 3),
                    # Seconds since the applied watermark last advanced —
                    # the operator-facing staleness clock (a follower can
                    # heartbeat forever while applying nothing).
                    "apply_age": round(now - info["advanced_at"], 3),
                }
                for follower, info in sorted(self._replicas.items())
            },
        }

    async def _op_signature(self, request: Dict) -> Dict[str, object]:
        return dict(await self.host.signature())

    async def _op_fence(self, request: Dict) -> Dict[str, object]:
        """Depose this node: refuse writes below ``epoch`` from now on.

        The fence reaches the WAL itself, so even a handler already past
        the role check cannot complete a write (the last-moment refusal
        the split-brain chaos scenario exercises).
        """
        epoch = int(request.get("epoch", self.epoch + 1))
        if epoch <= self.epoch:
            raise ValueError(
                f"fence epoch {epoch} must exceed this node's epoch "
                f"{self.epoch}"
            )
        self.fenced_by = max(self.fenced_by, epoch)
        if self.host.wal is not None:
            self.host.wal.fence(epoch)
        log.warning("fenced at epoch %d (own epoch %d)", self.fenced_by, self.epoch)
        return {"fenced_by": self.fenced_by}

    async def _op_promote(self, request: Dict) -> Dict[str, object]:
        """Make this node the primary under a fresh (higher) epoch."""
        if self.diverged is not None:
            raise Diverged(
                f"refusing to promote a diverged follower: {self.diverged}"
            )
        requested = request.get("epoch")
        new_epoch = max(
            self.epoch + 1,
            int(requested) if requested is not None else 0,
            self.fenced_by + 1 if self.fenced_by > self.epoch else 0,
        )
        link = self.replication
        if link is not None:
            link.stop()  # type: ignore[attr-defined]
            self.replication = None
        self.role = "primary"
        self.epoch = new_epoch
        self.host.epoch = new_epoch
        if self.host.wal is not None:
            self.host.wal.epoch = new_epoch
        log.info("promoted to primary at epoch %d", new_epoch)
        return {"promoted": True}

    _OPS = {
        "ping": _op_ping,
        "ingest": _op_ingest,
        "ingest_batch": _op_ingest_batch,
        "clusters": _op_clusters,
        "local": _op_local,
        "zoom_in": _op_zoom_in,
        "zoom_out": _op_zoom_out,
        "watch": _op_watch,
        "unwatch": _op_unwatch,
        "changes": _op_changes,
        "sync": _op_sync,
        "stats": _op_stats,
        "metrics": _op_metrics,
        "metrics_text": _op_metrics_text,
        "trace": _op_trace,
        "trace_fetch": _op_trace_fetch,
        "profile": _op_profile,
        "snapshot": _op_snapshot,
        "shutdown": _op_shutdown,
        "wal_fetch": _op_wal_fetch,
        "replica_ack": _op_replica_ack,
        "replicas": _op_replicas,
        "signature": _op_signature,
        "fence": _op_fence,
        "promote": _op_promote,
    }
