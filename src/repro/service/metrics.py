"""Service observability: counters, gauges and sliding-window histograms.

Stdlib-only on purpose (the whole service layer adds no dependencies).
Every instrument is cheap to update on the hot path — a counter is one
float add, a histogram observation is one deque append — and the
registry renders everything into a plain JSON-able dict on demand, which
the server exposes through the ``metrics`` op and a periodic log line.

Histograms keep a bounded window of recent observations (default 8192)
rather than full reservoir sampling: percentiles answer "what is query
latency *now*", which is what an operator watching a live service wants,
and the bound keeps memory flat regardless of uptime.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing count (events, activations, bytes...)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A point-in-time value, either set directly or read from a callable."""

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        self._value = value

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Histogram:
    """Sliding-window distribution with percentile queries.

    Tracks the lifetime count/sum exactly; percentiles are computed over
    the most recent ``window`` observations.
    """

    __slots__ = ("name", "_window", "_count", "_sum", "_lock")

    def __init__(self, name: str, *, window: int = 8192) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.name = name
        self._window: Deque[float] = deque(maxlen=window)
        self._count = 0
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._window.append(value)
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100) of the recent window (0.0 when empty).

        Nearest-rank on the sorted window — exact for the data it holds,
        no interpolation surprises in the tails.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            data = sorted(self._window)
        if not data:
            return 0.0
        rank = max(0, min(len(data) - 1, int(round(p / 100.0 * (len(data) - 1)))))
        return data[rank]

    def summary(self) -> Dict[str, float]:
        """count / mean / p50 / p90 / p99 / max of the current window."""
        with self._lock:
            data = sorted(self._window)
        out = {"count": float(self._count), "mean": self.mean}
        if data:
            last = len(data) - 1
            out["p50"] = data[int(round(0.50 * last))]
            out["p90"] = data[int(round(0.90 * last))]
            out["p99"] = data[int(round(0.99 * last))]
            out["max"] = data[-1]
        else:
            out.update({"p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0})
        return out


class MetricsRegistry:
    """Named instruments plus snapshot/log-line rendering.

    ``snapshot()`` additionally derives a ``*_per_s`` rate for every
    counter from the delta since the previous snapshot, so the periodic
    metrics log line shows current rates, not lifetime averages.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._started = time.monotonic()
        self._last_snapshot_at = self._started
        self._last_counter_values: Dict[str, float] = {}

    # -- instrument factories (idempotent by name) -----------------------
    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name, fn)
        elif fn is not None:
            gauge._fn = fn
        return gauge

    def histogram(self, name: str, *, window: int = 8192) -> Histogram:
        return self._histograms.setdefault(name, Histogram(name, window=window))

    # -- rendering --------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """One JSON-able dict of everything, with per-counter rates."""
        now = time.monotonic()
        elapsed = max(1e-9, now - self._last_snapshot_at)
        doc: Dict[str, object] = {"uptime_s": now - self._started}
        counters: Dict[str, float] = {}
        rates: Dict[str, float] = {}
        for name, counter in sorted(self._counters.items()):
            value = counter.value
            counters[name] = value
            rates[name + "_per_s"] = (
                value - self._last_counter_values.get(name, 0.0)
            ) / elapsed
            self._last_counter_values[name] = value
        self._last_snapshot_at = now
        doc["counters"] = counters
        doc["rates"] = rates
        doc["gauges"] = {
            name: gauge.value for name, gauge in sorted(self._gauges.items())
        }
        doc["histograms"] = {
            name: hist.summary() for name, hist in sorted(self._histograms.items())
        }
        return doc

    def log_line(self) -> str:
        """A compact one-line rendering for the periodic operator log."""
        doc = self.snapshot()
        parts: List[str] = [f"up={doc['uptime_s']:.0f}s"]
        for name, rate in doc["rates"].items():  # type: ignore[union-attr]
            parts.append(f"{name}={rate:.1f}")
        for name, value in doc["gauges"].items():  # type: ignore[union-attr]
            parts.append(f"{name}={value:g}")
        for name, summary in doc["histograms"].items():  # type: ignore[union-attr]
            parts.append(
                f"{name}[p50={summary['p50'] * 1e3:.1f}ms "
                f"p99={summary['p99'] * 1e3:.1f}ms]"
            )
        return " ".join(parts)
