"""Compatibility re-export: instruments live in :mod:`repro.obs.instruments`.

The counters/gauges/histograms the service grew in its first iteration
turned out to be wanted by every layer (engines, CLI, bench harness), so
they were promoted into the library-wide :mod:`repro.obs` package.  This
module keeps the original import path working for existing callers;
new code should import from ``repro.obs`` directly
(see ``docs/observability.md``).
"""

from __future__ import annotations

from ..obs.instruments import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]
