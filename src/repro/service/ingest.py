"""Activation intake: a bounded queue with micro-batching.

The online engines pay a small fixed cost per *batch* (the ANCOR
reinforcement hook, snapshot publication in the host), so the service
does not hand activations to the writer one by one.  Instead the intake
queue is drained into micro-batches that flush on whichever comes first:

* **batch size** — ``batch_size`` activations are waiting, or
* **max latency** — ``max_latency`` seconds passed since the first
  activation of the forming batch arrived.

Backpressure is the queue bound itself: :meth:`MicroBatcher.submit`
awaits queue space, so a producer that outruns the writer is slowed to
the writer's pace instead of growing an unbounded backlog — the server's
ingest handler simply delays its acknowledgement, which TCP propagates
to the client.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, List, Optional

from ..core.activation import Activation

if TYPE_CHECKING:  # hook-only dependency (see repro.faults)
    from ..faults.plan import FaultPlan

__all__ = ["MicroBatcher"]

_SENTINEL = object()


class MicroBatcher:
    """Bounded activation queue that yields micro-batches.

    Parameters
    ----------
    batch_size:
        Flush as soon as this many activations are in the forming batch.
    max_latency:
        Flush at most this many seconds after the first activation of the
        forming batch arrived (bounds time-to-visibility for queries).
    max_pending:
        Queue bound; :meth:`submit` awaits space beyond this (backpressure).
    """

    def __init__(
        self,
        *,
        batch_size: int = 64,
        max_latency: float = 0.05,
        max_pending: int = 4096,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if max_latency <= 0:
            raise ValueError(f"max_latency must be positive, got {max_latency}")
        if max_pending < batch_size:
            raise ValueError(
                f"max_pending ({max_pending}) must be >= batch_size ({batch_size})"
            )
        self.batch_size = batch_size
        self.max_latency = max_latency
        #: Fault-injection hook (:mod:`repro.faults`); ``None`` = disarmed.
        self.faults: "Optional[FaultPlan]" = None
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=max_pending)
        self._closed = False
        self._drained = False
        #: Lifetime count of accepted activations.
        self.submitted = 0
        #: Lifetime count of batches handed out.
        self.batches = 0

    # -- producer side -----------------------------------------------------
    async def submit(self, act: Activation) -> None:
        """Enqueue one activation, awaiting space when the queue is full."""
        if self._closed:
            raise RuntimeError("batcher is closed")
        await self._queue.put(act)
        self.submitted += 1

    def try_submit(self, act: Activation) -> bool:
        """Non-blocking enqueue; returns False when the queue is full."""
        if self._closed:
            raise RuntimeError("batcher is closed")
        try:
            self._queue.put_nowait(act)
        except asyncio.QueueFull:  # anclint: disable=service-exception-discipline — backpressure is this method's return value, not a failure; callers branch on False
            return False
        self.submitted += 1
        return True

    async def close(self) -> None:
        """Stop accepting; the consumer drains what is queued, then ends."""
        if not self._closed:
            self._closed = True
            await self._queue.put(_SENTINEL)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def depth(self) -> int:
        """Activations currently queued (the backpressure signal)."""
        return self._queue.qsize()

    # -- consumer side -----------------------------------------------------
    async def next_batch(self) -> Optional[List[Activation]]:
        """Await the next micro-batch; ``None`` once closed and drained.

        Blocks until at least one activation arrives, then keeps
        collecting until ``batch_size`` is reached or ``max_latency``
        elapses (measured from the first collected activation).
        """
        if self._drained:
            return None
        first = await self._queue.get()
        if first is _SENTINEL:
            self._drained = True
            return None
        batch: List[Activation] = [first]
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.max_latency
        while len(batch) < self.batch_size:
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            try:
                # asyncio.timeout (not wait_for): wait_for wraps the get in
                # an inner task, and on 3.11 an *external* cancel that races
                # an available item is swallowed (wait_for returns the item
                # and the CancelledError is lost) — the writer task would
                # then out-live the server's crash-path ``cancel()`` forever.
                # timeout() keeps the get in this task, so cancellation
                # always propagates and no dequeued item can be stranded.
                async with asyncio.timeout(remaining):
                    item = await self._queue.get()
            except TimeoutError:
                break
            if item is _SENTINEL:
                self._drained = True
                break
            batch.append(item)
        self.batches += 1
        if self.faults is not None:
            action = self.faults.hit("ingest.flush", size=len(batch))
            if action is not None and action.kind == "delay":
                # A stalled writer: the queue backs up behind this await,
                # which is what drives the shed watermark in tests.
                await asyncio.sleep(action.seconds())
        return batch
