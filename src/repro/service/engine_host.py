"""Single-writer / multi-reader hosting of one ANC engine.

The engines are not thread-safe: an activation mutates the decay clock,
the similarity stores and the pyramid partitions in place.  The host
therefore serializes *all* engine mutation onto one dedicated writer
thread and never lets readers touch the live engine at all.  Instead,
after every applied micro-batch the writer materializes a
:class:`PublishedState` — cluster memberships for the tracked
granularity levels, engine stats, watcher events — and publishes it by
a single attribute assignment.  Queries (``clusters``, ``local``,
``zoom``, ``stats``) read whichever state object they see; they never
block the writer and the writer never blocks them.

A query for a level that is not yet materialized registers the level and
awaits the next publication (one micro-batch flush away, or immediate
when the engine is idle); from then on the level is kept fresh in every
snapshot until :meth:`EngineHost.untrack_level` drops it.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Tuple, TypeVar

from ..core.activation import Activation
from ..core.anc import ANCEngineBase
from ..monitor import ClusterChange, ClusterWatcher
from .errors import Fenced, Overloaded
from .ingest import MicroBatcher
from .metrics import MetricsRegistry
from .snapshots import (
    CheckpointStore,
    WalCorruptError,
    WalRecord,
    WriteAheadLog,
    apply_activations,
    signature_digest,
)

__all__ = ["EngineHost", "PublishedState"]

T = TypeVar("T")

Clustering = List[List[int]]


class PublishedState:
    """One immutable, consistent view of the engine.

    Built entirely on the writer thread *between* mutations, then
    published; readers may hold a reference for as long as they like.
    """

    __slots__ = (
        "seq",
        "t",
        "activations",
        "num_levels",
        "sqrt_level",
        "clusters_by_level",
        "membership_by_level",
        "stats",
    )

    def __init__(
        self,
        *,
        seq: int,
        t: float,
        activations: int,
        num_levels: int,
        sqrt_level: int,
        clusters_by_level: Dict[int, Clustering],
        membership_by_level: Dict[int, List[int]],
        stats: Dict[str, object],
    ) -> None:
        self.seq = seq
        self.t = t
        self.activations = activations
        self.num_levels = num_levels
        self.sqrt_level = sqrt_level
        self.clusters_by_level = clusters_by_level
        self.membership_by_level = membership_by_level
        self.stats = stats

    def clusters(self, level: int) -> Clustering:
        """All clusters at ``level`` — as copies.

        The snapshot is shared by every reader concurrently; handing out
        the stored lists would let one caller's mutation corrupt what
        everyone else (and later queries against the same state) sees.
        """
        return [list(c) for c in self.clusters_by_level[level]]

    def cluster_of(self, node: int, level: int) -> List[int]:
        """The node's cluster (a copy), resolved from the membership."""
        cluster_id = self.membership_by_level[level][node]
        return list(self.clusters_by_level[level][cluster_id])


class EngineHost:
    """Owns the engine, the writer thread and the published state.

    Parameters
    ----------
    engine:
        Any :class:`~repro.core.anc.ANCEngineBase`; the host becomes its
        sole mutator.
    batcher:
        Intake queue; the host's run loop drains it.
    wal:
        Optional write-ahead log; when given, every activation is
        appended (and flushed) before it is enqueued, making
        acknowledged ingest durable.
    checkpoints / checkpoint_every:
        Optional checkpoint store and the activation interval between
        automatic checkpoints (taken on the writer thread at a batch
        boundary, so they are always consistent).
    metrics:
        Optional registry; the host records ingest/apply/flush
        instruments into it.
    shed_watermark:
        Queue depth at which :meth:`ingest` *sheds* instead of awaiting
        queue space: the caller gets a typed
        :class:`~repro.service.errors.Overloaded` (wire code
        ``RETRY_AFTER``) immediately.  0 (the default) keeps the
        pre-existing behavior — pure backpressure, acknowledgements
        delayed but never refused.
    """

    def __init__(
        self,
        engine: ANCEngineBase,
        batcher: MicroBatcher,
        *,
        wal: Optional[WriteAheadLog] = None,
        checkpoints: Optional[CheckpointStore] = None,
        checkpoint_every: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        shed_watermark: int = 0,
    ) -> None:
        self.engine = engine
        self.batcher = batcher
        self.wal = wal
        self.checkpoints = checkpoints
        self.checkpoint_every = checkpoint_every
        self.shed_watermark = shed_watermark
        #: Primary epoch this host serves under; stamped into checkpoints
        #: and (via the WAL) into records.  The server keeps it in sync.
        self.epoch = 0
        self.metrics = metrics or MetricsRegistry()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="anc-writer"
        )
        # Replaced wholesale (never mutated) so the writer thread can take
        # a consistent snapshot with a single attribute read.
        self._tracked_levels: frozenset = frozenset({engine.queries.sqrt_n_level()})
        self._seq = 0
        self._watcher: Optional[ClusterWatcher] = None
        self._watch_events: List[ClusterChange] = []
        self._ingested = engine.activations_processed
        self._last_t = engine.now
        self._applied_waiters: List[Tuple[int, asyncio.Future]] = []
        self._publish_waiters: List[asyncio.Future] = []
        self._since_checkpoint = 0
        self._last_checkpoint_at = time.monotonic()
        self._closed = False
        # Materialize the initial state synchronously: queries are
        # answerable before the first activation ever arrives.
        self.state: PublishedState = self._materialize()

        m = self.metrics
        self._c_shed = m.counter("ingest_shed")
        self._c_ingested = m.counter("activations_ingested")
        self._c_applied = m.counter("activations_applied")
        self._c_batches = m.counter("batches_applied")
        self._c_queries = m.counter("queries_served")
        self._h_flush = m.histogram("batch_flush_seconds")
        self._h_query = m.histogram("query_seconds")
        m.gauge("queue_depth", lambda: float(self.batcher.depth))
        m.gauge("stream_time", lambda: float(self.state.t))
        m.gauge(
            "snapshot_age_s",
            lambda: time.monotonic() - self._last_checkpoint_at,
        )

    # ------------------------------------------------------------------
    # Ingest path (event loop side)
    # ------------------------------------------------------------------
    @property
    def ingested(self) -> int:
        """Activations accepted so far (including not-yet-applied ones)."""
        return self._ingested

    @property
    def applied(self) -> int:
        """Activations the engine has absorbed (from the published state)."""
        return self.state.activations

    def clamp_time(self, t: float) -> float:
        """Monotonize a client timestamp against the stream clock."""
        return t if t > self._last_t else self._last_t

    async def ingest(self, act: Activation, *, key: Optional[str] = None) -> int:
        """Log + enqueue one activation; returns its sequence number.

        The caller must pass a clamped (monotonic) timestamp — see
        :meth:`clamp_time`.  Awaiting the bounded queue is the
        backpressure: acknowledgements are delayed, not dropped.
        ``key`` is the idempotency key of the keyed batch the activation
        belongs to (persisted in the WAL record; see
        :mod:`~repro.service.snapshots`).
        """
        if self._closed:
            raise RuntimeError("host is closed")
        if self.shed_watermark > 0 and self.batcher.depth >= self.shed_watermark:
            # Shed *before* the WAL append and the timestamp clamp: a
            # refused activation must leave no durable or clock trace,
            # or the client's retry would double-apply / non-monotonize.
            self._c_shed.inc()
            raise Overloaded(
                f"ingest queue at {self.batcher.depth} >= shed watermark "
                f"{self.shed_watermark}; retry later",
                retry_after=max(2 * self.batcher.max_latency, 0.05),
            )
        if act.t < self._last_t:
            raise ValueError(
                f"non-monotonic ingest: {act.t} < {self._last_t} "
                "(clamp_time first)"
            )
        self._last_t = act.t
        if self.wal is not None:
            self.wal.append(act, key=key)
        seq = self._ingested
        self._ingested += 1
        self._c_ingested.inc()
        await self.batcher.submit(act)
        return seq

    async def apply_replicated(self, record: WalRecord) -> int:
        """Apply one record shipped from a primary (the follower path).

        The record keeps the *primary's* seq/epoch/key, so the local WAL
        stays a byte-identical prefix of the primary's; gap and
        stale-epoch refusal live in
        :meth:`~repro.service.snapshots.WriteAheadLog.append_record` (or
        are checked here for a WAL-less host).  Returns the applied seq.
        """
        if self._closed:
            raise RuntimeError("host is closed")
        if self.wal is not None:
            self.wal.append_record(record)
        else:
            if record.seq != self._ingested:
                raise WalCorruptError(
                    f"replication gap: expected seq {self._ingested}, "
                    f"got {record.seq}"
                )
            if record.epoch < self.epoch:
                raise Fenced(
                    f"replicated record seq {record.seq} carries epoch "
                    f"{record.epoch} < {self.epoch}; refusing a deposed "
                    f"primary's write",
                    epoch=record.epoch,
                    fenced_by=self.epoch,
                )
        self.epoch = max(self.epoch, record.epoch)
        self._last_t = max(self._last_t, record.act.t)
        self._ingested = record.seq + 1
        self._c_ingested.inc()
        await self.batcher.submit(record.act)
        return record.seq

    # ------------------------------------------------------------------
    # Writer loop
    # ------------------------------------------------------------------
    async def run(self) -> None:
        """Drain the batcher until it closes; apply and publish each batch."""
        loop = asyncio.get_running_loop()
        while True:
            batch = await self.batcher.next_batch()
            if batch is None:
                break
            started = time.perf_counter()
            state, events = await loop.run_in_executor(
                self._executor, self._apply_and_materialize, batch
            )
            # Buffer watch events here, on the loop thread: extending from
            # the writer thread raced drain_watch_events' swap-and-clear.
            self._watch_events.extend(events)
            self._publish(state)
            self._h_flush.observe(time.perf_counter() - started)
            self._c_applied.inc(len(batch))
            self._c_batches.inc()
            self._since_checkpoint += len(batch)
            if (
                self.checkpoints is not None
                and self.checkpoint_every > 0
                and self._since_checkpoint >= self.checkpoint_every
            ):
                await self.checkpoint()

    def _apply_and_materialize(
        self, batch: List[Activation]
    ) -> Tuple[PublishedState, List[ClusterChange]]:
        """Writer thread: mutate the engine, then build the next state.

        The engine is always driven through
        :func:`~repro.service.snapshots.apply_activations` so batch-end
        hooks fire at data-derived timestamp boundaries — identically
        live and during crash recovery.  The watcher only *observes* the
        applied batch afterwards; its events are returned rather than
        buffered so ``_watch_events`` stays loop-thread-only.
        """
        apply_activations(self.engine, batch)
        events: List[ClusterChange] = []
        if self._watcher is not None:
            events = list(self._watcher.observe_applied(batch))
        return self._materialize(), events

    def _materialize(self) -> PublishedState:
        queries = self.engine.queries
        clusters_by_level: Dict[int, Clustering] = {}
        membership_by_level: Dict[int, List[int]] = {}
        n = self.engine.graph.n
        for level in sorted(self._tracked_levels):
            clusters = queries.clusters(level)
            membership = [0] * n
            for cid, cluster in enumerate(clusters):
                for v in cluster:
                    membership[v] = cid
            clusters_by_level[level] = clusters
            membership_by_level[level] = membership
        seq = self._seq
        self._seq += 1
        return PublishedState(
            seq=seq,
            t=self.engine.now,
            activations=self.engine.activations_processed,
            num_levels=queries.num_levels,
            sqrt_level=queries.sqrt_n_level(),
            clusters_by_level=clusters_by_level,
            membership_by_level=membership_by_level,
            stats=self.engine.stats(),
        )

    def _publish(self, state: PublishedState) -> None:
        self.state = state
        for future in self._publish_waiters:
            if not future.done():
                future.set_result(state)
        self._publish_waiters.clear()
        remaining: List[Tuple[int, asyncio.Future]] = []
        for target, future in self._applied_waiters:
            if state.activations >= target:
                if not future.done():
                    future.set_result(state)
            else:
                remaining.append((target, future))
        self._applied_waiters = remaining

    async def _run_on_writer(self, fn: Callable[..., T], *args: object) -> T:
        """Run ``fn`` on the writer thread (serialized with batches)."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, fn, *args)

    async def _republish(self) -> PublishedState:
        state = await self._run_on_writer(self._materialize)
        self._publish(state)
        return state

    # ------------------------------------------------------------------
    # Query path (never blocks the writer)
    # ------------------------------------------------------------------
    async def ensure_level(self, level: Optional[int]) -> int:
        """Resolve/clamp ``level`` and make sure it is materialized."""
        state = self.state
        if level is None:
            level = state.sqrt_level
        level = max(1, min(state.num_levels, int(level)))
        if level not in self.state.clusters_by_level:
            self._tracked_levels = self._tracked_levels | {level}
            await self._republish()
        return level

    async def clusters(self, level: Optional[int] = None) -> Tuple[int, Clustering]:
        """All clusters at ``level`` from the published state."""
        started = time.perf_counter()
        level = await self.ensure_level(level)
        result = self.state.clusters(level)
        self._observe_query(started)
        return level, result

    async def cluster_of(self, node: int, level: Optional[int] = None) -> Tuple[int, List[int]]:
        """The node's local cluster at ``level``."""
        started = time.perf_counter()
        if not self.engine.graph.has_node(node):
            raise ValueError(f"unknown node {node}")
        level = await self.ensure_level(level)
        result = self.state.cluster_of(node, level)
        self._observe_query(started)
        return level, result

    def zoom_in(self, level: int) -> int:
        return max(1, min(self.state.num_levels, level + 1))

    def zoom_out(self, level: int) -> int:
        return max(1, min(self.state.num_levels, level - 1))

    def untrack_level(self, level: int) -> None:
        """Stop refreshing ``level`` (the default level is always kept)."""
        if level != self.state.sqrt_level:
            self._tracked_levels = self._tracked_levels - {level}

    def stats(self) -> Dict[str, object]:
        """Engine stats of the published state plus host-level info."""
        doc = dict(self.state.stats)
        doc.update(
            ingested=self._ingested,
            applied=self.state.activations,
            queue_depth=self.batcher.depth,
            tracked_levels=sorted(self._tracked_levels),
            state_seq=self.state.seq,
        )
        return doc

    def _observe_query(self, started: float) -> None:
        self._c_queries.inc()
        self._h_query.observe(time.perf_counter() - started)

    # ------------------------------------------------------------------
    # Synchronization and watches
    # ------------------------------------------------------------------
    async def wait_applied(self, target: Optional[int] = None) -> PublishedState:
        """Await a published state covering ``target`` activations.

        Default target: everything ingested so far — i.e. "flush what I
        have sent".  Returns the state that satisfied the wait.
        """
        if target is None:
            target = self._ingested
        if self.state.activations >= target:
            return self.state
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._applied_waiters.append((target, future))
        return await future

    async def watch(self, node: int, level: Optional[int] = None) -> List[int]:
        """Register a watched node; returns its current cluster.

        Watches live on the writer thread's :class:`ClusterWatcher`; the
        emitted :class:`ClusterChange` events accumulate until drained
        with :meth:`drain_watch_events`.  Watches are in-memory only —
        they do not survive a restart (clients re-register).
        """
        level = await self.ensure_level(level)

        def register() -> List[int]:
            if self._watcher is None:
                self._watcher = ClusterWatcher(self.engine, levels=[level])
            elif level not in self._watcher.levels:
                raise ValueError(
                    f"watcher already bound to levels {self._watcher.levels}; "
                    f"cannot also watch level {level}"
                )
            return sorted(self._watcher.watch(node, level))

        return await self._run_on_writer(register)

    async def unwatch(self, node: int, level: Optional[int] = None) -> None:
        level = await self.ensure_level(level)

        def unregister() -> None:
            if self._watcher is not None:
                self._watcher.unwatch(node, level)

        await self._run_on_writer(unregister)

    def drain_watch_events(self) -> List[ClusterChange]:
        """Return and clear the accumulated watch events."""
        out = self._watch_events
        self._watch_events = []
        return out

    # ------------------------------------------------------------------
    # Checkpointing and shutdown
    # ------------------------------------------------------------------
    async def checkpoint(self) -> Optional[str]:
        """Write a consistent checkpoint now; returns its path.

        Runs on the writer thread, so it never overlaps a mutation.
        No-op (returns None) without a checkpoint store.
        """
        if self.checkpoints is None:
            return None
        checkpoints = self.checkpoints
        path = await self._run_on_writer(
            lambda: checkpoints.write_checkpoint(self.engine, epoch=self.epoch)
        )
        self._since_checkpoint = 0
        self._last_checkpoint_at = time.monotonic()
        return str(path)

    async def signature(self) -> Dict[str, object]:
        """Digest + applied count, computed quiescently on the writer thread.

        Running on the writer serializes the fingerprint with batch
        application, so it always captures a between-batches state — the
        precondition for the divergence auditor's primary/follower
        comparison (docs/replication.md).
        """
        def compute() -> Dict[str, object]:
            return {
                "digest": signature_digest(self.engine),
                "applied": self.engine.activations_processed,
            }

        return await self._run_on_writer(compute)

    async def close(self, run_task: Optional["asyncio.Task"] = None) -> None:
        """Stop ingest, drain the queue, final-checkpoint, shut down.

        Pass the :meth:`run` task so the drain completes before the
        final checkpoint is cut; without it, close() checkpoints
        whatever has been applied so far (still consistent — anything
        unapplied stays recoverable from the WAL).
        """
        if self._closed:
            return
        self._closed = True
        await self.batcher.close()
        if run_task is not None:
            await run_task
        if self.checkpoints is not None:
            await self.checkpoint()
        self._executor.shutdown(wait=True)
        for _, future in self._applied_waiters:
            if not future.done():
                future.cancel()
        self._applied_waiters.clear()

    async def abort(self) -> None:
        """Hard-stop (simulated ``kill -9``): no drain, no final checkpoint.

        The chaos harness uses this to model sudden process death on a
        live server: whatever the queue held is lost from memory and must
        come back from the WAL, exactly as a real crash would leave it.
        """
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=True)
        for _, future in self._applied_waiters:
            if not future.done():
                future.cancel()
        self._applied_waiters.clear()
