"""Typed protocol errors and the single exception→response mapper.

Every failed request is answered with::

    {"ok": false, "error": "<message>", "error_type": "<CODE>", ...}

where ``error_type`` is a small closed vocabulary clients can branch on
(``BAD_REQUEST`` / ``UNKNOWN_OP`` / ``RETRY_AFTER`` / ``UNAVAILABLE`` /
``FENCED`` / ``READ_ONLY`` / ``DIVERGED`` / ``STALE`` / ``INTERNAL``)
instead of parsing prose.  ``RETRY_AFTER`` additionally carries a
``retry_after`` hint in seconds — the overload-shedding contract: the
server rejected the work *cheaply* and tells the client when the queue
is likely to have drained (docs/faults.md).  ``FENCED`` / ``READ_ONLY``
/ ``DIVERGED`` are the replication vocabulary (docs/replication.md): a
deposed primary, a follower asked to write, and a follower whose state
no longer matches its primary.  ``STALE`` is the read-path vocabulary
(docs/replication.md § Read routing): a node refusing to serve a read
below the client's session token or outside the requested staleness
bound, carrying its current ``applied`` watermark so the router can
retry elsewhere.

:func:`fault_response` is the only place exceptions become protocol
envelopes; the ``service-exception-discipline`` lint rule counts a
handler that routes through it as properly mapped.
"""

from __future__ import annotations

from typing import Dict

__all__ = [
    "BadRequest",
    "Diverged",
    "Fenced",
    "Overloaded",
    "ReadOnly",
    "ServiceFault",
    "Stale",
    "Unavailable",
    "UnknownOp",
    "fault_response",
]


class ServiceFault(Exception):
    """Base of every typed protocol error; ``code`` is the wire vocabulary."""

    code = "INTERNAL"

    def to_response(self) -> Dict[str, object]:
        """The ``{"ok": false}`` envelope for this fault."""
        return {
            "ok": False,
            "error": f"{type(self).__name__}: {self}",
            "error_type": self.code,
        }


class BadRequest(ServiceFault):
    """The request is malformed or references unknown nodes/edges."""

    code = "BAD_REQUEST"


class UnknownOp(BadRequest):
    """The ``op`` field names no handler."""

    code = "UNKNOWN_OP"


class Unavailable(ServiceFault):
    """The server is shutting down and no longer accepts this op."""

    code = "UNAVAILABLE"


class Overloaded(ServiceFault):
    """Ingest queue past the shed watermark: retry later, don't buffer.

    Raised *before* the WAL append, so a shed activation is neither
    durable nor acknowledged — the client's retry is the only copy.
    """

    code = "RETRY_AFTER"

    def __init__(self, message: str, *, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after

    def to_response(self) -> Dict[str, object]:
        doc = super().to_response()
        doc["retry_after"] = self.retry_after
        return doc


class Fenced(ServiceFault):
    """This node's epoch has been superseded: its writes must be refused.

    Raised on the old primary's write path after a promotion stamped a
    higher ``fenced_by`` epoch into its WAL (docs/replication.md).  The
    envelope carries both epochs so a client can tell a fenced node from
    a merely-confused one and rotate to the new primary.
    """

    code = "FENCED"

    def __init__(self, message: str, *, epoch: int = 0, fenced_by: int = 0) -> None:
        super().__init__(message)
        self.epoch = epoch
        self.fenced_by = fenced_by

    def to_response(self) -> Dict[str, object]:
        doc = super().to_response()
        doc["epoch"] = self.epoch
        doc["fenced_by"] = self.fenced_by
        return doc


class ReadOnly(ServiceFault):
    """A follower refuses writes: only the primary appends to the WAL."""

    code = "READ_ONLY"


class Diverged(ServiceFault):
    """The divergence auditor found this follower's state is wrong.

    Sticky by design — once a follower's engine signature disagrees with
    its primary at the same applied count, serving clusters from it
    would be serving silently-wrong answers, which the chaos contract
    forbids.  Stats and health ops still answer so operators can see the
    condition.
    """

    code = "DIVERGED"


class Stale(ServiceFault):
    """This node cannot serve the read within the requested bound.

    Raised on the read path (docs/replication.md § Read routing) when
    the client's session ``token`` is ahead of this node's applied
    watermark (read-your-writes would be violated) or the node's
    replication lag exceeds the request's ``max_staleness``.  Never a
    silent downgrade: the response carries the node's current
    ``applied`` watermark and the ``required`` token so a router can
    pick a caught-up replica or fall back to the primary.
    """

    code = "STALE"

    def __init__(self, message: str, *, applied: int = 0, required: int = 0) -> None:
        super().__init__(message)
        self.applied = applied
        self.required = required

    def to_response(self) -> Dict[str, object]:
        doc = super().to_response()
        doc["applied"] = self.applied
        doc["required"] = self.required
        return doc


def fault_response(exc: BaseException) -> Dict[str, object]:
    """Map any exception escaping a handler to its error envelope.

    Typed faults carry their own code; ``ValueError`` (argument
    validation all over the handlers) is client error; anything else is
    ``INTERNAL`` — reported, never allowed to kill the connection loop.
    """
    if isinstance(exc, ServiceFault):
        return exc.to_response()
    code = "BAD_REQUEST" if isinstance(exc, ValueError) else "INTERNAL"
    return {
        "ok": False,
        "error": f"{type(exc).__name__}: {exc}",
        "error_type": code,
    }
