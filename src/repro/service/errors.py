"""Typed protocol errors and the single exception→response mapper.

Every failed request is answered with::

    {"ok": false, "error": "<message>", "error_type": "<CODE>", ...}

where ``error_type`` is a small closed vocabulary clients can branch on
(``BAD_REQUEST`` / ``UNKNOWN_OP`` / ``RETRY_AFTER`` / ``UNAVAILABLE`` /
``INTERNAL``) instead of parsing prose.  ``RETRY_AFTER`` additionally
carries a ``retry_after`` hint in seconds — the overload-shedding
contract: the server rejected the work *cheaply* and tells the client
when the queue is likely to have drained (docs/faults.md).

:func:`fault_response` is the only place exceptions become protocol
envelopes; the ``service-exception-discipline`` lint rule counts a
handler that routes through it as properly mapped.
"""

from __future__ import annotations

from typing import Dict

__all__ = [
    "BadRequest",
    "Overloaded",
    "ServiceFault",
    "Unavailable",
    "UnknownOp",
    "fault_response",
]


class ServiceFault(Exception):
    """Base of every typed protocol error; ``code`` is the wire vocabulary."""

    code = "INTERNAL"

    def to_response(self) -> Dict[str, object]:
        """The ``{"ok": false}`` envelope for this fault."""
        return {
            "ok": False,
            "error": f"{type(self).__name__}: {self}",
            "error_type": self.code,
        }


class BadRequest(ServiceFault):
    """The request is malformed or references unknown nodes/edges."""

    code = "BAD_REQUEST"


class UnknownOp(BadRequest):
    """The ``op`` field names no handler."""

    code = "UNKNOWN_OP"


class Unavailable(ServiceFault):
    """The server is shutting down and no longer accepts this op."""

    code = "UNAVAILABLE"


class Overloaded(ServiceFault):
    """Ingest queue past the shed watermark: retry later, don't buffer.

    Raised *before* the WAL append, so a shed activation is neither
    durable nor acknowledged — the client's retry is the only copy.
    """

    code = "RETRY_AFTER"

    def __init__(self, message: str, *, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after

    def to_response(self) -> Dict[str, object]:
        doc = super().to_response()
        doc["retry_after"] = self.retry_after
        return doc


def fault_response(exc: BaseException) -> Dict[str, object]:
    """Map any exception escaping a handler to its error envelope.

    Typed faults carry their own code; ``ValueError`` (argument
    validation all over the handlers) is client error; anything else is
    ``INTERNAL`` — reported, never allowed to kill the connection loop.
    """
    if isinstance(exc, ServiceFault):
        return exc.to_response()
    code = "BAD_REQUEST" if isinstance(exc, ValueError) else "INTERNAL"
    return {
        "ok": False,
        "error": f"{type(exc).__name__}: {exc}",
        "error_type": code,
    }
