"""Durability: write-ahead activation log + engine checkpoints.

The service survives a ``kill -9`` with *exact* state reconstruction:

* every accepted activation is appended (and flushed) to a write-ahead
  log **before** it is acknowledged or enqueued for the writer;
* periodically the writer thread dumps a checkpoint: the pyramid index
  through :mod:`repro.index.persistence` plus the full metric state
  (decay clock, anchored activeness and similarity stores, node
  strengths) and engine counters;
* recovery = load the newest valid checkpoint + replay the WAL tail
  (entries past the checkpoint's activation count).

Because the whole pipeline is deterministic — seeded RNG, float state
restored bit-for-bit (``json`` round-trips ``repr`` exactly), updates
independent of dict iteration order — the recovered engine's
``clusters()`` output is byte-identical to the crashed process's, which
``tests/test_service.py`` and the service benchmark both assert.

Checkpoints are crash-safe without directory renames: a checkpoint dir
``checkpoint-<seq>/`` is complete only once its ``MANIFEST`` file exists;
recovery picks the highest-numbered complete checkpoint and ignores
torn ones.  A torn final WAL line (the append that was in flight when
the process died) is skipped on replay.

WAL records carry their own sequence number and a CRC32, so recovery can
tell the three corruption classes apart instead of replaying garbage:

* a torn/corrupt **final** record is the in-flight append a crash tore —
  repaired silently (the client never got the ack, so nothing is lost);
* a corrupt or checksum-failing record **mid-file** is real damage —
  :class:`WalCorruptError`, never a silent skip;
* a *missing* record (a lost page write: the append was acknowledged but
  the bytes never hit the platter) shows up as a sequence gap —
  :class:`WalCorruptError` again, because positional replay after a hole
  would silently diverge from the acknowledged stream.

Since the replication subsystem (:mod:`repro.replica`,
``docs/replication.md``) records additionally carry the **primary epoch**
under which they were written and the client **idempotency key** of the
keyed batch they belong to.  The epoch is the fencing token: a deposed
primary's appends are refused once :meth:`WriteAheadLog.fence` has been
called with a newer epoch, and followers refuse to apply records from an
epoch older than the newest they have seen.  The key lets a restarted
node (or a promoted follower) rebuild the exactly-once dedup map from
its own log, so a client resend straddling a failover never
double-applies an activation.  Both fields ride in the same checksummed
line format; logs written by older builds still replay.

Both durability classes expose a ``faults`` attribute (``None`` by
default) consulted via the :mod:`repro.faults` hook contract: disarmed
costs one attribute check; the chaos matrix (``tests/chaos/``) arms it.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Tuple,
    Union,
)

from ..core.activation import Activation
from ..core.anc import ANCF, ANCO, ANCOR, ANCEngineBase, ANCParams
from ..graph.graph import Graph
from ..index.clustering import ClusterQueryEngine
from ..index.persistence import load_index_resume, save_index
from .errors import Fenced

if TYPE_CHECKING:  # import cycle guard: faults hooks into service, not vice versa
    from ..faults.plan import FaultPlan

PathLike = Union[str, Path]

ENGINE_STATE_VERSION = 1

__all__ = [
    "WriteAheadLog",
    "WalCorruptError",
    "WalRecord",
    "CheckpointCorruptError",
    "CheckpointStore",
    "Recovery",
    "apply_activations",
    "dump_engine_state",
    "engine_signature",
    "restore_engine",
    "recover_engine",
    "recover_to",
    "signature_digest",
]


class WalCorruptError(ValueError):
    """The WAL is damaged beyond a torn tail (mid-file corruption or a
    sequence gap).  Typed so operators/harnesses can distinguish "refuse
    to serve from damaged state" from a programming error."""


class CheckpointCorruptError(ValueError):
    """A checkpoint that claims completeness (MANIFEST present) does not
    deserialize — bit rot after the fsync, not a torn write."""


def apply_activations(engine: ANCEngineBase, acts: List[Activation]) -> None:
    """Feed activations to ``engine`` with *deterministic* batch hooks.

    The live host and crash recovery must drive the engine identically
    or ANCOR's periodic reinforcement (fired from ``on_batch_end``)
    would depend on wall-clock micro-batch boundaries.  This helper
    derives the boundaries from the data instead: ``on_batch_end(t)``
    fires exactly when the stream time advances past ``t``, so any
    partitioning of the same activation sequence produces bit-identical
    engine state.
    """
    for act in acts:
        if act.t > engine.now and engine.activations_processed > 0:
            engine.on_batch_end(engine.now)
        engine.process(act)


# ----------------------------------------------------------------------
# Write-ahead log
# ----------------------------------------------------------------------

def _file_crc(path: Path) -> int:
    """CRC32 of a file's bytes (checkpoint MANIFESTs record these)."""
    with open(path, "rb") as fh:
        return zlib.crc32(fh.read())


class WalRecord(NamedTuple):
    """One decoded WAL entry: the activation plus its replication context.

    ``epoch`` is the primary epoch the record was written under (0 for
    logs predating replication); ``key`` is the idempotency key of the
    keyed client batch it belongs to (``None`` for un-keyed ingest and
    for records written before keys were logged).
    """

    seq: int
    act: Activation
    epoch: int
    key: Optional[str]


#: Placeholder for "no idempotency key" inside a record (keys themselves
#: are validated to be non-empty and whitespace-free at the protocol
#: boundary, so the bare dash can never collide with a real key).
_NO_KEY = "-"


def _wal_record(
    seq: int, act: Activation, *, epoch: int = 0, key: Optional[str] = None
) -> str:
    """Render one WAL record: ``seq u v t e<epoch> <key> crc32`` + newline."""
    body = f"{seq} {act.u} {act.v} {act.t!r} e{epoch} {key or _NO_KEY}"
    return f"{body} {zlib.crc32(body.encode()):08x}\n"


def _wal_is_legacy(lines: List[str]) -> bool:
    """Whether a WAL predates checksumming (no checksummed record anywhere).

    The distinction matters because a *short write* of a checksummed
    record leaves exactly the leading ``seq u v`` fields — which would
    otherwise parse as a legacy ``u v t`` record and replay a phantom
    activation.  A file containing any checksummed record (the 5-field
    pre-replication format or the 7-field epoch/key format) is therefore
    held to the checksummed format throughout: 3-field lines in it are
    damage, not legacy data.
    """
    return not any(len(line.split()) in (5, 7) for line in lines)


def _parse_wal_line(
    line: str, position: int, *, legacy_ok: bool
) -> Optional[WalRecord]:
    """Decode one WAL line to a :class:`WalRecord`; ``None`` if damaged.

    Accepts the current 7-field epoch/key format and the two older
    formats: 5-field checksummed (``seq u v t crc``, epoch 0, no key)
    always, and the legacy 3-field ``u v t`` (whose seq is its file
    position) only when ``legacy_ok`` — see :func:`_wal_is_legacy`.
    "Damaged" covers wrong field counts, unparseable numbers and CRC
    mismatches — the *caller* decides whether damage means a benign torn
    tail or corruption, based on where the line sits.
    """
    parts = line.split()
    try:
        if len(parts) == 7:
            body = " ".join(parts[:6])
            if int(parts[6], 16) != zlib.crc32(body.encode()):
                return None
            if not parts[4].startswith("e"):
                return None
            key = None if parts[5] == _NO_KEY else parts[5]
            return WalRecord(
                int(parts[0]),
                Activation(int(parts[1]), int(parts[2]), float(parts[3])),
                int(parts[4][1:]),
                key,
            )
        if len(parts) == 5:
            body = " ".join(parts[:4])
            if int(parts[4], 16) != zlib.crc32(body.encode()):
                return None
            return WalRecord(
                int(parts[0]),
                Activation(int(parts[1]), int(parts[2]), float(parts[3])),
                0,
                None,
            )
        if len(parts) == 3 and legacy_ok:  # record from before checksumming
            return WalRecord(
                position,
                Activation(int(parts[0]), int(parts[1]), float(parts[2])),
                0,
                None,
            )
    except ValueError:  # anclint: disable=service-exception-discipline — "damaged" is this parser's None return; the caller (replay) maps mid-file damage to WalCorruptError
        return None
    return None


class WriteAheadLog:
    """Append-only checksummed activation log with torn-tail tolerance.

    Entries are written in ingest order, which the single-writer host
    guarantees equals apply order, so "the first N entries" always means
    "the N activations the engine has absorbed".  Each record is
    ``seq u v t crc32``; see the module docstring for how the three
    corruption classes are told apart on replay.
    """

    def __init__(self, path: PathLike, *, faults: "Optional[FaultPlan]" = None) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        #: Fault-injection hook (:mod:`repro.faults`); ``None`` = disarmed.
        self.faults = faults
        #: Primary epoch stamped into new records (owners bump on promote).
        self.epoch = 0
        #: Appends are refused below this epoch once :meth:`fence` is called.
        self.fence_epoch = 0
        #: Called with each durably appended :class:`WalRecord` (the
        #: replication tail buffer subscribes here); ``None`` = disarmed.
        self.on_append: Optional[Callable[[WalRecord], None]] = None
        #: Entries in the log (counted on open so appends continue the seq).
        self.entries = self._repair_tail()
        self._fh = open(self.path, "a", encoding="utf-8")

    def _repair_tail(self) -> int:
        """Truncate a torn final line left by a crash; return entry count.

        Without this, the first append after recovery would land *after*
        the torn fragment and turn a benign torn tail into mid-file
        corruption.  Also adopts the tail record's epoch so a restarted
        node keeps stamping the epoch it last wrote under.
        """
        if not self.path.exists():
            return 0
        with open(self.path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        legacy = _wal_is_legacy(lines)
        if lines and _parse_wal_line(lines[-1], len(lines) - 1, legacy_ok=legacy) is None:
            lines.pop()
            with open(self.path, "w", encoding="utf-8") as fh:
                fh.write("".join(line + "\n" for line in lines))
        if not lines:
            return 0
        last = _parse_wal_line(lines[-1], len(lines) - 1, legacy_ok=legacy)
        if last is None:
            return len(lines)
        self.epoch = last.epoch
        # Continue from the last *recorded* seq: after a lost page write
        # the line count undercounts acknowledged appends, and reusing a
        # seq would mask the hole that replay must detect.
        return last.seq + 1

    def fence(self, epoch: int) -> None:
        """Refuse future appends below ``epoch`` (the deposed-primary fence).

        Idempotent and monotone: fencing at an older epoch than an
        existing fence is a no-op.  An in-flight handler that already
        passed the server's role check still cannot write — the refusal
        happens at the last possible moment, on the log itself.
        """
        self.fence_epoch = max(self.fence_epoch, epoch)

    def append(self, act: Activation, *, key: Optional[str] = None) -> int:
        """Durably append one activation; returns its sequence number.

        ``key`` is the idempotency key of the keyed batch the activation
        belongs to; it is persisted in the record so the exactly-once
        dedup map survives restarts and replicates to followers.
        """
        if self.epoch < self.fence_epoch:
            raise Fenced(
                f"WAL fenced at epoch {self.fence_epoch}; this writer is "
                f"still at epoch {self.epoch} (deposed primary)",
                epoch=self.epoch,
                fenced_by=self.fence_epoch,
            )
        seq = self.entries
        record = _wal_record(seq, act, epoch=self.epoch, key=key)
        if self.faults is not None:
            action = self.faults.hit("wal.append", seq=seq)
            if action is not None:
                return self._append_faulty(action.kind, seq, record)
        self._fh.write(record)
        self._fh.flush()
        self.entries = seq + 1
        if self.on_append is not None:
            self.on_append(WalRecord(seq, act, self.epoch, key))
        return seq

    def append_record(self, record: WalRecord) -> int:
        """Durably append a record copied *verbatim* from a primary.

        The follower apply path: seq, epoch and key are the primary's,
        so a follower's log is a byte-identical prefix of its primary's
        and a promoted follower continues the same sequence.  A seq that
        does not continue this log is a replication gap
        (:class:`WalCorruptError` — the link discards the chunk and
        refetches); a record from an epoch *older* than the newest this
        log has seen is a deposed primary's write
        (:class:`~repro.service.errors.Fenced` — split-brain protection).
        """
        if record.seq != self.entries:
            raise WalCorruptError(
                f"replication gap: expected seq {self.entries}, "
                f"got {record.seq}"
            )
        floor = max(self.epoch, self.fence_epoch)
        if record.epoch < floor:
            raise Fenced(
                f"replicated record seq {record.seq} carries epoch "
                f"{record.epoch} < {floor}; refusing a deposed primary's write",
                epoch=record.epoch,
                fenced_by=floor,
            )
        self._fh.write(
            _wal_record(record.seq, record.act, epoch=record.epoch, key=record.key)
        )
        self._fh.flush()
        self.epoch = record.epoch
        self.entries = record.seq + 1
        if self.on_append is not None:
            self.on_append(record)
        return record.seq

    def _append_faulty(self, kind: str, seq: int, record: str) -> int:
        """Apply a fired ``wal.append`` injector (see the catalog)."""
        from ..faults.injectors import corrupt_record
        from ..faults.plan import InjectedCrash

        data, crash = corrupt_record(kind, record)
        if data:
            self._fh.write(data)
            self._fh.flush()
        if crash:
            raise InjectedCrash("wal.append", kind, f"crashed appending seq {seq}")
        # fsync-loss: acknowledge as if durable; the hole surfaces on replay.
        self.entries = seq + 1
        return seq

    def close(self) -> None:
        self._fh.close()

    @staticmethod
    def replay_records(path: PathLike, *, skip: int = 0) -> Iterator[WalRecord]:
        """Yield full records with seq >= ``skip``, in order.

        A damaged *final* line (torn by a crash mid-append) is ignored; a
        damaged line elsewhere, or a gap in the sequence numbers (a lost
        page write under an acknowledged append), raises
        :class:`WalCorruptError` — replaying past either would silently
        diverge from the acknowledged stream.
        """
        path = Path(path)
        if not path.exists():
            return
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        legacy = _wal_is_legacy(lines)
        expected: Optional[int] = None
        for i, line in enumerate(lines):
            decoded = _parse_wal_line(line, i, legacy_ok=legacy)
            if decoded is None:
                if i == len(lines) - 1:
                    return  # torn tail
                raise WalCorruptError(f"corrupt WAL line {i}: {line!r}")
            if expected is not None and decoded.seq != expected:
                raise WalCorruptError(
                    f"WAL sequence gap at line {i}: expected seq {expected}, "
                    f"found {decoded.seq} (a lost write inside the "
                    f"acknowledged stream)"
                )
            expected = decoded.seq + 1
            if decoded.seq >= skip:
                yield decoded

    @staticmethod
    def replay(path: PathLike, *, skip: int = 0) -> Iterator[Activation]:
        """Yield activations with seq >= ``skip`` (see :meth:`replay_records`)."""
        for record in WriteAheadLog.replay_records(path, skip=skip):
            yield record.act


# ----------------------------------------------------------------------
# Engine state (de)hydration
# ----------------------------------------------------------------------

def dump_engine_state(engine: ANCEngineBase) -> Dict[str, object]:
    """Everything beyond the index needed to resurrect ``engine`` exactly.

    Must be called while no writer is mutating the engine (the host runs
    it on the writer thread).
    """
    metric = engine.metric
    clock = metric.clock
    # The backend is an execution strategy, not engine state: both
    # backends hold bitwise-identical values, so the checkpoint document
    # must be byte-identical too.  The restorer picks its own backend.
    params_doc = asdict(engine.params)
    params_doc.pop("engine_backend", None)
    doc: Dict[str, object] = {
        "format": ENGINE_STATE_VERSION,
        "engine": type(engine).__name__,
        "params": params_doc,
        "activations": engine.activations_processed,
        "clock": {
            "t": clock.now,
            "anchor": clock.anchor,
            "since_rescale": clock._since_rescale,
            "rescale_count": clock._rescale_count,
        },
        "activeness": [
            [u, v, value] for (u, v), value in metric.activeness.store.items_anchored()
        ],
        "similarity": [
            [u, v, value] for (u, v), value in metric.similarity.items_anchored()
        ],
        "strength": list(metric.sigma._strength),
    }
    if isinstance(engine, ANCOR):
        doc["reinforce"] = {
            "interval": engine.reinforce_interval,
            "last": engine._last_reinforce,
        }
    if isinstance(engine, ANCF):
        doc["dirty"] = engine._dirty
    return doc


def restore_engine(
    graph: Graph,
    doc: Dict[str, object],
    index_path: PathLike,
    *,
    faults: "Optional[FaultPlan]" = None,
    backend: str = "dict",
) -> ANCEngineBase:
    """Rebuild an engine from :func:`dump_engine_state` + a saved index.

    No reinforcement sweep and no Dijkstra runs: the metric stores, node
    strengths and decay clock are restored verbatim and the index comes
    back through :func:`repro.index.persistence.load_index`.

    ``backend`` selects the engine backend of the *restored* engine;
    checkpoints are backend-neutral, so a document written by either
    backend restores under either (``tests/test_engine_parity.py``
    crosses them).
    """
    from ..core.metric import SimilarityFunction

    version = doc.get("format") if isinstance(doc, dict) else None
    if version != ENGINE_STATE_VERSION:
        raise ValueError(
            f"unsupported engine-state format {version!r}; this build "
            f"supports version {ENGINE_STATE_VERSION}"
        )
    engines = {"ANCF": ANCF, "ANCO": ANCO, "ANCOR": ANCOR}
    name = doc["engine"]
    if name not in engines:
        raise ValueError(f"unknown engine {name!r} in checkpoint")
    params_doc = dict(doc["params"])  # type: ignore[arg-type]
    params_doc["engine_backend"] = backend
    params = ANCParams(**params_doc)

    engine = engines[name].__new__(engines[name])  # type: ignore[assignment]
    engine.graph = graph
    engine.params = params
    metric = SimilarityFunction(
        graph,
        lam=params.lam,
        eps=params.eps,
        mu=params.mu,
        rep=params.rep,
        rescale_every=params.rescale_every,
        initialize=False,
        backend=backend,
    )
    clock_doc = doc["clock"]
    metric.clock._t = float(clock_doc["t"])  # type: ignore[index]
    metric.clock._anchor = float(clock_doc["anchor"])  # type: ignore[index]
    metric.clock._since_rescale = int(clock_doc["since_rescale"])  # type: ignore[index]
    metric.clock._rescale_count = int(clock_doc["rescale_count"])  # type: ignore[index]
    for u, v, value in doc["activeness"]:  # type: ignore[union-attr]
        metric.activeness.store.set_anchored(int(u), int(v), float(value))
    for u, v, value in doc["similarity"]:  # type: ignore[union-attr]
        metric.similarity.set_anchored(int(u), int(v), float(value))
    metric.sigma._strength = [float(s) for s in doc["strength"]]  # type: ignore[union-attr]
    metric._initialized = True
    engine.metric = metric

    engine.index, resume = load_index_resume(
        graph, index_path, faults=faults, space=metric.space
    )
    if resume and resume.get("seq") is not None:
        stored = int(resume["seq"])  # type: ignore[arg-type]
        if stored != int(doc["activations"]):  # type: ignore[arg-type]
            raise ValueError(
                f"checkpoint internally inconsistent: index resume seq "
                f"{stored} != engine activations {doc['activations']}"
            )
    metric.clock.add_rescale_listener(engine.index.on_rescale)
    engine.queries = ClusterQueryEngine(engine.index, method=params.method)
    engine.activations_processed = int(doc["activations"])  # type: ignore[arg-type]
    # __new__ bypassed __init__, so the observability binding must be
    # re-created explicitly (the server re-attaches its bundle afterwards).
    engine._init_obs(None)

    if isinstance(engine, ANCO):
        engine._wire_updates()
    if isinstance(engine, ANCOR):
        reinforce = doc["reinforce"]
        engine.reinforce_interval = float(reinforce["interval"])  # type: ignore[index]
        engine._last_reinforce = float(reinforce["last"])  # type: ignore[index]
    if isinstance(engine, ANCF):
        engine._dirty = bool(doc.get("dirty", False))
    return engine


# ----------------------------------------------------------------------
# Checkpoint store
# ----------------------------------------------------------------------

class CheckpointStore:
    """Numbered checkpoints plus the WAL, under one data directory.

    Layout::

        data_dir/
          wal.log                  append-only activation log
          checkpoint-<seq>/
            engine.json            dump_engine_state() output
            index.json             repro.index.persistence document
            MANIFEST               written last; marks the dir complete
    """

    def __init__(self, data_dir: PathLike, *, faults: "Optional[FaultPlan]" = None) -> None:
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        #: Fault-injection hook (:mod:`repro.faults`); ``None`` = disarmed.
        self.faults = faults

    @property
    def wal_path(self) -> Path:
        return self.data_dir / "wal.log"

    # -- writing -----------------------------------------------------------
    def write_checkpoint(self, engine: ANCEngineBase, *, epoch: int = 0) -> Path:
        """Dump ``engine`` as checkpoint ``<activations_processed>``.

        Call from the writer thread only (needs a quiescent engine).
        Older checkpoints are pruned after the new one is complete.
        ``epoch`` is the primary epoch the node is serving under; it is
        recorded in the MANIFEST and the index resume metadata so a
        restart (or a follower bootstrapping from this directory) knows
        both the WAL resume point and the fencing token without
        re-scanning the log.
        """
        seq = engine.activations_processed
        target = self.data_dir / f"checkpoint-{seq}"
        target.mkdir(parents=True, exist_ok=True)
        doc = dump_engine_state(engine)
        payload = json.dumps(doc)
        action = (
            self.faults.hit("checkpoint.write", seq=seq)
            if self.faults is not None
            else None
        )
        # ``written`` is what reaches the disk; ``payload`` is what the
        # MANIFEST checksums.  They differ only under the corrupt-engine
        # injector, which models bit rot *after* a successful write — the
        # exact case the checksum exists to catch.
        written = payload
        if action is not None:
            from ..faults.injectors import corrupt_payload
            from ..faults.plan import InjectedCrash

            if action.kind == "truncate-engine":
                with open(target / "engine.json", "w", encoding="utf-8") as fh:
                    fh.write(payload[: len(payload) // 2])
                raise InjectedCrash(
                    "checkpoint.write", action.kind,
                    "crashed mid-write of engine.json",
                )
            if action.kind == "corrupt-engine":
                written = corrupt_payload(payload)
        with open(target / "engine.json", "w", encoding="utf-8") as fh:
            fh.write(written)
            fh.flush()
            os.fsync(fh.fileno())
        save_index(
            engine.index,
            target / "index.json",
            faults=self.faults,
            resume={"seq": seq, "epoch": epoch},
        )
        if action is not None and action.kind == "skip-manifest":
            from ..faults.plan import InjectedCrash

            raise InjectedCrash(
                "checkpoint.write", action.kind,
                f"crashed before MANIFEST of checkpoint {seq}",
            )
        manifest = {
            "seq": seq,
            "epoch": epoch,
            "engine_crc": zlib.crc32(payload.encode()),
            "index_crc": _file_crc(target / "index.json"),
        }
        with open(target / "MANIFEST", "w", encoding="utf-8") as fh:
            json.dump(manifest, fh)
            fh.flush()
            os.fsync(fh.fileno())
        if action is not None and action.kind == "crash":
            from ..faults.plan import InjectedCrash

            raise InjectedCrash(
                "checkpoint.write", action.kind,
                f"crashed after completing checkpoint {seq}",
            )
        self._prune(keep=seq)
        return target

    def _prune(self, *, keep: int) -> None:
        for path, seq in self._checkpoint_dirs():
            if seq != keep:
                for child in path.iterdir():
                    child.unlink()
                path.rmdir()

    # -- reading -----------------------------------------------------------
    def _checkpoint_dirs(self) -> List[Tuple[Path, int]]:
        out: List[Tuple[Path, int]] = []
        for path in self.data_dir.glob("checkpoint-*"):
            try:
                seq = int(path.name.split("-", 1)[1])
            except ValueError:  # anclint: disable=service-exception-discipline — a stray non-checkpoint directory is not ours to judge; recovery only trusts MANIFESTed dirs
                continue
            out.append((path, seq))
        return sorted(out, key=lambda item: item[1])

    def latest_checkpoint(self) -> Optional[Tuple[Path, int]]:
        """Newest *complete* checkpoint (has a MANIFEST), or ``None``."""
        complete = [
            (path, seq)
            for path, seq in self._checkpoint_dirs()
            if (path / "MANIFEST").exists()
        ]
        return complete[-1] if complete else None


@dataclass
class Recovery:
    """Everything :func:`recover_to` reconstructed from one data directory.

    ``epoch`` is the highest primary epoch seen across the checkpoint
    MANIFEST and the replayed WAL tail — the fencing token a restarted
    node must resume under.  ``dedup`` maps idempotency keys (newest
    last) to ``(done, last_seq)`` progress, rebuilt from the keyed WAL
    records, so a client resend that straddles the restart resumes
    exactly-once instead of double-applying.
    """

    engine: ANCEngineBase
    #: WAL records applied on top of the checkpoint.
    replayed: int = 0
    #: Highest epoch found in the MANIFEST or the WAL.
    epoch: int = 0
    #: key -> (items applied under the key, last WAL seq of the key).
    dedup: "OrderedDict[str, Tuple[int, int]]" = field(default_factory=OrderedDict)


def recover_to(
    graph: Graph,
    store: CheckpointStore,
    *,
    params: Optional[ANCParams] = None,
    engine_name: str = "ANCO",
    upto_seq: Optional[int] = None,
) -> Recovery:
    """Build the serving engine from whatever ``store`` holds.

    * complete checkpoint found → restore it, then replay the WAL tail;
    * no checkpoint but a WAL → fresh engine, replay the whole WAL;
    * empty directory → fresh engine.

    The single recovery path shared by server restart and follower
    bootstrap (:mod:`repro.replica`): the checkpoint's resume seq/epoch
    come from its MANIFEST and index resume metadata, so no caller ever
    re-scans the WAL to find its own resume point.  ``upto_seq`` bounds
    the replay (exclusive) for point-in-time recovery; the default
    replays the whole tail.

    ``params``/``engine_name`` configure the fresh-start path and are
    ignored when a checkpoint dictates them.  A checkpoint whose
    contents fail the MANIFEST checksums or do not deserialize raises
    :class:`CheckpointCorruptError`; a damaged WAL raises
    :class:`WalCorruptError` (see :meth:`WriteAheadLog.replay_records`).
    Serving silently-wrong clusters is never an option.
    """
    from ..core.anc import make_engine

    epoch = 0
    latest = store.latest_checkpoint()
    if latest is not None:
        path, _ = latest
        try:
            with open(path / "MANIFEST", "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
            with open(path / "engine.json", "r", encoding="utf-8") as fh:
                raw = fh.read()
            engine_crc = manifest.get("engine_crc")
            if engine_crc is not None and zlib.crc32(raw.encode()) != engine_crc:
                raise CheckpointCorruptError(
                    f"checkpoint {path.name}: engine.json fails its "
                    f"MANIFEST checksum (bit rot after completion)"
                )
            index_crc = manifest.get("index_crc")
            if index_crc is not None and _file_crc(path / "index.json") != index_crc:
                raise CheckpointCorruptError(
                    f"checkpoint {path.name}: index.json fails its "
                    f"MANIFEST checksum (bit rot after completion)"
                )
            doc = json.loads(raw)
            engine = restore_engine(
                graph,
                doc,
                path / "index.json",
                faults=store.faults,
                backend=params.engine_backend if params is not None else "dict",
            )
            epoch = int(manifest.get("epoch", 0))
        except CheckpointCorruptError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointCorruptError(
                f"checkpoint {path.name} does not deserialize: {exc}"
            ) from exc
    else:
        engine = make_engine(engine_name, graph, params)
    skip = engine.activations_processed
    # One pass over the log rebuilds both the engine tail and the
    # exactly-once dedup map.  The dedup scan starts at seq 0 (not the
    # checkpoint) because a keyed batch completed *before* the checkpoint
    # may still be resent by a client that never saw its ack.
    dedup: "OrderedDict[str, Tuple[int, int]]" = OrderedDict()
    tail: List[Activation] = []
    replayed = 0
    for record in WriteAheadLog.replay_records(store.wal_path):
        if upto_seq is not None and record.seq >= upto_seq:
            break
        epoch = max(epoch, record.epoch)
        if record.key is not None:
            done, _ = dedup.get(record.key, (0, -1))
            dedup[record.key] = (done + 1, record.seq)
            dedup.move_to_end(record.key)
        if record.seq >= skip:
            tail.append(record.act)
            replayed += 1
    apply_activations(engine, tail)
    return Recovery(engine=engine, replayed=replayed, epoch=epoch, dedup=dedup)


def recover_engine(
    graph: Graph,
    store: CheckpointStore,
    *,
    params: Optional[ANCParams] = None,
    engine_name: str = "ANCO",
) -> Tuple[ANCEngineBase, int]:
    """Compatibility wrapper over :func:`recover_to`.

    Returns ``(engine, replayed)`` — the pre-replication recovery
    surface.  New callers that need the epoch or the dedup map use
    :func:`recover_to` directly.
    """
    recovery = recover_to(graph, store, params=params, engine_name=engine_name)
    return recovery.engine, recovery.replayed


# ----------------------------------------------------------------------
# State fingerprinting (the divergence oracle)
# ----------------------------------------------------------------------

def engine_signature(engine: ANCEngineBase) -> Dict[str, object]:
    """Exact state fingerprint: equal signatures ⇒ byte-identical engines.

    Floats go through ``repr`` so 1e-16 drift is a mismatch, and clusters
    are captured at the bottom, √n and top levels of the pyramid.  The
    chaos matrix compares faulted runs against a fault-free oracle with
    it, and the replication auditor (:mod:`repro.replica`) compares
    primary against followers continuously.
    """
    metric = engine.metric
    levels = sorted(
        {1, engine.queries.sqrt_n_level(), engine.queries.num_levels}
    )
    return {
        "activations": engine.activations_processed,
        "t": repr(engine.now),
        "anchor": repr(metric.clock.anchor),
        "similarity": sorted(
            (u, v, repr(value))
            for (u, v), value in metric.similarity.items_anchored()
        ),
        "clusters": {
            str(level): engine.clusters(level) for level in levels
        },
    }


def signature_digest(engine: ANCEngineBase) -> str:
    """A wire-friendly SHA-256 over the canonical JSON of the signature.

    ``json.dumps`` renders tuples and lists identically, so a digest
    computed locally compares equal to one computed from a signature
    that round-tripped through the protocol.
    """
    doc = json.dumps(engine_signature(engine), sort_keys=True)
    return hashlib.sha256(doc.encode()).hexdigest()
