"""Durability: write-ahead activation log + engine checkpoints.

The service survives a ``kill -9`` with *exact* state reconstruction:

* every accepted activation is appended (and flushed) to a write-ahead
  log **before** it is acknowledged or enqueued for the writer;
* periodically the writer thread dumps a checkpoint: the pyramid index
  through :mod:`repro.index.persistence` plus the full metric state
  (decay clock, anchored activeness and similarity stores, node
  strengths) and engine counters;
* recovery = load the newest valid checkpoint + replay the WAL tail
  (entries past the checkpoint's activation count).

Because the whole pipeline is deterministic — seeded RNG, float state
restored bit-for-bit (``json`` round-trips ``repr`` exactly), updates
independent of dict iteration order — the recovered engine's
``clusters()`` output is byte-identical to the crashed process's, which
``tests/test_service.py`` and the service benchmark both assert.

Checkpoints are crash-safe without directory renames: a checkpoint dir
``checkpoint-<seq>/`` is complete only once its ``MANIFEST`` file exists;
recovery picks the highest-numbered complete checkpoint and ignores
torn ones.  A torn final WAL line (the append that was in flight when
the process died) is skipped on replay.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..core.activation import Activation
from ..core.anc import ANCF, ANCO, ANCOR, ANCEngineBase, ANCParams
from ..graph.graph import Graph
from ..index.clustering import ClusterQueryEngine
from ..index.persistence import load_index, save_index

PathLike = Union[str, Path]

ENGINE_STATE_VERSION = 1

__all__ = [
    "WriteAheadLog",
    "CheckpointStore",
    "apply_activations",
    "dump_engine_state",
    "restore_engine",
    "recover_engine",
]


def apply_activations(engine: ANCEngineBase, acts: List[Activation]) -> None:
    """Feed activations to ``engine`` with *deterministic* batch hooks.

    The live host and crash recovery must drive the engine identically
    or ANCOR's periodic reinforcement (fired from ``on_batch_end``)
    would depend on wall-clock micro-batch boundaries.  This helper
    derives the boundaries from the data instead: ``on_batch_end(t)``
    fires exactly when the stream time advances past ``t``, so any
    partitioning of the same activation sequence produces bit-identical
    engine state.
    """
    for act in acts:
        if act.t > engine.now and engine.activations_processed > 0:
            engine.on_batch_end(engine.now)
        engine.process(act)


# ----------------------------------------------------------------------
# Write-ahead log
# ----------------------------------------------------------------------

class WriteAheadLog:
    """Append-only ``u v t`` activation log with torn-tail tolerance.

    Entries are written in ingest order, which the single-writer host
    guarantees equals apply order, so "the first N entries" always means
    "the N activations the engine has absorbed".
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        #: Entries in the log (counted on open so appends continue the seq).
        self.entries = self._repair_tail()
        self._fh = open(self.path, "a", encoding="utf-8")

    def _repair_tail(self) -> int:
        """Truncate a torn final line left by a crash; return entry count.

        Without this, the first append after recovery would land *after*
        the torn fragment and turn a benign torn tail into mid-file
        corruption.
        """
        if not self.path.exists():
            return 0
        with open(self.path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        if lines:
            parts = lines[-1].split()
            try:
                int(parts[0]), int(parts[1]), float(parts[2])
            except (IndexError, ValueError):
                lines.pop()
                with open(self.path, "w", encoding="utf-8") as fh:
                    fh.write("".join(line + "\n" for line in lines))
        return len(lines)

    def append(self, act: Activation) -> int:
        """Durably append one activation; returns its sequence number."""
        self._fh.write(f"{act.u} {act.v} {act.t!r}\n")
        self._fh.flush()
        self.entries += 1
        return self.entries - 1

    def close(self) -> None:
        self._fh.close()

    @staticmethod
    def replay(path: PathLike, *, skip: int = 0) -> Iterator[Activation]:
        """Yield activations from entry ``skip`` onward.

        A malformed *final* line (torn by a crash mid-append) is ignored;
        a malformed line elsewhere raises, since that means corruption
        rather than a torn tail.
        """
        path = Path(path)
        if not path.exists():
            return
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        for i, line in enumerate(lines):
            parts = line.split()
            try:
                u, v, t = int(parts[0]), int(parts[1]), float(parts[2])
            except (IndexError, ValueError):
                if i == len(lines) - 1:
                    return  # torn tail
                raise ValueError(f"corrupt WAL line {i}: {line!r}")
            if i >= skip:
                yield Activation(u, v, t)


# ----------------------------------------------------------------------
# Engine state (de)hydration
# ----------------------------------------------------------------------

def dump_engine_state(engine: ANCEngineBase) -> Dict[str, object]:
    """Everything beyond the index needed to resurrect ``engine`` exactly.

    Must be called while no writer is mutating the engine (the host runs
    it on the writer thread).
    """
    metric = engine.metric
    clock = metric.clock
    doc: Dict[str, object] = {
        "format": ENGINE_STATE_VERSION,
        "engine": type(engine).__name__,
        "params": asdict(engine.params),
        "activations": engine.activations_processed,
        "clock": {
            "t": clock.now,
            "anchor": clock.anchor,
            "since_rescale": clock._since_rescale,
            "rescale_count": clock._rescale_count,
        },
        "activeness": [
            [u, v, value] for (u, v), value in metric.activeness.store.items_anchored()
        ],
        "similarity": [
            [u, v, value] for (u, v), value in metric.similarity.items_anchored()
        ],
        "strength": list(metric.sigma._strength),
    }
    if isinstance(engine, ANCOR):
        doc["reinforce"] = {
            "interval": engine.reinforce_interval,
            "last": engine._last_reinforce,
        }
    if isinstance(engine, ANCF):
        doc["dirty"] = engine._dirty
    return doc


def restore_engine(
    graph: Graph, doc: Dict[str, object], index_path: PathLike
) -> ANCEngineBase:
    """Rebuild an engine from :func:`dump_engine_state` + a saved index.

    No reinforcement sweep and no Dijkstra runs: the metric stores, node
    strengths and decay clock are restored verbatim and the index comes
    back through :func:`repro.index.persistence.load_index`.
    """
    from ..core.metric import SimilarityFunction

    version = doc.get("format") if isinstance(doc, dict) else None
    if version != ENGINE_STATE_VERSION:
        raise ValueError(
            f"unsupported engine-state format {version!r}; this build "
            f"supports version {ENGINE_STATE_VERSION}"
        )
    engines = {"ANCF": ANCF, "ANCO": ANCO, "ANCOR": ANCOR}
    name = doc["engine"]
    if name not in engines:
        raise ValueError(f"unknown engine {name!r} in checkpoint")
    params = ANCParams(**doc["params"])  # type: ignore[arg-type]

    engine = engines[name].__new__(engines[name])  # type: ignore[assignment]
    engine.graph = graph
    engine.params = params
    metric = SimilarityFunction(
        graph,
        lam=params.lam,
        eps=params.eps,
        mu=params.mu,
        rep=params.rep,
        rescale_every=params.rescale_every,
        initialize=False,
    )
    clock_doc = doc["clock"]
    metric.clock._t = float(clock_doc["t"])  # type: ignore[index]
    metric.clock._anchor = float(clock_doc["anchor"])  # type: ignore[index]
    metric.clock._since_rescale = int(clock_doc["since_rescale"])  # type: ignore[index]
    metric.clock._rescale_count = int(clock_doc["rescale_count"])  # type: ignore[index]
    for u, v, value in doc["activeness"]:  # type: ignore[union-attr]
        metric.activeness.store.set_anchored(int(u), int(v), float(value))
    for u, v, value in doc["similarity"]:  # type: ignore[union-attr]
        metric.similarity.set_anchored(int(u), int(v), float(value))
    metric.sigma._strength = [float(s) for s in doc["strength"]]  # type: ignore[union-attr]
    metric._initialized = True
    engine.metric = metric

    engine.index = load_index(graph, index_path)
    metric.clock.add_rescale_listener(engine.index.on_rescale)
    engine.queries = ClusterQueryEngine(engine.index, method=params.method)
    engine.activations_processed = int(doc["activations"])  # type: ignore[arg-type]
    # __new__ bypassed __init__, so the observability binding must be
    # re-created explicitly (the server re-attaches its bundle afterwards).
    engine._init_obs(None)

    if isinstance(engine, ANCO):
        engine._wire_updates()
    if isinstance(engine, ANCOR):
        reinforce = doc["reinforce"]
        engine.reinforce_interval = float(reinforce["interval"])  # type: ignore[index]
        engine._last_reinforce = float(reinforce["last"])  # type: ignore[index]
    if isinstance(engine, ANCF):
        engine._dirty = bool(doc.get("dirty", False))
    return engine


# ----------------------------------------------------------------------
# Checkpoint store
# ----------------------------------------------------------------------

class CheckpointStore:
    """Numbered checkpoints plus the WAL, under one data directory.

    Layout::

        data_dir/
          wal.log                  append-only activation log
          checkpoint-<seq>/
            engine.json            dump_engine_state() output
            index.json             repro.index.persistence document
            MANIFEST               written last; marks the dir complete
    """

    def __init__(self, data_dir: PathLike) -> None:
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)

    @property
    def wal_path(self) -> Path:
        return self.data_dir / "wal.log"

    # -- writing -----------------------------------------------------------
    def write_checkpoint(self, engine: ANCEngineBase) -> Path:
        """Dump ``engine`` as checkpoint ``<activations_processed>``.

        Call from the writer thread only (needs a quiescent engine).
        Older checkpoints are pruned after the new one is complete.
        """
        seq = engine.activations_processed
        target = self.data_dir / f"checkpoint-{seq}"
        target.mkdir(parents=True, exist_ok=True)
        doc = dump_engine_state(engine)
        with open(target / "engine.json", "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
            fh.flush()
            os.fsync(fh.fileno())
        save_index(engine.index, target / "index.json")
        with open(target / "MANIFEST", "w", encoding="utf-8") as fh:
            json.dump({"seq": seq}, fh)
            fh.flush()
            os.fsync(fh.fileno())
        self._prune(keep=seq)
        return target

    def _prune(self, *, keep: int) -> None:
        for path, seq in self._checkpoint_dirs():
            if seq != keep:
                for child in path.iterdir():
                    child.unlink()
                path.rmdir()

    # -- reading -----------------------------------------------------------
    def _checkpoint_dirs(self) -> List[Tuple[Path, int]]:
        out: List[Tuple[Path, int]] = []
        for path in self.data_dir.glob("checkpoint-*"):
            try:
                seq = int(path.name.split("-", 1)[1])
            except ValueError:
                continue
            out.append((path, seq))
        return sorted(out, key=lambda item: item[1])

    def latest_checkpoint(self) -> Optional[Tuple[Path, int]]:
        """Newest *complete* checkpoint (has a MANIFEST), or ``None``."""
        complete = [
            (path, seq)
            for path, seq in self._checkpoint_dirs()
            if (path / "MANIFEST").exists()
        ]
        return complete[-1] if complete else None


def recover_engine(
    graph: Graph,
    store: CheckpointStore,
    *,
    params: Optional[ANCParams] = None,
    engine_name: str = "ANCO",
) -> Tuple[ANCEngineBase, int]:
    """Build the serving engine from whatever ``store`` holds.

    * complete checkpoint found → restore it, then replay the WAL tail;
    * no checkpoint but a WAL → fresh engine, replay the whole WAL;
    * empty directory → fresh engine.

    Returns ``(engine, replayed)`` where ``replayed`` counts the WAL
    entries applied on top of the checkpoint (0 on a cold start with no
    log).  ``params``/``engine_name`` configure the fresh-start path and
    are ignored when a checkpoint dictates them.
    """
    from ..core.anc import make_engine

    latest = store.latest_checkpoint()
    if latest is not None:
        path, _ = latest
        with open(path / "engine.json", "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        engine = restore_engine(graph, doc, path / "index.json")
    else:
        engine = make_engine(engine_name, graph, params)
    skip = engine.activations_processed
    tail = list(WriteAheadLog.replay(store.wal_path, skip=skip))
    apply_activations(engine, tail)
    return engine, len(tail)
