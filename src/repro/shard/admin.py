"""Operator-facing introspection of a sharded deployment.

Thin wrappers over the router's ``shard_map`` admin op plus the
formatting the ``repro-anc shardmap`` CLI command prints.  Kept apart
from :mod:`repro.shard.router` so the CLI can render a *planned*
topology (build the map locally, no deployment needed) and a *live*
one (query a running router) through the same formatter.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from ..service.client import RetryPolicy, ServiceClient
from .shardmap import ShardMap

__all__ = ["format_shard_doc", "format_shardmap", "shard_status"]


def shard_status(host: str, port: int, *, timeout: float = 10.0) -> Dict[str, object]:
    """Fetch the ``shard_map`` document from a running router."""
    with ServiceClient(
        host, port, timeout=timeout, retry=RetryPolicy(attempts=2)
    ) as client:
        response = client.request("shard_map")
    doc = response.get("shard_map")
    if not isinstance(doc, dict):
        raise ValueError(f"router at {host}:{port} sent no shard_map document")
    return doc


def format_shard_doc(doc: Mapping[str, object]) -> List[str]:
    """Human-readable lines for a ``shard_map`` document (live or planned)."""
    shards = int(doc.get("shards", 0))  # type: ignore[arg-type]
    nodes = doc.get("nodes_per_shard")
    edges = doc.get("edges_per_shard")
    workers = doc.get("workers")
    lines = [
        f"shard map over n={doc.get('n')} nodes, {shards} shards "
        f"(seed {doc.get('seed')})",
        f"digest: {doc.get('digest')}",
    ]
    for shard in range(shards):
        node_count = nodes[shard] if isinstance(nodes, list) else "?"
        edge_count = edges[shard] if isinstance(edges, list) else "?"
        line = f"  shard {shard}: {node_count} nodes, {edge_count} edges"
        if isinstance(workers, dict):
            info = workers.get(str(shard))
            if isinstance(info, dict):
                state = "up" if info.get("alive") else "DOWN"
                line += (
                    f" — worker {info.get('host')}:{info.get('port')} {state}"
                    f" ({info.get('restarts', 0)} restarts)"
                )
        lines.append(line)
    cross = int(doc.get("cross_edge_count", 0))  # type: ignore[arg-type]
    lines.append(
        f"cross-shard edges: {cross}"
        + (" (scatter-gather answers are exact)" if cross == 0 else "")
    )
    if cross:
        sample = doc.get("cross_edges")
        if isinstance(sample, list) and sample:
            shown = ", ".join(
                f"({e[0]},{e[1]})→s{e[2]}" for e in sample[:8] if isinstance(e, list)
            )
            suffix = ", …" if cross > 8 else ""
            lines.append(f"  e.g. {shown}{suffix}")
    return lines


def format_shardmap(smap: ShardMap, *, workers: Optional[Mapping[str, object]] = None) -> List[str]:
    """Format a locally built :class:`ShardMap` (the planning path)."""
    doc = smap.to_dict()
    if workers is not None:
        doc["workers"] = dict(workers)
    return format_shard_doc(doc)
