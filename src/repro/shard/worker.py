"""Shard workers: one :class:`~repro.service.server.ANCServer` per process.

Each worker is a full serving stack — engine, micro-batcher, WAL,
checkpoints, even a replica chain if configured — running the shard's
graph (full node space, owned edges only; see
:mod:`repro.shard.shardmap`) in its **own OS process**.  Process
isolation is the point: N shards give N independent GILs, N independent
writer threads and N independent durability directories, so the
single-writer discipline the service layer enforces per process now
scales horizontally instead of being the ceiling.

:class:`WorkerSpec` is a picklable bundle of primitives (the spawn
start method re-imports everything in the child, so the spec carries
edge lists and parameter fields, never live objects).  Fault specs ride
along the same way and the child rebuilds its own
:class:`~repro.faults.plan.FaultPlan` — that is how the chaos matrix
reaches into a worker process.

:class:`ShardWorker` is the parent-side supervisor handle: it spawns
the process, waits for the port announcement, and can restart a dead
worker on the same data directory (WAL + checkpoint recovery brings the
engine back; the router resends in-flight batches under their original
idempotency keys, so a crash-respawn cycle stays exactly-once).
Restarts drop the spec's fault specs — an injected fault models a
transient failure, and re-arming it in the respawned process would
crash-loop the shard.

:class:`ShardDeployment` builds the :class:`~repro.shard.shardmap.ShardMap`
and owns the full set of workers.
"""

from __future__ import annotations

import asyncio
import json
import logging
import multiprocessing
import socket
import sys
from dataclasses import dataclass, replace
from pathlib import Path
from queue import Empty
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.anc import ANCParams
from ..faults.plan import FaultPlan, FaultSpec
from ..graph.graph import Edge, Graph
from ..service.server import ANCServer, ServerConfig
from .shardmap import ShardMap

__all__ = ["ShardDeployment", "ShardWorker", "WorkerSpec", "worker_main"]

log = logging.getLogger("repro.shard")

#: ``(shard_id, port, error)`` announced by a child once its socket is
#: bound; ``port < 0`` carries a startup failure in ``error``.
WorkerAnnounce = Tuple[int, int, str]


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a spawned worker process needs, as plain picklables."""

    shard_id: int
    n: int
    edges: Tuple[Edge, ...]
    names: Optional[Tuple[Hashable, ...]]
    engine: str = "anco"
    params: Optional[ANCParams] = None
    host: str = "127.0.0.1"
    data_dir: Optional[str] = None
    batch_size: int = 64
    max_latency: float = 0.05
    max_pending: int = 4096
    checkpoint_every: int = 2000
    shed_watermark: int = 0
    write_timeout: float = 30.0
    metrics_interval: float = 0.0
    fault_specs: Tuple[FaultSpec, ...] = ()
    fault_seed: int = 0

    def server_config(self, faults: Optional[FaultPlan]) -> ServerConfig:
        """The :class:`ServerConfig` this spec describes (port 0 = pick)."""
        return ServerConfig(
            host=self.host,
            port=0,
            engine=self.engine,
            batch_size=self.batch_size,
            max_latency=self.max_latency,
            max_pending=self.max_pending,
            data_dir=self.data_dir,
            checkpoint_every=self.checkpoint_every,
            metrics_interval=self.metrics_interval,
            shed_watermark=self.shed_watermark,
            write_timeout=self.write_timeout,
            shard_id=self.shard_id,
            faults=faults,
        )


def worker_main(spec: WorkerSpec, ready: "multiprocessing.queues.Queue[WorkerAnnounce]") -> None:
    """Child-process entry point: build the stack, announce, serve.

    Must stay importable at module top level (the spawn start method
    pickles the function reference, not the code).
    """
    logging.basicConfig(
        stream=sys.stderr,
        level=logging.WARNING,
        format=f"%(asctime)s shard-{spec.shard_id} %(name)s %(levelname)s %(message)s",
    )
    try:
        graph = Graph(spec.n, spec.edges)
        plan = (
            FaultPlan(list(spec.fault_specs), seed=spec.fault_seed)
            if spec.fault_specs
            else None
        )
        server = ANCServer(
            graph,
            spec.names,
            config=spec.server_config(plan),
            params=spec.params,
        )
    except Exception as exc:
        ready.put((spec.shard_id, -1, f"{type(exc).__name__}: {exc}"))
        raise

    async def _main() -> None:
        try:
            await server.start()
        except Exception as exc:
            ready.put((spec.shard_id, -1, f"{type(exc).__name__}: {exc}"))
            raise
        assert server.port is not None
        ready.put((spec.shard_id, server.port, ""))
        await server.serve_forever()

    asyncio.run(_main())


def _request_shutdown(host: str, port: int, *, timeout: float) -> bool:
    """Best-effort graceful ``shutdown`` op over a raw socket."""
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.settimeout(timeout)
            sock.sendall(json.dumps({"op": "shutdown"}).encode() + b"\n")
            sock.makefile("rb").readline()
        return True
    except OSError:
        return False


class ShardWorker:
    """Parent-side handle of one shard's worker process."""

    def __init__(self, spec: WorkerSpec, *, spawn_timeout: float = 60.0) -> None:
        self.spec = spec
        self.shard_id = spec.shard_id
        self.port: Optional[int] = None
        #: Times this worker was respawned after dying (supervisor metric).
        self.restarts = 0
        self._spawn_timeout = spawn_timeout
        self._ctx = multiprocessing.get_context("spawn")
        self._proc: Optional[multiprocessing.process.BaseProcess] = None

    @property
    def alive(self) -> bool:
        return self._proc is not None and self._proc.is_alive()

    def start(self) -> "ShardWorker":
        """Spawn the process and wait for its port announcement."""
        queue: "multiprocessing.queues.Queue[WorkerAnnounce]" = self._ctx.Queue(1)
        proc = self._ctx.Process(
            target=worker_main,
            args=(self.spec, queue),
            name=f"anc-shard-{self.shard_id}",
            daemon=True,
        )
        proc.start()
        try:
            shard_id, port, error = queue.get(timeout=self._spawn_timeout)
        except Empty:
            proc.terminate()
            proc.join(timeout=5.0)
            raise RuntimeError(
                f"shard {self.shard_id} worker did not announce within "
                f"{self._spawn_timeout}s"
            ) from None
        finally:
            queue.close()
        if port < 0:
            proc.join(timeout=5.0)
            raise RuntimeError(f"shard {shard_id} worker failed to start: {error}")
        self._proc = proc
        self.port = port
        log.info("shard %d worker up on %s:%d", self.shard_id, self.spec.host, port)
        return self

    def restart_if_dead(self) -> bool:
        """Respawn a dead worker on its data dir; True when a restart ran.

        Fault specs are dropped from the respawned spec (module
        docstring); recovery comes from the WAL + checkpoints under the
        unchanged ``data_dir``.  A worker that is still alive is left
        alone — the caller saw a connection failure, not a death.
        """
        proc = self._proc
        if proc is not None:
            proc.join(timeout=0.5)
            if proc.is_alive():
                return False
        if self.spec.fault_specs:
            self.spec = replace(self.spec, fault_specs=())
        self.restarts += 1
        log.warning(
            "shard %d worker died; respawning (restart #%d)",
            self.shard_id,
            self.restarts,
        )
        self.start()
        return True

    def stop(self, *, timeout: float = 10.0) -> None:
        """Graceful shutdown (protocol op), escalating to terminate."""
        proc = self._proc
        if proc is None:
            return
        if proc.is_alive() and self.port is not None:
            _request_shutdown(self.spec.host, self.port, timeout=min(timeout, 5.0))
        proc.join(timeout=timeout)
        if proc.is_alive():
            log.warning("shard %d worker ignored shutdown; terminating", self.shard_id)
            proc.terminate()
            proc.join(timeout=5.0)
        self._proc = None


class ShardDeployment:
    """The :class:`ShardMap` plus one supervised worker per shard."""

    def __init__(
        self,
        graph: Graph,
        names: Optional[Sequence[Hashable]] = None,
        *,
        shards: int,
        seed: int = 0,
        engine: str = "anco",
        params: Optional[ANCParams] = None,
        data_dir: Optional[Union[str, Path]] = None,
        host: str = "127.0.0.1",
        batch_size: int = 64,
        max_latency: float = 0.05,
        max_pending: int = 4096,
        checkpoint_every: int = 2000,
        shed_watermark: int = 0,
        write_timeout: float = 30.0,
        fault_specs: Optional[Mapping[int, Sequence[FaultSpec]]] = None,
        fault_seed: int = 0,
        spawn_timeout: float = 60.0,
    ) -> None:
        self.shard_map = ShardMap.build(graph, shards, seed=seed)
        self.names: Optional[Tuple[Hashable, ...]] = (
            tuple(names) if names is not None else None
        )
        self.workers: List[ShardWorker] = []
        for shard in range(shards):
            shard_dir = (
                str(Path(data_dir) / f"shard-{shard}") if data_dir is not None else None
            )
            armed = tuple(fault_specs.get(shard, ())) if fault_specs else ()
            spec = WorkerSpec(
                shard_id=shard,
                n=graph.n,
                edges=self.shard_map.shard_edges[shard],
                names=self.names,
                engine=engine,
                params=params,
                host=host,
                data_dir=shard_dir,
                batch_size=batch_size,
                max_latency=max_latency,
                max_pending=max_pending,
                checkpoint_every=checkpoint_every,
                shed_watermark=shed_watermark,
                write_timeout=write_timeout,
                fault_specs=armed,
                fault_seed=fault_seed,
            )
            self.workers.append(ShardWorker(spec, spawn_timeout=spawn_timeout))
        self._started = False

    @property
    def shards(self) -> int:
        return self.shard_map.shards

    @property
    def started(self) -> bool:
        return self._started

    def start(self) -> "ShardDeployment":
        """Spawn every worker (idempotent); all ports known on return."""
        if self._started:
            return self
        started: List[ShardWorker] = []
        try:
            for worker in self.workers:
                worker.start()
                started.append(worker)
        except Exception:
            for worker in started:
                worker.stop(timeout=5.0)
            raise
        self._started = True
        return self

    def stop(self) -> None:
        """Stop every worker (graceful, then terminate)."""
        for worker in self.workers:
            worker.stop()
        self._started = False

    def endpoints(self) -> Dict[int, Tuple[str, int]]:
        """shard id → ``(host, port)`` of each live worker."""
        out: Dict[int, Tuple[str, int]] = {}
        for worker in self.workers:
            if worker.port is not None:
                out[worker.shard_id] = (worker.spec.host, worker.port)
        return out

    def total_restarts(self) -> int:
        return sum(worker.restarts for worker in self.workers)

    def __enter__(self) -> "ShardDeployment":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
