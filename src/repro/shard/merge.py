"""Merging scatter-gather results from shard workers into one answer.

Pure functions — no I/O, no router state — so merge semantics are unit
testable and documented in one place (docs/sharding.md):

* every node is reported by its **home shard** exactly once: each
  shard's clusters are filtered to its home nodes, which makes the
  merged output a partition of the node space even though every worker
  serves the full node space (see :mod:`repro.shard.shardmap`);
* merged cluster ids are namespaced ``s<shard>:<index>`` so a cluster
  is traceable to the worker that produced it;
* granularity levels must agree across shards — all workers share
  ``(n, seed)`` so the pyramid geometry is identical by construction,
  and a mismatch means misconfigured workers, not a mergeable answer;
* a cluster spanning a cross-shard edge appears once per endpoint's
  home shard (the documented partition artifact); the registry count
  rides along in the merged payload so callers can tell exact answers
  (``cross_edges == 0``) from approximations.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

__all__ = ["merge_clusters", "merge_stats", "namespaced_id"]

#: Per-shard stats fields that add up across the deployment.  Counters
#: only: events are events no matter which shard saw them.
_SUM_KEYS = ("ingested", "applied", "wal_entries", "replicas")
#: Fields where the deployment-wide value is the max (the stream clock).
_MAX_KEYS = ("t",)
#: Fields that are true if any shard reports true.
_ANY_KEYS = ("degraded",)
#: Gauge fields: point-in-time values that are meaningless summed (a
#: "queue depth of 7" that is really 6+1 describes no real queue), so
#: the merged view keeps them per-shard under ``<key>_per_shard`` and
#: reports the fleet-wide worst case under the plain key.
_GAUGE_KEYS = ("queue_depth",)


def namespaced_id(shard: int, index: int) -> str:
    """The merged id of worker ``shard``'s ``index``-th cluster."""
    return f"s{shard}:{index}"


def merge_clusters(
    payloads: Mapping[int, Mapping[str, object]],
    home_shard: Mapping[object, int],
    *,
    min_size: int = 1,
    cross_edge_count: int = 0,
) -> Dict[str, object]:
    """Merge per-shard ``clusters`` responses into one deployment answer.

    ``payloads`` maps shard id → the worker's ``clusters`` op response
    (queried with ``min_size=1``; the floor is applied *after* home
    filtering, or a cluster straddling the floor would flicker with
    shard count).  ``home_shard`` maps a protocol node label to its
    home shard.  Raises ``ValueError`` when shards disagree on the
    granularity geometry.
    """
    if not payloads:
        raise ValueError("merge_clusters needs at least one shard payload")
    levels = {int(p["level"]) for p in payloads.values()}  # type: ignore[arg-type]
    num_levels = {int(p["num_levels"]) for p in payloads.values()}  # type: ignore[arg-type]
    if len(levels) != 1 or len(num_levels) != 1:
        raise ValueError(
            f"shards disagree on granularity: levels={sorted(levels)} "
            f"num_levels={sorted(num_levels)}; identical (n, seed) should "
            f"make these equal — check worker configuration"
        )
    clusters: List[List[object]] = []
    cluster_ids: List[str] = []
    cluster_shards: List[int] = []
    for shard in sorted(payloads):
        raw = payloads[shard].get("clusters")
        if not isinstance(raw, list):
            raise ValueError(f"shard {shard} returned no cluster list")
        for index, cluster in enumerate(raw):
            assert isinstance(cluster, Sequence)
            homed = [label for label in cluster if home_shard.get(label) == shard]
            if len(homed) >= min_size and homed:
                clusters.append(list(homed))
                cluster_ids.append(namespaced_id(shard, index))
                cluster_shards.append(shard)
    return {
        "level": levels.pop(),
        "num_levels": num_levels.pop(),
        "t": max(float(p.get("t", 0.0)) for p in payloads.values()),  # type: ignore[arg-type]
        "applied": sum(int(p.get("applied", 0)) for p in payloads.values()),  # type: ignore[arg-type]
        "clusters": clusters,
        "cluster_ids": cluster_ids,
        "cluster_shards": cluster_shards,
        "cross_edges": cross_edge_count,
    }


def merge_stats(per_shard: Mapping[int, Mapping[str, object]]) -> Dict[str, object]:
    """Aggregate per-shard ``stats`` into one deployment view.

    Counts sum, the stream clock is the max, ``degraded`` is sticky
    across shards, gauges (``queue_depth``) are **never summed** — the
    plain key carries the worst single shard and ``<key>_per_shard``
    the labeled breakdown — and the raw per-shard documents ride along
    under ``"shards"`` keyed by shard id.
    """
    merged: Dict[str, object] = {}
    for key in _SUM_KEYS:
        merged[key] = sum(
            int(doc.get(key, 0) or 0)  # type: ignore[arg-type]
            for doc in per_shard.values()
        )
    for key in _GAUGE_KEYS:
        values = {
            str(shard): int(doc.get(key, 0) or 0)  # type: ignore[arg-type]
            for shard, doc in sorted(per_shard.items())
        }
        merged[key] = max(values.values(), default=0)
        merged[key + "_per_shard"] = values
    for key in _MAX_KEYS:
        merged[key] = max(
            (float(doc.get(key, 0.0) or 0.0) for doc in per_shard.values()),  # type: ignore[arg-type]
            default=0.0,
        )
    for key in _ANY_KEYS:
        merged[key] = any(bool(doc.get(key)) for doc in per_shard.values())
    merged["shards"] = {str(s): dict(per_shard[s]) for s in sorted(per_shard)}
    return merged
