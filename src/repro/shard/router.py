"""The scatter-gather front tier: one router over N shard workers.

The router speaks the **same TCP/JSON-lines protocol** as a single
:class:`~repro.service.server.ANCServer` — clients built against
:mod:`repro.service.client` work unchanged against a sharded
deployment.  Per request it either *routes* (ingest goes to the shard
that owns the activation's edge, ``local_cluster`` to the node's home
shard) or *scatter-gathers* (``clusters``/``stats``/``metrics``/``sync``
fan out to every worker and the answers are merged by
:mod:`repro.shard.merge`).

Envelope conventions: responses are stamped ``role="router"``,
``shards=N`` and ``epoch=0``.  Epoch 0 is deliberate — the client's
stale-epoch rotation only arms for ``0 < epoch``, so a router in an
endpoint list never trips replica fencing heuristics.

Failure handling per forward: transport errors are retried with
exponential backoff under the shard's link lock; between attempts the
router checks whether the worker *process* died and respawns it on the
same data directory (WAL recovery + the resent idempotency key make the
crash invisible to the client beyond latency).  A scatter that misses
``fanout_timeout`` turns into a typed ``RETRY_AFTER`` so clients back
off instead of hanging on one slow shard.

Chaos hook points (see :mod:`repro.faults.injectors`):

* ``router.forward`` — ingest-path forwards; ``drop`` severs the link
  *after* the request bytes leave (the genuinely ambiguous in-flight
  partition: the retry resends the same key and the worker's dedup map
  decides), ``delay`` stalls the send.
* ``router.scatter`` — fan-out queries; ``stall`` holds one shard's arm
  (``args: {"shard", "seconds"}``) so the scatter deadline trips.

The background stats poll (``stats_poll_interval``) bypasses both hooks
and is disabled in chaos runs, keeping ``at_count`` triggers
deterministic with respect to client-visible traffic only.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import logging
import os
import time
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..graph.graph import edge_key
from ..obs.export import chrome_trace, span_dicts
from ..obs.federate import (
    Source,
    federate_snapshots,
    render_prometheus_federated,
)
from ..obs.instruments import MetricsRegistry
from ..obs.propagate import TraceContext, current_context
from ..obs.trace import Observability, Tracer
from ..service.errors import (
    BadRequest,
    Overloaded,
    ServiceFault,
    Unavailable,
    UnknownOp,
    fault_response,
)
from .merge import merge_clusters, merge_stats
from .worker import ShardDeployment, ShardWorker

if TYPE_CHECKING:  # hook-only dependency (see repro.faults)
    from ..faults.plan import FaultAction, FaultPlan

__all__ = ["RouterConfig", "ShardRouter", "WorkerLink"]

log = logging.getLogger("repro.shard")

_LIMIT = 4 * 1024 * 1024

#: Transport-layer failures a forward retries through.
_TRANSPORT_ERRORS = (OSError, asyncio.IncompleteReadError, json.JSONDecodeError)


@dataclass
class RouterConfig:
    """Operational knobs of the router tier."""

    host: str = "127.0.0.1"
    #: Port to bind; 0 picks a free port (read :attr:`ShardRouter.port`).
    port: int = 0
    #: Deadline for a full scatter (all shards answered); 0 = no deadline.
    fanout_timeout: float = 10.0
    #: Per-attempt deadline of one worker request; 0 = no deadline.
    forward_timeout: float = 30.0
    #: Transport-failure retries per forward (worker respawn in between).
    forward_attempts: int = 4
    #: Base of the exponential backoff between forward attempts.
    retry_backoff: float = 0.05
    #: ``retry_after`` hint handed to clients when a scatter times out.
    shed_retry_after: float = 0.25
    #: Period of the background per-shard gauge refresh (0 = disabled;
    #: chaos runs disable it so fault triggers stay deterministic).
    stats_poll_interval: float = 0.0
    #: Evict a client whose response write does not drain in time (0 = never).
    write_timeout: float = 30.0
    #: Span ring-buffer capacity of the router tracer (``trace`` op).
    trace_capacity: int = 8192
    #: Chaos hooks for the router tier (worker plans travel in specs).
    faults: Optional["FaultPlan"] = None


class WorkerLink:
    """One serialized JSON-lines connection to one shard worker.

    Requests are funneled through a lock (the protocol is strictly
    request/response per connection), retried across transport failures
    and — when the worker process itself died — across a supervised
    respawn.  A request cancelled mid-flight (scatter deadline) aborts
    the connection: a response may already be in the pipe, and the next
    request must not read it as its own.
    """

    def __init__(
        self,
        worker: ShardWorker,
        config: RouterConfig,
        *,
        on_retry: Callable[[], None],
        on_restart: Callable[[], None],
    ) -> None:
        self.worker = worker
        self.shard_id = worker.shard_id
        self._config = config
        self._on_retry = on_retry
        self._on_restart = on_restart
        self._lock = asyncio.Lock()
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    def abort(self) -> None:
        """Drop the connection now (no handshake)."""
        if self._writer is not None:
            self._writer.transport.abort()
        self._reader = None
        self._writer = None

    async def aclose(self) -> None:
        writer = self._writer
        self._reader = None
        self._writer = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:  # anclint: disable=service-exception-discipline — close handshake racing a dead worker; the link is being discarded either way
                pass

    async def _connect(self) -> None:
        if self._writer is not None and not self._writer.is_closing():
            return
        port = self.worker.port
        if port is None:
            raise ConnectionError(f"shard {self.shard_id} worker has no port")
        self._reader, self._writer = await asyncio.open_connection(
            self.worker.spec.host, port, limit=_LIMIT
        )

    async def _respawn_if_dead(self) -> None:
        """Restart the worker process if it died (blocking → executor)."""
        loop = asyncio.get_running_loop()
        restarted = await loop.run_in_executor(None, self.worker.restart_if_dead)
        if restarted:
            self._on_restart()

    async def request(
        self,
        payload: Mapping[str, object],
        *,
        action: Optional["FaultAction"] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, object]:
        """Send one request; return the decoded response envelope.

        ``action`` is a fired ``router.forward`` fault to apply to the
        *first* attempt only (retries model the recovery path, not the
        fault).  Raises :class:`Unavailable` once attempts are spent.
        """
        data = json.dumps(payload).encode() + b"\n"
        deadline = timeout if timeout is not None else self._config.forward_timeout
        last_exc: Optional[BaseException] = None
        async with self._lock:
            for attempt in range(max(1, self._config.forward_attempts)):
                if attempt > 0:
                    self._on_retry()
                    await self._respawn_if_dead()
                    await asyncio.sleep(
                        self._config.retry_backoff * (2 ** (attempt - 1))
                    )
                try:
                    return await asyncio.wait_for(
                        self._attempt(data, action), deadline or None
                    )
                except asyncio.TimeoutError as exc:
                    self.abort()
                    last_exc = exc
                except _TRANSPORT_ERRORS as exc:
                    self.abort()
                    last_exc = exc
                except asyncio.CancelledError:
                    # A response may be in flight; never let the next
                    # request on this link read it.
                    self.abort()
                    raise
                action = None  # the injected fault fired; retries run clean
        raise Unavailable(
            f"shard {self.shard_id} unreachable after "
            f"{self._config.forward_attempts} attempts: "
            f"{type(last_exc).__name__}: {last_exc}"
        )

    async def _attempt(
        self, data: bytes, action: Optional["FaultAction"]
    ) -> Dict[str, object]:
        await self._connect()
        assert self._reader is not None and self._writer is not None
        if action is not None and action.kind == "delay":
            await asyncio.sleep(action.seconds())
        self._writer.write(data)
        await self._writer.drain()
        if action is not None and action.kind == "drop":
            # Partition after the bytes left: ambiguous in-flight write.
            self.abort()
            raise ConnectionResetError("injected router-worker partition")
        line = await self._reader.readline()
        if not line:
            raise ConnectionResetError(
                f"shard {self.shard_id} closed the connection mid-request"
            )
        response = json.loads(line)
        if not isinstance(response, dict):
            raise ValueError(f"shard {self.shard_id} sent a non-object response")
        return response


class ShardRouter:
    """Asyncio front tier multiplexing clients over a :class:`ShardDeployment`."""

    def __init__(
        self,
        deployment: ShardDeployment,
        *,
        config: Optional[RouterConfig] = None,
    ) -> None:
        self.deployment = deployment
        self.shard_map = deployment.shard_map
        self.config = config or RouterConfig()
        self._faults = self.config.faults

        self.metrics = MetricsRegistry()
        self.tracer = Tracer(enabled=False, capacity=self.config.trace_capacity)
        self.obs = Observability(registry=self.metrics, tracer=self.tracer)
        if self._faults is not None:
            self._faults.attach_obs(self.obs)

        self._c_requests = self.metrics.counter("router_requests")
        self._c_ingested = self.metrics.counter("router_ingested")
        self._c_retries = self.metrics.counter("router_forward_retries")
        self._c_timeouts = self.metrics.counter("router_scatter_timeouts")
        self._c_restarts = self.metrics.counter("router_worker_restarts")
        self._h_fanout = self.metrics.histogram("router_fanout_seconds")
        self._h_forward = self.metrics.histogram("router_forward_seconds")

        names = deployment.names
        self.names = list(names) if names is not None else None
        self._label_to_id: Dict[str, int] = (
            {str(name): i for i, name in enumerate(self.names)}
            if self.names is not None
            else {}
        )
        #: Protocol label → home shard, for the cluster merge.
        self._label_home: Dict[object, int] = {
            self._label(v): self.shard_map.shard_of(v)
            for v in range(self.shard_map.n)
        }

        self.links: List[WorkerLink] = [
            WorkerLink(
                worker,
                self.config,
                on_retry=self._c_retries.inc,
                on_restart=self._c_restarts.inc,
            )
            for worker in deployment.workers
        ]
        # Per-shard freshness gauges, refreshed from every scatter answer
        # (and the optional poll loop): applied, queue depth, and lag =
        # activations routed to the shard minus activations it applied.
        self._shard_applied: Dict[int, float] = {}
        self._shard_queue: Dict[int, float] = {}
        self._routed: Dict[int, int] = {s: 0 for s in range(self.shards)}
        for s in range(self.shards):
            self.metrics.gauge(
                f"shard{s}_applied",
                lambda s=s: self._shard_applied.get(s, 0.0),  # type: ignore[misc]
            )
            self.metrics.gauge(
                f"shard{s}_queue_depth",
                lambda s=s: self._shard_queue.get(s, 0.0),  # type: ignore[misc]
            )
            self.metrics.gauge(
                f"shard{s}_lag",
                lambda s=s: max(  # type: ignore[misc]
                    0.0, self._routed[s] - self._shard_applied.get(s, 0.0)
                ),
            )

        # Router-generated idempotency keys for unkeyed batches: a
        # forward retry after an in-flight failure must not double-apply.
        self._key_prefix = f"r:{os.getpid():x}-{int(time.time() * 1000) & 0xFFFFFF:x}"
        self._key_counter = itertools.count()

        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._background: List[asyncio.Task] = []
        self._stop = asyncio.Event()
        self._conns: Set[asyncio.StreamWriter] = set()

    # ------------------------------------------------------------------
    # Lifecycle (mirrors ANCServer so CLI/bench harnesses carry over)
    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        return self.shard_map.shards

    async def start(self) -> None:
        """Spawn the workers (if needed) and bind the router socket."""
        if not self.deployment.started:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self.deployment.start)
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=_LIMIT,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.stats_poll_interval > 0:
            self._background.append(
                asyncio.create_task(self._poll_loop(self.config.stats_poll_interval))
            )
        log.info(
            "router serving on %s:%d over %d shards",
            self.config.host,
            self.port,
            self.shards,
        )

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._stop.wait()
        await self._shutdown()

    async def run(self, *, announce: Optional[Callable[[str], object]] = None) -> None:
        """Start, announce shard endpoints + ``SERVING``, serve until stopped."""
        await self.start()
        emit = announce if announce is not None else lambda line: print(line, flush=True)
        for shard, (host, port) in sorted(self.deployment.endpoints().items()):
            emit(f"SHARD {shard} {host} {port}")
        emit(f"SERVING {self.config.host} {self.port}")
        await self.serve_forever()

    def request_stop(self) -> None:
        self._stop.set()

    async def stop(self) -> None:
        self.request_stop()
        if self._server is not None:
            await self._shutdown()

    async def _shutdown(self) -> None:
        if self._server is None:
            return
        server, self._server = self._server, None
        server.close()
        await server.wait_closed()
        for task in self._background:
            task.cancel()
        for task in self._background:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._background.clear()
        for link in self.links:
            await link.aclose()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.deployment.stop)
        for writer in list(self._conns):
            writer.transport.abort()

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._conns.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                response = await self._handle_request(line)
                writer.write(json.dumps(response).encode() + b"\n")
                try:
                    await asyncio.wait_for(
                        writer.drain(), self.config.write_timeout or None
                    )
                except asyncio.TimeoutError:
                    log.warning("evicting slow router client")
                    writer.transport.abort()
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):  # anclint: disable=service-exception-discipline — peer went away mid-conversation; closing our side below is the handling
            pass
        finally:
            self._conns.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # anclint: disable=service-exception-discipline — close handshake racing the peer's reset; nothing to map
                pass

    async def _handle_request(self, raw: bytes) -> Dict[str, object]:
        request_id: object = None
        self._c_requests.inc()
        try:
            request = json.loads(raw)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            request_id = request.get("id")
            op = request.get("op")
            handler = self._OPS.get(op)
            if handler is None:
                raise UnknownOp(f"unknown op {op!r}")
            # Bind the client's trace context around the whole dispatch:
            # a sampled request records one ``router.<op>`` span, and the
            # forwards it triggers stamp child contexts onto the worker
            # payloads (:meth:`_forward`) — the middle of the
            # client → router → worker causality chain.
            ctx = TraceContext.from_wire(request.get("trace"))
            with self.tracer.wire_span(f"router.{op}", ctx, op=str(op)):
                response = await handler(self, request)
            response.setdefault("ok", True)
        except Exception as exc:  # protocol boundary: map to a typed envelope
            response = fault_response(exc)
        # Router envelope: epoch 0 never trips client fencing heuristics
        # (module docstring); ``shards`` advertises the topology width.
        response["epoch"] = 0
        response["role"] = "router"
        response["shards"] = self.shards
        if request_id is not None:
            response["id"] = request_id
        return response

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def _worker_fault(self, shard: int, response: Mapping[str, object]) -> ServiceFault:
        """Map a worker's error envelope to the fault the client should see."""
        code = str(response.get("error_type", "INTERNAL"))
        message = f"shard {shard}: {response.get('error')}"
        if code == "RETRY_AFTER":
            hint = response.get("retry_after", 0.05)
            retry_after = (
                float(hint) if isinstance(hint, (int, float)) else 0.05
            )
            return Overloaded(message, retry_after=retry_after)
        if code in ("BAD_REQUEST", "UNKNOWN_OP"):
            return BadRequest(message)
        return Unavailable(message)

    def _note_answer(self, shard: int, response: Mapping[str, object]) -> None:
        applied = response.get("applied")
        if isinstance(applied, (int, float)):
            self._shard_applied[shard] = float(applied)

    async def _forward(
        self,
        shard: int,
        payload: Mapping[str, object],
        *,
        action: Optional["FaultAction"] = None,
    ) -> Dict[str, object]:
        """One routed worker call; raises the mapped typed fault on error."""
        start = time.monotonic()
        op = str(payload.get("op"))
        with self.tracer.span("router.forward", shard=shard, op=op):
            # Propagate the request's trace context into the worker hop:
            # a sampled context records a ``router.forward`` wire span
            # and the stamped child makes the worker's ``server.<op>``
            # span its child; an unsampled one propagates ids only.
            with self.tracer.wire_span("router.forward", op=op, shard=shard):
                bound = current_context()
                if bound is not None:
                    payload = {**payload, "trace": bound.to_wire()}
                response = await self.links[shard].request(payload, action=action)
        self._h_forward.observe(time.monotonic() - start)
        if not response.get("ok", False):
            raise self._worker_fault(shard, response)
        self._note_answer(shard, response)
        return response

    async def _scatter(
        self, op: str, payload: Mapping[str, object]
    ) -> Dict[int, Dict[str, object]]:
        """Fan ``payload`` out to every shard; all must answer in time."""
        stall_shard: Optional[int] = None
        stall_seconds = 0.0
        if self._faults is not None:
            action = self._faults.hit("router.scatter", op=op)
            if action is not None and action.kind == "stall":
                raw_shard = action.args.get("shard", 0)
                stall_shard = int(raw_shard) if isinstance(raw_shard, (int, str)) else 0
                stall_seconds = action.seconds(2.0)

        async def arm(shard: int) -> Dict[str, object]:
            if shard == stall_shard and stall_seconds > 0:
                # One shard gone slow: hold its arm past the deadline.
                await asyncio.sleep(stall_seconds)
            return await self._forward(shard, payload)

        start = time.monotonic()
        timeout = self.config.fanout_timeout or None
        with self.tracer.span("router.scatter", op=op, shards=self.shards):
            tasks = [asyncio.create_task(arm(s)) for s in range(self.shards)]
            try:
                answers = await asyncio.wait_for(asyncio.gather(*tasks), timeout)
            except asyncio.TimeoutError:
                self._c_timeouts.inc()
                raise Overloaded(
                    f"scatter {op!r} missed the {self.config.fanout_timeout}s "
                    f"deadline; one or more shards are slow",
                    retry_after=self.config.shed_retry_after,
                ) from None
            finally:
                for task in tasks:
                    if not task.done():
                        task.cancel()
        self._h_fanout.observe(time.monotonic() - start)
        return {shard: answer for shard, answer in enumerate(answers)}

    # ------------------------------------------------------------------
    # Node/edge resolution (router-side copy of the server's rules)
    # ------------------------------------------------------------------
    def _label(self, v: int) -> Union[str, int]:
        return str(self.names[v]) if self.names is not None else v

    def _resolve_node(self, raw: object) -> int:
        if self.names is not None:
            v = self._label_to_id.get(str(raw))
            if v is not None:
                return v
        if isinstance(raw, int) or (isinstance(raw, str) and raw.lstrip("-").isdigit()):
            v = int(raw)
            if 0 <= v < self.shard_map.n:
                return v
        raise ValueError(f"unknown node {raw!r}")

    def _resolve_item(self, item: object) -> Tuple[int, int, float]:
        if not isinstance(item, Sequence) or len(item) != 3:
            raise ValueError(f"activation must be [u, v, t], got {item!r}")
        u = self._resolve_node(item[0])
        v = self._resolve_node(item[1])
        if u == v:
            raise ValueError(f"self-activation on node {item[0]!r}")
        u, v = edge_key(u, v)
        return u, v, float(item[2])  # type: ignore[arg-type]

    def _ingest_action(self, shard: int) -> Optional["FaultAction"]:
        if self._faults is None:
            return None
        return self._faults.hit("router.forward", shard=shard)

    # ------------------------------------------------------------------
    # Op handlers
    # ------------------------------------------------------------------
    async def _op_ping(self, request: Dict) -> Dict[str, object]:
        answers = await self._scatter("ping", {"op": "ping"})
        return {
            "t": max(float(a.get("t", 0.0)) for a in answers.values()),  # type: ignore[arg-type]
            "applied": sum(int(a.get("applied", 0)) for a in answers.values()),  # type: ignore[arg-type]
        }

    async def _op_ingest(self, request: Dict) -> Dict[str, object]:
        u, v, t = self._resolve_item(
            [request.get("u"), request.get("v"), request.get("t", 0.0)]
        )
        shard = self.shard_map.shard_of_edge(u, v)  # ValueError if not an edge
        payload = {"op": "ingest", "u": u, "v": v, "t": t}
        response = await self._forward(
            shard, payload, action=self._ingest_action(shard)
        )
        self._c_ingested.inc()
        self._routed[shard] += 1
        out = {k: response[k] for k in ("seq", "t", "applied") if k in response}
        out["shard"] = shard
        return out

    async def _op_ingest_batch(self, request: Dict) -> Dict[str, object]:
        items = request.get("items")
        if not isinstance(items, list):
            raise ValueError("ingest_batch needs an 'items' list")
        key = request.get("key")
        if key is not None and not isinstance(key, str):
            raise ValueError("ingest_batch 'key' must be a string")
        # Validate and route *every* item before forwarding *any*: a bad
        # activation rejects the whole batch, same as a single server.
        by_shard: Dict[int, List[List[object]]] = {}
        for item in items:
            u, v, t = self._resolve_item(item)
            shard = self.shard_map.shard_of_edge(u, v)
            by_shard.setdefault(shard, []).append([u, v, t])
        if not by_shard:
            return {"accepted": 0, "seq": -1, "per_shard": {}}
        base_key = key if key is not None else (
            f"{self._key_prefix}:{next(self._key_counter)}"
        )

        async def send(shard: int, sub: List[List[object]]) -> Dict[str, object]:
            # Derived per-shard keys keep the client's exactly-once
            # guarantee: a retry of the same batch re-derives the same
            # sub-keys, and each worker dedups its own slice.
            payload = {
                "op": "ingest_batch",
                "items": sub,
                "key": f"{base_key}@s{shard}",
            }
            return await self._forward(
                shard, payload, action=self._ingest_action(shard)
            )

        shards = sorted(by_shard)
        results = await asyncio.gather(*(send(s, by_shard[s]) for s in shards))
        per_shard: Dict[str, object] = {}
        accepted = 0
        seq = -1
        for shard, response in zip(shards, results):
            count = len(by_shard[shard])
            self._routed[shard] += count
            accepted += int(response.get("accepted", count))  # type: ignore[arg-type]
            seq = max(seq, int(response.get("seq", -1)))  # type: ignore[arg-type]
            per_shard[str(shard)] = {
                "accepted": response.get("accepted", count),
                "seq": response.get("seq"),
            }
        self._c_ingested.inc(accepted)
        return {"accepted": accepted, "seq": seq, "per_shard": per_shard}

    async def _op_clusters(self, request: Dict) -> Dict[str, object]:
        min_size = int(request.get("min_size", 1))
        payload: Dict[str, object] = {"op": "clusters", "min_size": 1}
        if request.get("level") is not None:
            payload["level"] = request.get("level")
        answers = await self._scatter("clusters", payload)
        return merge_clusters(
            answers,
            self._label_home,
            min_size=min_size,
            cross_edge_count=len(self.shard_map.cross_edges),
        )

    async def _op_local(self, request: Dict) -> Dict[str, object]:
        node = self._resolve_node(request.get("node"))
        shard = self.shard_map.shard_of(node)
        payload: Dict[str, object] = {"op": "local", "node": node}
        if request.get("level") is not None:
            payload["level"] = request.get("level")
        response = await self._forward(shard, payload)
        out = {
            k: response[k]
            for k in ("level", "t", "applied", "cluster")
            if k in response
        }
        out["shard"] = shard
        return out

    async def _op_zoom_in(self, request: Dict) -> Dict[str, object]:
        level = int(request.get("level", 0))
        answers = await self._scatter("zoom_in", {"op": "zoom_in", "level": level})
        # Every worker starts tracking its own clamped level; answer with
        # the shallowest of them — the deepest level *all* shards serve.
        return {
            "level": min(int(a.get("level", level)) for a in answers.values())  # type: ignore[arg-type]
        }

    async def _op_zoom_out(self, request: Dict) -> Dict[str, object]:
        level = int(request.get("level", 0))
        answers = await self._scatter("zoom_out", {"op": "zoom_out", "level": level})
        return {
            "level": min(int(a.get("level", level)) for a in answers.values())  # type: ignore[arg-type]
        }

    async def _op_watch(self, request: Dict) -> Dict[str, object]:
        node = self._resolve_node(request.get("node"))
        shard = self.shard_map.shard_of(node)
        payload: Dict[str, object] = {"op": "watch", "node": node}
        if request.get("level") is not None:
            payload["level"] = request.get("level")
        response = await self._forward(shard, payload)
        out: Dict[str, object] = {
            k: response[k] for k in ("cluster",) if k in response
        }
        out["shard"] = shard
        return out

    async def _op_unwatch(self, request: Dict) -> Dict[str, object]:
        node = self._resolve_node(request.get("node"))
        shard = self.shard_map.shard_of(node)
        payload: Dict[str, object] = {"op": "unwatch", "node": node}
        if request.get("level") is not None:
            payload["level"] = request.get("level")
        await self._forward(shard, payload)
        return {"shard": shard}

    async def _op_changes(self, request: Dict) -> Dict[str, object]:
        answers = await self._scatter("changes", {"op": "changes"})
        merged: List[Dict[str, object]] = []
        for shard in sorted(answers):
            changes = answers[shard].get("changes")
            if isinstance(changes, list):
                merged.extend(c for c in changes if isinstance(c, dict))
        merged.sort(
            key=lambda c: (float(c.get("t", 0.0)), str(c.get("node", "")))  # type: ignore[arg-type]
        )
        return {"changes": merged}

    async def _op_snapshot(self, request: Dict) -> Dict[str, object]:
        answers = await self._scatter("snapshot", {"op": "snapshot"})
        return {
            "path": {
                str(shard): answer.get("path")
                for shard, answer in answers.items()
            },
            "applied": sum(
                int(a.get("applied", 0)) for a in answers.values()  # type: ignore[arg-type]
            ),
        }

    async def _op_sync(self, request: Dict) -> Dict[str, object]:
        answers = await self._scatter("sync", {"op": "sync"})
        return {
            "applied": sum(int(a.get("applied", 0)) for a in answers.values()),  # type: ignore[arg-type]
            "t": max(float(a.get("t", 0.0)) for a in answers.values()),  # type: ignore[arg-type]
        }

    async def _op_stats(self, request: Dict) -> Dict[str, object]:
        answers = await self._scatter("stats", {"op": "stats"})
        docs: Dict[int, Mapping[str, object]] = {}
        for shard, answer in answers.items():
            doc = answer.get("stats")
            docs[shard] = doc if isinstance(doc, Mapping) else {}
            if isinstance(doc, Mapping):
                depth = doc.get("queue_depth")
                if isinstance(depth, (int, float)):
                    self._shard_queue[shard] = float(depth)
                applied = doc.get("applied")
                if isinstance(applied, (int, float)):
                    self._shard_applied[shard] = float(applied)
        merged = merge_stats(docs)
        merged["cross_edges"] = len(self.shard_map.cross_edges)
        merged["worker_restarts"] = self.deployment.total_restarts()
        merged["shard_map_digest"] = self.shard_map.digest()
        return {"stats": merged}

    async def _metric_sources(
        self, rate_key: object
    ) -> Tuple[List[Source], Dict[str, object]]:
        """Labeled registry snapshots of the whole fleet (router first).

        The labels are what makes the federation sound: each worker's
        gauges stay distinct series (``shard="0"``, ``shard="1"``)
        instead of collapsing into a meaningless sum — see
        :mod:`repro.obs.federate`.
        """
        answers = await self._scatter(
            "metrics",
            {"op": "metrics", "rate_key": rate_key},
        )
        sources: List[Source] = [
            (
                {"role": "router"},
                self.metrics.snapshot(
                    rate_key=str(rate_key) if rate_key is not None else None
                ),
            )
        ]
        per_shard: Dict[str, object] = {}
        for shard in sorted(answers):
            doc = answers[shard].get("metrics")
            if isinstance(doc, Mapping):
                sources.append(({"role": "worker", "shard": str(shard)}, doc))
                per_shard[str(shard)] = doc
        return sources, per_shard

    async def _op_metrics(self, request: Dict) -> Dict[str, object]:
        rate_key = request.get("rate_key")
        sources, per_shard = await self._metric_sources(rate_key)
        return {
            "metrics": federate_snapshots(sources),
            "per_shard": per_shard,
        }

    async def _op_metrics_text(self, request: Dict) -> Dict[str, object]:
        """One federated Prometheus scrape for the whole fleet."""
        namespace = str(request.get("namespace", "anc"))
        sources, _ = await self._metric_sources(request.get("rate_key"))
        return {
            "text": render_prometheus_federated(sources, namespace=namespace)
        }

    async def _op_trace(self, request: Dict) -> Dict[str, object]:
        tracer = self.tracer
        action = str(request.get("action", "status"))
        if action == "start":
            sample = request.get("sample")
            if sample is not None:
                tracer.set_sample(float(sample))
            tracer.enable()
        elif action == "stop":
            tracer.disable()
        elif action == "clear":
            tracer.drain()
        elif action == "dump":
            spans = (
                tracer.drain() if bool(request.get("drain", True)) else tracer.spans()
            )
            return {"trace": chrome_trace(spans), **tracer.status()}
        elif action != "status":
            raise ValueError(
                f"unknown trace action {action!r}; expected "
                f"start/stop/status/dump/clear"
            )
        if action in ("start", "stop", "clear"):
            # Engine-span control is fleet-wide through the router: one
            # ``trace start`` arms every worker's tracer too.  (Wire
            # spans need none of this — the sampled flag in the request
            # envelope is their only switch.)
            await self._scatter("trace", dict(request, op="trace"))
        return dict(tracer.status())

    async def _op_trace_fetch(self, request: Dict) -> Dict[str, object]:
        """Every process's span buffer, merged-ready (fleet tracing).

        Returns ``{"processes": [...]}``: the router's own buffer plus
        one entry per worker, each ``{pid, process, spans}`` — exactly
        the input :func:`repro.obs.export.fleet_chrome_trace` takes.
        """
        drain = bool(request.get("drain", False))
        answers = await self._scatter(
            "trace_fetch", {"op": "trace_fetch", "drain": drain}
        )
        spans = self.tracer.drain() if drain else self.tracer.spans()
        processes: List[Dict[str, object]] = [
            {
                "pid": os.getpid(),
                "process": "router",
                "spans": span_dicts(spans, epoch_unix=self.tracer.epoch_unix),
            }
        ]
        for shard in sorted(answers):
            answer = answers[shard]
            processes.append(
                {
                    "pid": answer.get("pid"),
                    "process": answer.get("process", f"shard-{shard}"),
                    "spans": answer.get("spans", []),
                }
            )
        return {"processes": processes}

    async def _op_profile(self, request: Dict) -> Dict[str, object]:
        """Fan the profiler op out to every worker (status per shard)."""
        payload: Dict[str, object] = {
            "op": "profile",
            "action": str(request.get("action", "status")),
        }
        if request.get("hz") is not None:
            payload["hz"] = request.get("hz")
        answers = await self._scatter("profile", payload)
        return {
            "shards": {
                str(shard): {
                    key: answer[key]
                    for key in ("running", "hz", "samples", "stacks", "profile")
                    if key in answer
                }
                for shard, answer in answers.items()
            }
        }

    async def _op_shard_map(self, request: Dict) -> Dict[str, object]:
        doc = self.shard_map.to_dict()
        doc["workers"] = {
            str(worker.shard_id): {
                "host": worker.spec.host,
                "port": worker.port,
                "alive": worker.alive,
                "restarts": worker.restarts,
                "data_dir": worker.spec.data_dir,
            }
            for worker in self.deployment.workers
        }
        return {"shard_map": doc}

    async def _op_shutdown(self, request: Dict) -> Dict[str, object]:
        self.request_stop()
        return {"stopping": True}

    _OPS = {
        "ping": _op_ping,
        "ingest": _op_ingest,
        "ingest_batch": _op_ingest_batch,
        "clusters": _op_clusters,
        "local": _op_local,
        "zoom_in": _op_zoom_in,
        "zoom_out": _op_zoom_out,
        "watch": _op_watch,
        "unwatch": _op_unwatch,
        "changes": _op_changes,
        "snapshot": _op_snapshot,
        "sync": _op_sync,
        "stats": _op_stats,
        "metrics": _op_metrics,
        "metrics_text": _op_metrics_text,
        "trace": _op_trace,
        "trace_fetch": _op_trace_fetch,
        "profile": _op_profile,
        "shard_map": _op_shard_map,
        "shutdown": _op_shutdown,
    }

    # ------------------------------------------------------------------
    # Background freshness poll
    # ------------------------------------------------------------------
    async def _poll_loop(self, interval: float) -> None:
        """Refresh per-shard gauges off the client path (no fault hooks)."""
        while True:
            await asyncio.sleep(interval)
            for link in self.links:
                try:
                    response = await link.request({"op": "stats"})
                except ServiceFault:  # anclint: disable=service-exception-discipline — best-effort gauge refresh; the next tick retries and client traffic reports real faults
                    continue
                doc = response.get("stats")
                if isinstance(doc, Mapping):
                    applied = doc.get("applied")
                    if isinstance(applied, (int, float)):
                        self._shard_applied[link.shard_id] = float(applied)
                    depth = doc.get("queue_depth")
                    if isinstance(depth, (int, float)):
                        self._shard_queue[link.shard_id] = float(depth)
