"""Horizontal scale-out: partitioned engine workers behind one router.

The single-process service (:mod:`repro.service`) funnels every update
through one writer thread under one GIL.  This package multiplies that
stack instead of replacing it:

* :mod:`~repro.shard.shardmap` — deterministic partition of the
  relation graph across N shards (connected-component packing with a
  seeded-hash fallback) plus the cross-shard edge registry;
* :mod:`~repro.shard.worker` — one full ``ANCServer`` stack per shard
  in its own OS process (own WAL, checkpoints, and — if configured —
  replica chain), supervised with crash-respawn on the same data dir;
* :mod:`~repro.shard.router` — the asyncio scatter-gather front tier
  speaking the same TCP/JSON-lines protocol as a single server, so
  existing clients work unchanged;
* :mod:`~repro.shard.merge` — pure merge semantics for scattered
  answers (home-shard filtering, cluster-id namespacing);
* :mod:`~repro.shard.admin` — operator introspection (the
  ``repro-anc shardmap`` command).

Start a sharded deployment from the command line with
``repro-anc shard-serve --shards N``; see ``docs/sharding.md`` for the
topology, cross-shard edge semantics, and failure handling.
"""

from .admin import format_shard_doc, format_shardmap, shard_status
from .merge import merge_clusters, merge_stats, namespaced_id
from .router import RouterConfig, ShardRouter, WorkerLink
from .shardmap import CrossEdge, ShardMap
from .worker import ShardDeployment, ShardWorker, WorkerSpec, worker_main

__all__ = [
    "ShardMap",
    "CrossEdge",
    "ShardDeployment",
    "ShardWorker",
    "WorkerSpec",
    "worker_main",
    "ShardRouter",
    "RouterConfig",
    "WorkerLink",
    "merge_clusters",
    "merge_stats",
    "namespaced_id",
    "shard_status",
    "format_shard_doc",
    "format_shardmap",
]
