"""Deterministic partitioning of the relation graph across N shards.

The unit of placement is the *connected component*: activations only
ever touch one edge, clusters only ever grow along edges, so a
component that fits on one shard makes every activation — and every
cluster — shard-local.  :meth:`ShardMap.build` packs components onto
shards largest-first (LPT greedy onto the least-loaded shard), which
keeps shard sizes within one component of balanced.  A component too
large to balance (bigger than an even ``n / shards`` split) falls back
to a seeded-hash assignment of its individual nodes — placement stays
deterministic, but some of its edges now span shards.

Every such **cross-shard edge** is recorded in the map's registry with
a deterministically chosen *owner* shard (a seeded hash picks between
the two endpoint shards, so ownership spreads evenly).  Activations on
a cross edge are routed to the owner; queries report the registry so
callers can see which cluster boundaries are partition artifacts
(docs/sharding.md).

Each shard's worker serves the **full node space** with only its owned
edges (:meth:`ShardMap.shard_graph`).  That costs O(n) per shard in
node arrays but buys the property the oracle tests pin down: the
pyramid level count and seed sampling depend only on ``(n, seed)``, so
a shard engine's clusters over its own nodes are byte-identical to a
single-engine deployment's — scatter-gather merge is then exact on any
stream whose edges stay intra-shard.

Determinism is load-bearing: the router, every worker, the chaos
harness and the admin CLI each rebuild the map independently from
``(graph, shards, seed)`` and must agree.  All tie-breaking is by node
id and the hash is :func:`zlib.crc32` (stable across processes and
platforms, unlike ``hash()``).
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..graph.graph import Edge, Graph, edge_key
from ..graph.traversal import connected_components

__all__ = ["CrossEdge", "ShardMap"]

#: ``(u, v, owner_shard)`` — one registered cross-shard edge.
CrossEdge = Tuple[int, int, int]


def _stable_hash(seed: int, *parts: object) -> int:
    """A process-stable non-negative hash of ``(seed, *parts)``."""
    text = ":".join([str(seed), *(str(p) for p in parts)])
    return zlib.crc32(text.encode())


@dataclass(frozen=True)
class ShardMap:
    """A deterministic node→shard and edge→shard assignment.

    Build with :meth:`build`; the constructor is for deserialization
    and tests.  Equality compares the full assignment (two maps built
    from the same ``(graph, shards, seed)`` are ``==`` and share a
    :meth:`digest`).
    """

    n: int
    shards: int
    seed: int
    #: ``assignment[v]`` is node ``v``'s home shard.
    assignment: Tuple[int, ...]
    #: Edges owned by each shard, in relation-graph insertion order.
    shard_edges: Tuple[Tuple[Edge, ...], ...]
    #: Registry of edges whose endpoints live on different shards.
    cross_edges: Tuple[CrossEdge, ...]
    _edge_owner: Dict[Edge, int] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if len(self.assignment) != self.n:
            raise ValueError(
                f"assignment covers {len(self.assignment)} nodes, n={self.n}"
            )
        owner: Dict[Edge, int] = {}
        for shard, edges in enumerate(self.shard_edges):
            for edge in edges:
                owner[edge] = shard
        self._edge_owner.update(owner)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: Graph, shards: int, *, seed: int = 0) -> "ShardMap":
        """Partition ``graph`` across ``shards`` deterministically.

        Components are packed whole (largest first, onto the least
        loaded shard); a component larger than an even split is
        hash-scattered node by node, producing cross-shard edges.
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        n = graph.n
        assignment = [0] * n
        if shards > 1 and n > 0:
            components = connected_components(graph)
            limit = -(-n // shards)  # ceil: an even split's share
            packable: List[List[int]] = []
            oversized: List[List[int]] = []
            for comp in components:
                (oversized if len(comp) > limit else packable).append(comp)
            # LPT greedy: largest component first, ties by min node id.
            packable.sort(key=lambda c: (-len(c), c[0]))
            loads = [0] * shards
            for comp in packable:
                target = min(range(shards), key=lambda s: (loads[s], s))
                for v in comp:
                    assignment[v] = target
                loads[target] += len(comp)
            for comp in oversized:
                for v in comp:
                    target = _stable_hash(seed, "n", v) % shards
                    assignment[v] = target
                    loads[target] += 1

        shard_edges: List[List[Edge]] = [[] for _ in range(shards)]
        cross: List[CrossEdge] = []
        for u, v in graph.edges():
            su, sv = assignment[u], assignment[v]
            if su == sv:
                shard_edges[su].append((u, v))
            else:
                a, b = (su, sv) if su < sv else (sv, su)
                owner = a if _stable_hash(seed, "e", u, v) % 2 == 0 else b
                shard_edges[owner].append((u, v))
                cross.append((u, v, owner))
        return cls(
            n=n,
            shards=shards,
            seed=seed,
            assignment=tuple(assignment),
            shard_edges=tuple(tuple(edges) for edges in shard_edges),
            cross_edges=tuple(cross),
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_of(self, v: int) -> int:
        """The home shard of node ``v``."""
        if not 0 <= v < self.n:
            raise ValueError(f"node {v} out of range for n={self.n}")
        return self.assignment[v]

    def shard_of_edge(self, u: int, v: int) -> int:
        """The shard that owns (and ingests activations on) edge ``{u, v}``."""
        owner = self._edge_owner.get(edge_key(u, v))
        if owner is None:
            raise ValueError(f"({u}, {v}) is not a relation edge")
        return owner

    def shard_graph(self, shard: int) -> Graph:
        """Shard ``shard``'s serving graph: all ``n`` nodes, its edges only.

        The full node space keeps pyramid geometry identical across
        shards and to a single-engine deployment (module docstring).
        """
        if not 0 <= shard < self.shards:
            raise ValueError(f"shard {shard} out of range for {self.shards}")
        return Graph(self.n, self.shard_edges[shard])

    def home_nodes(self, shard: int) -> List[int]:
        """Nodes whose home is ``shard`` (sorted)."""
        return [v for v, s in enumerate(self.assignment) if s == shard]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def node_counts(self) -> List[int]:
        """Nodes homed per shard."""
        counts = [0] * self.shards
        for s in self.assignment:
            counts[s] += 1
        return counts

    def edge_counts(self) -> List[int]:
        """Edges owned per shard (cross edges count for their owner)."""
        return [len(edges) for edges in self.shard_edges]

    def digest(self) -> str:
        """SHA-256 over the canonical JSON of the assignment.

        Same ``(graph, shards, seed)`` ⇒ same digest in every process;
        the admin op exposes it so operators can verify that the router
        and all workers agree on the topology.
        """
        doc = json.dumps(
            {
                "n": self.n,
                "shards": self.shards,
                "seed": self.seed,
                "assignment": list(self.assignment),
                "cross": [list(e) for e in self.cross_edges],
            },
            sort_keys=True,
        )
        return hashlib.sha256(doc.encode()).hexdigest()

    def to_dict(self, *, max_cross: Optional[int] = 200) -> Dict[str, object]:
        """JSON-able summary for the ``shard_map`` admin op.

        The cross-edge registry is truncated to ``max_cross`` entries
        (``cross_edge_count`` always carries the true total).
        """
        cross = list(self.cross_edges)
        truncated = max_cross is not None and len(cross) > max_cross
        if truncated:
            assert max_cross is not None
            cross = cross[:max_cross]
        return {
            "n": self.n,
            "shards": self.shards,
            "seed": self.seed,
            "digest": self.digest(),
            "nodes_per_shard": self.node_counts(),
            "edges_per_shard": self.edge_counts(),
            "cross_edge_count": len(self.cross_edges),
            "cross_edges": [list(e) for e in cross],
            "cross_edges_truncated": truncated,
        }
