"""The lint engine: walk files, run rules, apply pragma suppressions."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from .astutils import import_map, link_parents
from .cache import LintCache
from .findings import Finding
from .pragmas import Pragma, Suppressions, parse_pragmas
from .project import ModuleSummary, ProjectModel, summarize_module
from .registry import Rule, all_rules, get_rule, split_selection

PathLike = Union[str, Path]

#: Pseudo-rule name for files that do not parse; it participates in
#: reports and exit codes but cannot be selected or pragma-suppressed.
PARSE_ERROR = "parse-error"

#: Pseudo-rule name for pragmas that violate the reason policy.
BAD_PRAGMA = "pragma-without-reason"

_SKIP_DIRS = {"__pycache__", ".git", ".hg", ".venv", "venv", "build", "dist"}


class FileContext:
    """Everything a rule may look at for one file."""

    def __init__(self, path: str, module: str, source: str, tree: ast.Module) -> None:
        self.path = path
        #: Dotted module name relative to the package root, e.g.
        #: ``repro.core.decay`` — rules scope themselves by this.
        self.module = module
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        #: Local name -> qualified name, from the module's imports.
        self.imports = import_map(tree)
        link_parents(tree)

    def in_package(self, *prefixes: str) -> bool:
        """True when the module sits at or under any dotted prefix."""
        return any(
            self.module == p or self.module.startswith(p + ".") for p in prefixes
        )


@dataclass
class LintResult:
    """Aggregate outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    #: rule -> count of findings suppressed by pragmas.
    suppressed: Dict[str, int] = field(default_factory=dict)
    files: int = 0

    def merge(self, other: "LintResult") -> None:
        """Fold another result (one more file) into this one."""
        self.findings.extend(other.findings)
        for name, count in other.suppressed.items():
            self.suppressed[name] = self.suppressed.get(name, 0) + count
        self.files += other.files

    @property
    def ok(self) -> bool:
        """True when the run produced no (unsuppressed) findings."""
        return not self.findings

    def finalize(self) -> "LintResult":
        """Sort findings into the deterministic report order."""
        self.findings.sort()
        return self


def module_name_for(path: Path, package: str = "repro") -> str:
    """Infer the dotted module name from a file path.

    Everything from the last path component named ``package`` onwards
    forms the module (``src/repro/core/decay.py`` -> ``repro.core.decay``);
    files outside the package are named by their stem, which keeps the
    package-scoped rules from firing on scripts, tests and benchmarks.
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if package in parts:
        start = len(parts) - 1 - parts[::-1].index(package)
        parts = parts[start:]
        return ".".join(parts) if parts else package
    return parts[-1] if parts else "<unknown>"


def iter_python_files(paths: Sequence[PathLike]) -> Iterator[Path]:
    """Expand files/directories into the ``.py`` files to lint, sorted."""
    seen = set()
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            candidates: Iterator[Path] = (
                p
                for p in sorted(root.rglob("*.py"))
                if not (_SKIP_DIRS & set(p.parts))
            )
        else:
            candidates = iter([root])
        for path in candidates:
            if path not in seen:
                seen.add(path)
                yield path


def _select_rules(select: Optional[Sequence[str]]) -> List[Rule]:
    if select is None:
        return all_rules()
    return [get_rule(name) for name in select]


def check_source(
    source: str,
    *,
    path: str = "<snippet>",
    module: str = "<snippet>",
    select: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint one source string (the test fixtures' entry point)."""
    result = LintResult(files=1)
    suppressions = parse_pragmas(source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule=PARSE_ERROR,
                message=f"file does not parse: {exc.msg}",
            )
        )
        return result.finalize()

    ctx = FileContext(path=path, module=module, source=source, tree=tree)
    for rule in _select_rules(select):
        for node, message in rule.check(ctx):
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
            if suppressions.suppress(rule.name, line):
                continue
            result.findings.append(
                Finding(path=path, line=line, col=col, rule=rule.name, message=message)
            )
    for pragma in suppressions.missing_reasons():
        result.findings.append(
            Finding(
                path=path,
                line=pragma.line,
                col=0,
                rule=BAD_PRAGMA,
                message=(
                    "exemption pragma must carry a reason: "
                    "# anclint: disable=RULE — why this is safe"
                ),
            )
        )
    result.suppressed = dict(suppressions.applied)
    return result.finalize()


# Alias used by tests and docs; ``lint_source`` reads better at call sites.
lint_source = check_source


def check_file(
    path: PathLike,
    *,
    select: Optional[Sequence[str]] = None,
    package: str = "repro",
) -> LintResult:
    """Lint one file from disk."""
    file_path = Path(path)
    try:
        source = file_path.read_text(encoding="utf-8")
    except OSError as exc:
        result = LintResult(files=1)
        result.findings.append(
            Finding(
                path=str(file_path),
                line=1,
                col=0,
                rule=PARSE_ERROR,
                message=f"cannot read file: {exc}",
            )
        )
        return result.finalize()
    return check_source(
        source,
        path=str(file_path),
        module=module_name_for(file_path, package=package),
        select=select,
    )


def _lint_file_full(
    file_path: Path, package: str
) -> Tuple[List[Finding], Suppressions, Optional[ModuleSummary]]:
    """Run *all* per-file rules on one file and summarize it.

    The full-rule product is what the incremental cache stores; callers
    filter findings/suppressions down to the selected rule set.
    """
    path = str(file_path)
    try:
        source = file_path.read_text(encoding="utf-8")
    except OSError as exc:
        finding = Finding(
            path=path, line=1, col=0, rule=PARSE_ERROR,
            message=f"cannot read file: {exc}",
        )
        return [finding], Suppressions(), None
    suppressions = parse_pragmas(source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        finding = Finding(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule=PARSE_ERROR,
            message=f"file does not parse: {exc.msg}",
        )
        return [finding], suppressions, None
    module = module_name_for(file_path, package=package)
    ctx = FileContext(path=path, module=module, source=source, tree=tree)
    findings: List[Finding] = []
    for rule in all_rules():
        for node, message in rule.check(ctx):
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
            if suppressions.suppress(rule.name, line):
                continue
            findings.append(
                Finding(path=path, line=line, col=col, rule=rule.name, message=message)
            )
    for pragma in suppressions.missing_reasons():
        findings.append(
            Finding(
                path=path,
                line=pragma.line,
                col=0,
                rule=BAD_PRAGMA,
                message=(
                    "exemption pragma must carry a reason: "
                    "# anclint: disable=RULE — why this is safe"
                ),
            )
        )
    summary = summarize_module(module, path, tree)
    return findings, suppressions, summary


def build_project(
    paths: Sequence[PathLike], *, package: str = "repro"
) -> ProjectModel:
    """Parse and summarize every file under ``paths`` into a ProjectModel."""
    summaries: List[ModuleSummary] = []
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(file_path))
        except (OSError, SyntaxError):
            continue
        module = module_name_for(file_path, package=package)
        summaries.append(summarize_module(module, str(file_path), tree))
    return ProjectModel(summaries)


#: Pseudo-rules are always reported regardless of ``--select``.
_PSEUDO_RULES = frozenset({PARSE_ERROR, BAD_PRAGMA})


def lint_paths(
    paths: Sequence[PathLike],
    *,
    select: Optional[Sequence[str]] = None,
    package: str = "repro",
    cache: Optional["LintCache"] = None,
) -> LintResult:
    """Lint every Python file under ``paths``; the CLI's workhorse.

    Runs the per-file rules (through the incremental ``cache`` when one is
    given), then stitches the per-module summaries into a
    :class:`ProjectModel` and runs the selected whole-program rules over
    it.  ``select`` may name rules from either catalogue.
    """
    per_file_rules, wp_rules = split_selection(select)
    selected_names = {r.name for r in per_file_rules} | _PSEUDO_RULES
    total = LintResult()
    summaries: List[ModuleSummary] = []
    pragmas_by_path: Dict[str, Suppressions] = {}
    for file_path in iter_python_files(paths):
        entry = cache.lookup(file_path) if cache is not None else None
        if entry is not None:
            findings = entry.findings
            suppressed = entry.suppressed
            pragmas: List[Pragma] = entry.pragmas
            summary = entry.summary
        else:
            findings, live_supp, summary = _lint_file_full(file_path, package)
            suppressed = dict(live_supp.applied)
            pragmas = list(live_supp.pragmas)
            if cache is not None:
                cache.store(file_path, findings, suppressed, pragmas, summary)
        part = LintResult(files=1)
        part.findings = [f for f in findings if f.rule in selected_names]
        part.suppressed = {
            name: count
            for name, count in suppressed.items()
            if name in selected_names
        }
        total.merge(part)
        if summary is not None:
            summaries.append(summary)
            pragmas_by_path[summary.path] = Suppressions(pragmas=list(pragmas))
    if wp_rules:
        model = ProjectModel(summaries)
        for wp_rule in wp_rules:
            for path, line, col, message in wp_rule.check(model):
                supp = pragmas_by_path.get(path)
                if supp is not None and supp.suppress(wp_rule.name, line):
                    continue
                total.findings.append(
                    Finding(
                        path=path, line=line, col=col,
                        rule=wp_rule.name, message=message,
                    )
                )
        for supp in pragmas_by_path.values():
            for name, count in supp.applied.items():
                total.suppressed[name] = total.suppressed.get(name, 0) + count
    if cache is not None:
        cache.save()
    return total.finalize()


__all__ = [
    "BAD_PRAGMA",
    "FileContext",
    "LintResult",
    "PARSE_ERROR",
    "build_project",
    "check_file",
    "check_source",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "module_name_for",
]
