"""The lint engine: walk files, run rules, apply pragma suppressions."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from .astutils import import_map, link_parents
from .findings import Finding
from .pragmas import Suppressions, parse_pragmas
from .registry import Rule, all_rules, get_rule

PathLike = Union[str, Path]

#: Pseudo-rule name for files that do not parse; it participates in
#: reports and exit codes but cannot be selected or pragma-suppressed.
PARSE_ERROR = "parse-error"

#: Pseudo-rule name for pragmas that violate the reason policy.
BAD_PRAGMA = "pragma-without-reason"

_SKIP_DIRS = {"__pycache__", ".git", ".hg", ".venv", "venv", "build", "dist"}


class FileContext:
    """Everything a rule may look at for one file."""

    def __init__(self, path: str, module: str, source: str, tree: ast.Module) -> None:
        self.path = path
        #: Dotted module name relative to the package root, e.g.
        #: ``repro.core.decay`` — rules scope themselves by this.
        self.module = module
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        #: Local name -> qualified name, from the module's imports.
        self.imports = import_map(tree)
        link_parents(tree)

    def in_package(self, *prefixes: str) -> bool:
        """True when the module sits at or under any dotted prefix."""
        return any(
            self.module == p or self.module.startswith(p + ".") for p in prefixes
        )


@dataclass
class LintResult:
    """Aggregate outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    #: rule -> count of findings suppressed by pragmas.
    suppressed: Dict[str, int] = field(default_factory=dict)
    files: int = 0

    def merge(self, other: "LintResult") -> None:
        """Fold another result (one more file) into this one."""
        self.findings.extend(other.findings)
        for name, count in other.suppressed.items():
            self.suppressed[name] = self.suppressed.get(name, 0) + count
        self.files += other.files

    @property
    def ok(self) -> bool:
        """True when the run produced no (unsuppressed) findings."""
        return not self.findings

    def finalize(self) -> "LintResult":
        """Sort findings into the deterministic report order."""
        self.findings.sort()
        return self


def module_name_for(path: Path, package: str = "repro") -> str:
    """Infer the dotted module name from a file path.

    Everything from the last path component named ``package`` onwards
    forms the module (``src/repro/core/decay.py`` -> ``repro.core.decay``);
    files outside the package are named by their stem, which keeps the
    package-scoped rules from firing on scripts, tests and benchmarks.
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if package in parts:
        start = len(parts) - 1 - parts[::-1].index(package)
        parts = parts[start:]
        return ".".join(parts) if parts else package
    return parts[-1] if parts else "<unknown>"


def iter_python_files(paths: Sequence[PathLike]) -> Iterator[Path]:
    """Expand files/directories into the ``.py`` files to lint, sorted."""
    seen = set()
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            candidates: Iterator[Path] = (
                p
                for p in sorted(root.rglob("*.py"))
                if not (_SKIP_DIRS & set(p.parts))
            )
        else:
            candidates = iter([root])
        for path in candidates:
            if path not in seen:
                seen.add(path)
                yield path


def _select_rules(select: Optional[Sequence[str]]) -> List[Rule]:
    if select is None:
        return all_rules()
    return [get_rule(name) for name in select]


def check_source(
    source: str,
    *,
    path: str = "<snippet>",
    module: str = "<snippet>",
    select: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint one source string (the test fixtures' entry point)."""
    result = LintResult(files=1)
    suppressions = parse_pragmas(source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule=PARSE_ERROR,
                message=f"file does not parse: {exc.msg}",
            )
        )
        return result.finalize()

    ctx = FileContext(path=path, module=module, source=source, tree=tree)
    for rule in _select_rules(select):
        for node, message in rule.check(ctx):
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
            if suppressions.suppress(rule.name, line):
                continue
            result.findings.append(
                Finding(path=path, line=line, col=col, rule=rule.name, message=message)
            )
    for pragma in suppressions.missing_reasons():
        result.findings.append(
            Finding(
                path=path,
                line=pragma.line,
                col=0,
                rule=BAD_PRAGMA,
                message=(
                    "exemption pragma must carry a reason: "
                    "# anclint: disable=RULE — why this is safe"
                ),
            )
        )
    result.suppressed = dict(suppressions.applied)
    return result.finalize()


# Alias used by tests and docs; ``lint_source`` reads better at call sites.
lint_source = check_source


def check_file(
    path: PathLike,
    *,
    select: Optional[Sequence[str]] = None,
    package: str = "repro",
) -> LintResult:
    """Lint one file from disk."""
    file_path = Path(path)
    try:
        source = file_path.read_text(encoding="utf-8")
    except OSError as exc:
        result = LintResult(files=1)
        result.findings.append(
            Finding(
                path=str(file_path),
                line=1,
                col=0,
                rule=PARSE_ERROR,
                message=f"cannot read file: {exc}",
            )
        )
        return result.finalize()
    return check_source(
        source,
        path=str(file_path),
        module=module_name_for(file_path, package=package),
        select=select,
    )


def lint_paths(
    paths: Sequence[PathLike],
    *,
    select: Optional[Sequence[str]] = None,
    package: str = "repro",
) -> LintResult:
    """Lint every Python file under ``paths``; the CLI's workhorse."""
    total = LintResult()
    for file_path in iter_python_files(paths):
        total.merge(check_file(file_path, select=select, package=package))
    return total.finalize()


__all__ = [
    "BAD_PRAGMA",
    "FileContext",
    "LintResult",
    "PARSE_ERROR",
    "check_file",
    "check_source",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "module_name_for",
]
