"""AST-based invariant linter for the ANC engines and service layer.

The correctness of the PR 1 service rests on conventions the runtime
cannot check: engines are mutated only from the writer thread, engine
code never reads the wall clock (byte-identical kill -9 recovery depends
on data-derived timestamps), and :class:`~repro.service.engine_host.
PublishedState` snapshots are never mutated by readers.  This package
encodes those disciplines — plus a handful of generic Python hygiene
rules — as machine-checked AST rules over the source tree.

Entry points:

* ``repro-anc lint [paths...]`` — the CLI gate (see :mod:`repro.cli`);
* :func:`lint_paths` / :func:`lint_source` — the library API;
* :func:`all_rules` — the rule catalogue (see ``docs/static-analysis.md``).

Findings can be suppressed per line or per file with an exemption
pragma carrying a reason::

    if g != 1.0:  # anclint: disable=float-equality — exact no-op guard

Suppressions are counted and reported, never silent.  Everything here is
pure stdlib ``ast`` — no new runtime dependencies.
"""

from .engine import FileContext, LintResult, iter_python_files, lint_paths, lint_source
from .findings import Finding
from .pragmas import Suppressions, parse_pragmas
from .registry import Rule, all_rules, get_rule, rule
from .reporters import render_json, render_text

# Importing the rule modules registers every built-in rule.
from . import rules as _rules  # noqa: F401  (import for side effect)

__all__ = [
    "FileContext",
    "Finding",
    "LintResult",
    "Rule",
    "Suppressions",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "parse_pragmas",
    "render_json",
    "render_text",
    "rule",
]
