"""AST-based invariant linter for the ANC engines and service layer.

The correctness of the PR 1 service rests on conventions the runtime
cannot check: engines are mutated only from the writer thread, engine
code never reads the wall clock (byte-identical kill -9 recovery depends
on data-derived timestamps), and :class:`~repro.service.engine_host.
PublishedState` snapshots are never mutated by readers.  This package
encodes those disciplines — plus a handful of generic Python hygiene
rules — as machine-checked AST rules over the source tree.

Entry points:

* ``repro-anc lint [paths...]`` — the CLI gate (see :mod:`repro.cli`);
* :func:`lint_paths` / :func:`lint_source` — the library API;
* :func:`all_rules` — the rule catalogue (see ``docs/static-analysis.md``).

Findings can be suppressed per line or per file with an exemption
pragma carrying a reason::

    if g != 1.0:  # anclint: disable=float-equality — exact no-op guard

Suppressions are counted and reported, never silent.  Everything here is
pure stdlib ``ast`` — no new runtime dependencies.
"""

from .baseline import apply_baseline, load_baseline, save_baseline
from .cache import LintCache, rules_digest
from .engine import (
    FileContext,
    LintResult,
    build_project,
    iter_python_files,
    lint_paths,
    lint_source,
)
from .findings import Finding
from .pragmas import Suppressions, parse_pragmas
from .project import ModuleSummary, ProjectModel, summarize_module
from .registry import (
    Rule,
    WholeProgramRule,
    all_rules,
    all_whole_program_rules,
    get_rule,
    rule,
    whole_program_rule,
)
from .reporters import render_json, render_sarif, render_text

# Importing the rule modules registers every built-in rule.
from . import rules as _rules  # noqa: F401  (import for side effect)

__all__ = [
    "FileContext",
    "Finding",
    "LintCache",
    "LintResult",
    "ModuleSummary",
    "ProjectModel",
    "Rule",
    "Suppressions",
    "WholeProgramRule",
    "all_rules",
    "all_whole_program_rules",
    "apply_baseline",
    "build_project",
    "get_rule",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "parse_pragmas",
    "render_json",
    "render_sarif",
    "render_text",
    "rule",
    "rules_digest",
    "save_baseline",
    "summarize_module",
    "whole_program_rule",
]
