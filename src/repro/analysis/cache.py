"""Incremental lint cache: skip re-parsing files that have not changed.

The cache maps file paths to an (mtime, size, sha256) stamp plus the
per-file lint products: findings from *all* per-file rules, applied and
declared pragmas, and the :class:`~repro.analysis.project.ModuleSummary`
the whole-program pass needs.  A file whose mtime+size match is reused
immediately; on mtime change the sha256 decides (touch without edit stays
cached).  The cache key also folds in a digest of the registered rule
names and the engine cache-format version, so adding a rule or upgrading
the format invalidates everything at once.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .findings import Finding
from .pragmas import Pragma
from .project import ModuleSummary

CACHE_VERSION = 1

__all__ = ["CACHE_VERSION", "CacheEntry", "LintCache", "rules_digest"]


def rules_digest(rule_names: List[str]) -> str:
    """A stable digest of the active rule set (any change invalidates)."""
    payload = json.dumps(sorted(rule_names)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


def _sha256_file(path: Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(65536), b""):
            h.update(chunk)
    return h.hexdigest()


@dataclass
class CacheEntry:
    """Everything cached for one file."""

    mtime_ns: int
    size: int
    sha256: str
    findings: List[Finding] = field(default_factory=list)
    suppressed: Dict[str, int] = field(default_factory=dict)
    pragmas: List[Pragma] = field(default_factory=list)
    summary: Optional[ModuleSummary] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mtime_ns": self.mtime_ns,
            "size": self.size,
            "sha256": self.sha256,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": dict(self.suppressed),
            "pragmas": [
                {
                    "line": p.line,
                    "rules": list(p.rules),
                    "reason": p.reason,
                    "file_level": p.file_level,
                }
                for p in self.pragmas
            ],
            "summary": self.summary.to_dict() if self.summary is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CacheEntry":
        return cls(
            mtime_ns=data["mtime_ns"],
            size=data["size"],
            sha256=data["sha256"],
            findings=[
                Finding(
                    path=f["path"],
                    line=f["line"],
                    col=f["col"],
                    rule=f["rule"],
                    message=f["message"],
                )
                for f in data["findings"]
            ],
            suppressed=dict(data["suppressed"]),
            pragmas=[
                Pragma(
                    line=p["line"],
                    rules=tuple(p["rules"]),
                    reason=p["reason"],
                    file_level=p["file_level"],
                )
                for p in data["pragmas"]
            ],
            summary=(
                ModuleSummary.from_dict(data["summary"])
                if data["summary"] is not None
                else None
            ),
        )


class LintCache:
    """A JSON-file-backed map of path -> :class:`CacheEntry`."""

    def __init__(self, path: Optional[Path], digest: str) -> None:
        self.path = path
        self.digest = digest
        self.entries: Dict[str, CacheEntry] = {}
        self.hits = 0
        self.misses = 0
        self._dirty = False
        if path is not None and path.exists():
            try:
                raw = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                return
            if (
                raw.get("version") == CACHE_VERSION
                and raw.get("digest") == digest
            ):
                for key, entry in raw.get("entries", {}).items():
                    try:
                        self.entries[key] = CacheEntry.from_dict(entry)
                    except (KeyError, TypeError):
                        continue

    def lookup(self, path: Path) -> Optional[CacheEntry]:
        """The cached entry for ``path`` when the file is unchanged."""
        key = str(path)
        entry = self.entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        try:
            stat = os.stat(path)
        except OSError:
            self.misses += 1
            return None
        if stat.st_mtime_ns == entry.mtime_ns and stat.st_size == entry.size:
            self.hits += 1
            return entry
        if stat.st_size == entry.size and _sha256_file(path) == entry.sha256:
            # Touched but not edited: refresh the stamp, keep the entry.
            entry.mtime_ns = stat.st_mtime_ns
            self._dirty = True
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def store(
        self,
        path: Path,
        findings: List[Finding],
        suppressed: Dict[str, int],
        pragmas: List[Pragma],
        summary: Optional[ModuleSummary],
    ) -> None:
        try:
            stat = os.stat(path)
        except OSError:
            return
        self.entries[str(path)] = CacheEntry(
            mtime_ns=stat.st_mtime_ns,
            size=stat.st_size,
            sha256=_sha256_file(path),
            findings=list(findings),
            suppressed=dict(suppressed),
            pragmas=list(pragmas),
            summary=summary,
        )
        self._dirty = True

    def stats(self) -> Tuple[int, int]:
        return self.hits, self.misses

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        payload = {
            "version": CACHE_VERSION,
            "digest": self.digest,
            "entries": {k: e.to_dict() for k, e in self.entries.items()},
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        os.replace(tmp, self.path)
