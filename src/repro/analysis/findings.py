"""The finding record every rule yields and every reporter renders."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordered by (path, line, col, rule) so reports are deterministic
    regardless of rule registration or file-walk order.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def location(self) -> str:
        """``path:line:col`` — the clickable prefix of a report line."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-reporter payload for this finding."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


__all__ = ["Finding"]
