"""Render a :class:`~repro.analysis.engine.LintResult` as text, JSON or SARIF."""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .engine import BAD_PRAGMA, PARSE_ERROR, LintResult
from .registry import all_rules, all_whole_program_rules


def render_text(result: LintResult) -> str:
    """The human report: one ``path:line:col: rule: message`` per finding,
    then a summary line that also accounts for pragma exemptions."""
    lines = [
        f"{f.location()}: {f.rule}: {f.message}" for f in result.findings
    ]
    suppressed_total = sum(result.suppressed.values())
    noun = "finding" if len(result.findings) == 1 else "findings"
    summary = (
        f"{len(result.findings)} {noun} in {result.files} file"
        f"{'' if result.files == 1 else 's'}"
    )
    if suppressed_total:
        per_rule = ", ".join(
            f"{name} x{count}" for name, count in sorted(result.suppressed.items())
        )
        summary += f" ({suppressed_total} suppressed by pragma: {per_rule})"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The machine report (stable keys, sorted findings)."""
    payload: Dict[str, Any] = {
        "files": result.files,
        "findings": [f.to_dict() for f in result.findings],
        "suppressed": dict(sorted(result.suppressed.items())),
        "ok": result.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_rules() -> List[Dict[str, Any]]:
    """Rule metadata for the SARIF tool.driver block: both catalogues
    plus the always-on pseudo-rules and the baseline pseudo-rule."""
    meta: List[Dict[str, Any]] = []
    for name, summary in sorted(
        [(r.name, r.summary) for r in all_rules()]
        + [(r.name, r.summary) for r in all_whole_program_rules()]
        + [
            (PARSE_ERROR, "file does not parse"),
            (BAD_PRAGMA, "exemption pragma without a reason"),
            ("stale-baseline", "baseline entry matching no current finding"),
        ]
    ):
        meta.append(
            {
                "id": name,
                "shortDescription": {"text": summary},
            }
        )
    return meta


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 — the interchange format CI systems annotate PRs from."""
    results: List[Dict[str, Any]] = []
    for f in result.findings:
        results.append(
            {
                "ruleId": f.rule,
                "level": "error",
                "message": {"text": f.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": f.path.replace("\\", "/"),
                            },
                            "region": {
                                "startLine": max(f.line, 1),
                                "startColumn": f.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    doc: Dict[str, Any] = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-anc-lint",
                        "informationUri": (
                            "https://example.invalid/repro/docs/static-analysis.md"
                        ),
                        "rules": _sarif_rules(),
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


__all__ = ["render_json", "render_sarif", "render_text"]
