"""Render a :class:`~repro.analysis.engine.LintResult` as text or JSON."""

from __future__ import annotations

import json
from typing import Any, Dict

from .engine import LintResult


def render_text(result: LintResult) -> str:
    """The human report: one ``path:line:col: rule: message`` per finding,
    then a summary line that also accounts for pragma exemptions."""
    lines = [
        f"{f.location()}: {f.rule}: {f.message}" for f in result.findings
    ]
    suppressed_total = sum(result.suppressed.values())
    noun = "finding" if len(result.findings) == 1 else "findings"
    summary = (
        f"{len(result.findings)} {noun} in {result.files} file"
        f"{'' if result.files == 1 else 's'}"
    )
    if suppressed_total:
        per_rule = ", ".join(
            f"{name} x{count}" for name, count in sorted(result.suppressed.items())
        )
        summary += f" ({suppressed_total} suppressed by pragma: {per_rule})"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The machine report (stable keys, sorted findings)."""
    payload: Dict[str, Any] = {
        "files": result.files,
        "findings": [f.to_dict() for f in result.findings],
        "suppressed": dict(sorted(result.suppressed.items())),
        "ok": result.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


__all__ = ["render_json", "render_text"]
