"""Shared AST helpers: dotted names, import resolution, parent links."""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, Optional, Set, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

_PARENT = "_anclint_parent"


def link_parents(tree: ast.AST) -> None:
    """Attach a parent pointer to every node (idempotent)."""
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            setattr(child, _PARENT, parent)


def parent(node: ast.AST) -> Optional[ast.AST]:
    """The parent node, if :func:`link_parents` has run."""
    return getattr(node, _PARENT, None)


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    """Walk outwards from ``node`` (excluding itself) to the module."""
    current = parent(node)
    while current is not None:
        yield current
        current = parent(current)


def enclosing_function(node: ast.AST) -> Optional[FunctionNode]:
    """The nearest ``def``/``async def`` containing ``node``."""
    for anc in ancestors(node):
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return anc
    return None


def enclosing_class(node: ast.AST) -> Optional[ast.ClassDef]:
    """The nearest ``class`` containing ``node``."""
    for anc in ancestors(node):
        if isinstance(anc, ast.ClassDef):
            return anc
    return None


def dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted(node.value)
        if base is not None:
            return f"{base}.{node.attr}"
    return None


def import_map(tree: ast.Module) -> Dict[str, str]:
    """Local name -> fully qualified name, from the module's imports.

    ``import time`` maps ``time -> time``; ``import numpy as np`` maps
    ``np -> numpy``; ``from time import sleep as zzz`` maps
    ``zzz -> time.sleep``.  Relative imports are prefixed with one dot
    per level so they can never collide with stdlib names.
    """
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    mapping[alias.asname] = alias.name
                else:
                    head = alias.name.split(".", 1)[0]
                    mapping[head] = head
        elif isinstance(node, ast.ImportFrom):
            module = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                mapping[local] = f"{module}.{alias.name}" if module else alias.name
    return mapping


def qualify(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Resolve a Name/Attribute chain through the module's imports.

    ``time.sleep`` under ``import time`` resolves to ``time.sleep``;
    ``zzz`` under ``from time import sleep as zzz`` resolves to
    ``time.sleep``; an unimported bare name resolves to itself (which is
    how builtins like ``open`` are matched).
    """
    name = dotted(node)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    base = imports.get(head)
    if base is None:
        return name
    return f"{base}.{rest}" if rest else base


def call_name(node: ast.Call, imports: Dict[str, str]) -> Optional[str]:
    """The qualified name a call resolves to, if statically nameable."""
    return qualify(node.func, imports)


def loop_target_names(target: ast.AST) -> Set[str]:
    """The plain names bound by a ``for`` target (Name or tuple of Names)."""
    names: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


def walk_skipping_functions(body: Iterable[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function bodies.

    Used by scope-sensitive rules (e.g. async-blocking): a ``def`` nested
    inside an ``async def`` runs in whatever context it is later called
    from, so its body is analysed on its own, not as part of the
    coroutine.
    """
    stack = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def is_awaited(node: ast.AST) -> bool:
    """True when ``node`` is directly wrapped in an ``await``."""
    return isinstance(parent(node), ast.Await)


def str_constants(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """The tuple of strings in a literal list/tuple of str, else None."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    values = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return None
        values.append(element.value)
    return tuple(values)


__all__ = [
    "FunctionNode",
    "ancestors",
    "call_name",
    "dotted",
    "enclosing_class",
    "enclosing_function",
    "import_map",
    "is_awaited",
    "link_parents",
    "loop_target_names",
    "parent",
    "qualify",
    "str_constants",
    "walk_skipping_functions",
]
