"""Finding baselines: gate CI on regressions, not pre-existing debt.

A baseline file records fingerprints of accepted findings.  With
``repro-anc lint --baseline FILE``, findings that match a fingerprint are
suppressed (counted, reported in the summary) and the exit code goes to 0
when nothing *new* remains.  Baselined fingerprints that no longer match
any finding are *stale* — they become ``stale-baseline`` findings so the
file cannot rot: fix the code, regenerate with ``--update-baseline``.

Fingerprints are ``rule|path|message`` with a count, deliberately
line-insensitive so that unrelated edits shifting a finding by a few
lines do not churn the file.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple

from .engine import LintResult
from .findings import Finding

BASELINE_VERSION = 1

#: Pseudo-rule for baseline entries that match nothing anymore.
STALE_BASELINE = "stale-baseline"

__all__ = [
    "BASELINE_VERSION",
    "STALE_BASELINE",
    "apply_baseline",
    "fingerprint",
    "load_baseline",
    "save_baseline",
]


def fingerprint(finding: Finding) -> str:
    """The line-insensitive identity of a finding."""
    return f"{finding.rule}|{finding.path}|{finding.message}"


def load_baseline(path: Path) -> Dict[str, int]:
    """fingerprint -> accepted count.  Raises ``ValueError`` on bad files."""
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ValueError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(raw, dict) or raw.get("version") != BASELINE_VERSION:
        raise ValueError(f"baseline {path} has an unsupported format")
    out: Dict[str, int] = {}
    for entry in raw.get("findings", []):
        print_key = entry.get("fingerprint")
        count = entry.get("count", 1)
        if isinstance(print_key, str) and isinstance(count, int) and count > 0:
            out[print_key] = out.get(print_key, 0) + count
    return out


def save_baseline(path: Path, result: LintResult) -> None:
    """Write the current findings as the new accepted baseline."""
    counts = Counter(fingerprint(f) for f in result.findings)
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {"fingerprint": key, "count": count}
            for key, count in sorted(counts.items())
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def apply_baseline(
    result: LintResult, baseline: Dict[str, int]
) -> Tuple[LintResult, Dict[str, int], List[str]]:
    """Split findings into (new, baselined, stale).

    Returns the filtered result (new findings plus one ``stale-baseline``
    finding per unmatched baseline entry), the per-rule counts of
    baseline-suppressed findings, and the stale fingerprints.
    """
    budget = dict(baseline)
    kept: List[Finding] = []
    suppressed: Dict[str, int] = {}
    for finding in result.findings:
        key = fingerprint(finding)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            suppressed[finding.rule] = suppressed.get(finding.rule, 0) + 1
        else:
            kept.append(finding)
    stale = sorted(key for key, count in budget.items() if count > 0)
    for key in stale:
        rule, path, message = key.split("|", 2)
        kept.append(
            Finding(
                path=path,
                line=1,
                col=0,
                rule=STALE_BASELINE,
                message=(
                    f"baseline entry no longer matches any finding "
                    f"({rule}: {message!r}); regenerate with --update-baseline"
                ),
            )
        )
    filtered = LintResult(
        findings=kept, suppressed=dict(result.suppressed), files=result.files
    )
    return filtered.finalize(), suppressed, stale
