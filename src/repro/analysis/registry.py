"""The rule registry.

A rule is a function ``check(ctx) -> Iterable[(node, message)]``
registered under a stable kebab-case name; the engine turns the yielded
pairs into :class:`~repro.analysis.findings.Finding` records and applies
pragma suppressions.  Names double as pragma targets
(``# anclint: disable=<name> — reason``) and ``--select`` arguments.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import FileContext

CheckFn = Callable[["FileContext"], Iterable[Tuple[ast.AST, str]]]


@dataclass(frozen=True)
class Rule:
    """One registered rule: identity, one-line summary, and its check."""

    name: str
    summary: str
    check: CheckFn


_REGISTRY: Dict[str, Rule] = {}


def rule(name: str, summary: str) -> Callable[[CheckFn], CheckFn]:
    """Register ``check`` under ``name`` (decorator)."""

    def decorate(check: CheckFn) -> CheckFn:
        if name in _REGISTRY:
            raise ValueError(f"duplicate rule name {name!r}")
        _REGISTRY[name] = Rule(name=name, summary=summary, check=check)
        return check

    return decorate


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by name."""
    return sorted(_REGISTRY.values(), key=lambda r: r.name)


def get_rule(name: str) -> Rule:
    """Look up one rule; raises ``KeyError`` with the known names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown rule {name!r}; known rules: {known}") from None


__all__ = ["CheckFn", "Rule", "all_rules", "get_rule", "rule"]
