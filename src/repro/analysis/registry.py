"""The rule registry.

A rule is a function ``check(ctx) -> Iterable[(node, message)]``
registered under a stable kebab-case name; the engine turns the yielded
pairs into :class:`~repro.analysis.findings.Finding` records and applies
pragma suppressions.  Names double as pragma targets
(``# anclint: disable=<name> — reason``) and ``--select`` arguments.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import FileContext
    from .project import ProjectModel

CheckFn = Callable[["FileContext"], Iterable[Tuple[ast.AST, str]]]

#: A whole-program check yields ``(path, line, col, message)`` — findings
#: are anchored to arbitrary files, so AST nodes alone cannot carry them.
WholeProgramCheckFn = Callable[
    ["ProjectModel"], Iterable[Tuple[str, int, int, str]]
]


@dataclass(frozen=True)
class Rule:
    """One registered rule: identity, one-line summary, and its check."""

    name: str
    summary: str
    check: CheckFn


_REGISTRY: Dict[str, Rule] = {}


def rule(name: str, summary: str) -> Callable[[CheckFn], CheckFn]:
    """Register ``check`` under ``name`` (decorator)."""

    def decorate(check: CheckFn) -> CheckFn:
        if name in _REGISTRY:
            raise ValueError(f"duplicate rule name {name!r}")
        _REGISTRY[name] = Rule(name=name, summary=summary, check=check)
        return check

    return decorate


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by name."""
    return sorted(_REGISTRY.values(), key=lambda r: r.name)


def get_rule(name: str) -> Rule:
    """Look up one rule; raises ``KeyError`` with the known names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown rule {name!r}; known rules: {known}") from None


@dataclass(frozen=True)
class WholeProgramRule:
    """A rule that runs once over the stitched :class:`ProjectModel`."""

    name: str
    summary: str
    check: WholeProgramCheckFn


_WP_REGISTRY: Dict[str, WholeProgramRule] = {}


def whole_program_rule(
    name: str, summary: str
) -> Callable[[WholeProgramCheckFn], WholeProgramCheckFn]:
    """Register a whole-program check under ``name`` (decorator)."""

    def decorate(check: WholeProgramCheckFn) -> WholeProgramCheckFn:
        if name in _WP_REGISTRY or name in _REGISTRY:
            raise ValueError(f"duplicate rule name {name!r}")
        _WP_REGISTRY[name] = WholeProgramRule(name=name, summary=summary, check=check)
        return check

    return decorate


def all_whole_program_rules() -> List[WholeProgramRule]:
    """Every registered whole-program rule, sorted by name."""
    return sorted(_WP_REGISTRY.values(), key=lambda r: r.name)


def split_selection(
    select: Optional[Sequence[str]],
) -> Tuple[List[Rule], List[WholeProgramRule]]:
    """Partition a ``--select`` list into per-file and whole-program rules.

    ``None`` selects everything.  Unknown names raise ``KeyError`` naming
    both catalogues.
    """
    if select is None:
        return all_rules(), all_whole_program_rules()
    per_file: List[Rule] = []
    whole: List[WholeProgramRule] = []
    for name in select:
        if name in _REGISTRY:
            per_file.append(_REGISTRY[name])
        elif name in _WP_REGISTRY:
            whole.append(_WP_REGISTRY[name])
        else:
            known = ", ".join(sorted(set(_REGISTRY) | set(_WP_REGISTRY)))
            raise KeyError(f"unknown rule {name!r}; known rules: {known}")
    return per_file, whole


__all__ = [
    "CheckFn",
    "Rule",
    "WholeProgramCheckFn",
    "WholeProgramRule",
    "all_rules",
    "all_whole_program_rules",
    "get_rule",
    "rule",
    "split_selection",
    "whole_program_rule",
]
