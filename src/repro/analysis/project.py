"""Whole-program project model for the analysis engine.

``summarize_module`` distills one parsed module into a JSON-serializable
:class:`ModuleSummary` — functions and the calls they make, instance
attribute writes, task/thread/process spawn sites, lock usage, wire-op
tables and emissions, error-code definitions and uses, and fault-hook
catalog/call sites.  :class:`ProjectModel` stitches the summaries into
an import graph, a name-resolved approximate call graph, and an
execution-context map (loop / thread / process) that whole-program rules
(`repro.analysis.rules.protocol`, `async_races`, `fault_hooks`) consume.

Summaries are deliberately flat dataclasses of primitives so the
incremental lint cache can persist them without re-parsing unchanged
files.  This module must not import ``repro.analysis.engine`` (the
engine imports us); ``build_project`` lives there.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .astutils import (
    dotted,
    import_map,
    link_parents,
    parent as _parent,
    walk_skipping_functions,
)

__all__ = [
    "AttrWrite",
    "CallSite",
    "ErrorClass",
    "FunctionInfo",
    "HookSite",
    "LockAttr",
    "LockedAwait",
    "ModuleSummary",
    "OpEmit",
    "OpTable",
    "ProjectModel",
    "ResponseRead",
    "SpawnSite",
    "summarize_module",
]

# Mutating container-method names that count as attribute writes.
_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "add",
        "update",
        "insert",
        "pop",
        "popitem",
        "clear",
        "discard",
        "remove",
        "setdefault",
        "move_to_end",
    }
)

# Methods treated as "spawn a coroutine as a task".
_TASK_SPAWNERS = frozenset({"create_task", "ensure_future"})

_INIT_METHODS = frozenset({"__init__", "__post_init__", "__new__", "__enter__"})


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body.

    ``callee`` encodings: ``"self.x"`` for self-method calls, a dotted
    name resolved through the import map (``"asyncio.create_task"``),
    ``"@attr"`` for attribute calls on unresolvable objects
    (``conn.close()`` -> ``"@close"``), or a bare local/builtin name.
    """

    callee: str
    line: int
    col: int
    args: Tuple[str, ...] = ()
    bare_stmt: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "callee": self.callee,
            "line": self.line,
            "col": self.col,
            "args": list(self.args),
            "bare_stmt": self.bare_stmt,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CallSite":
        return cls(
            callee=data["callee"],
            line=data["line"],
            col=data["col"],
            args=tuple(data["args"]),
            bare_stmt=data["bare_stmt"],
        )


@dataclass(frozen=True)
class FunctionInfo:
    """A function or method definition (``"<module>"`` for top level)."""

    qualname: str
    cls: Optional[str]
    line: int
    is_async: bool
    trampoline: bool
    calls: Tuple[CallSite, ...]
    params: Tuple[str, ...] = ()
    #: True when the body reads an ``_OPS`` attribute — the signature of
    #: a dispatcher (``self._OPS.get(op)``), which the op-span-coverage
    #: rule treats as covering every handler in the class's table.
    reads_ops: bool = False

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "cls": self.cls,
            "line": self.line,
            "is_async": self.is_async,
            "trampoline": self.trampoline,
            "calls": [c.to_dict() for c in self.calls],
            "params": list(self.params),
            "reads_ops": self.reads_ops,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FunctionInfo":
        return cls(
            qualname=data["qualname"],
            cls=data["cls"],
            line=data["line"],
            is_async=data["is_async"],
            trampoline=data["trampoline"],
            calls=tuple(CallSite.from_dict(c) for c in data["calls"]),
            params=tuple(data["params"]),
            reads_ops=data.get("reads_ops", False),
        )


@dataclass(frozen=True)
class AttrWrite:
    """A write to ``self.<attr>`` inside a method."""

    cls: str
    attr: str
    func: str
    line: int
    col: int
    kind: str  # "assign" | "item" | "mutate"
    guarded: bool
    in_init: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cls": self.cls,
            "attr": self.attr,
            "func": self.func,
            "line": self.line,
            "col": self.col,
            "kind": self.kind,
            "guarded": self.guarded,
            "in_init": self.in_init,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AttrWrite":
        return cls(**data)


@dataclass(frozen=True)
class SpawnSite:
    """A point that launches work in another execution context."""

    kind: str  # "task" | "thread" | "process"
    target: str  # CallSite-style callee encoding of the target callable
    func: str  # enclosing function qualname
    line: int
    col: int
    retained: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "target": self.target,
            "func": self.func,
            "line": self.line,
            "col": self.col,
            "retained": self.retained,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpawnSite":
        return cls(**data)


@dataclass(frozen=True)
class LockAttr:
    """``self.<attr> = threading.Lock()`` (or asyncio.Lock) in a class."""

    cls: str
    attr: str
    sync: bool
    line: int

    def to_dict(self) -> Dict[str, Any]:
        return {"cls": self.cls, "attr": self.attr, "sync": self.sync, "line": self.line}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LockAttr":
        return cls(**data)


@dataclass(frozen=True)
class LockedAwait:
    """An ``await`` nested inside a sync ``with self.<lock>:`` block."""

    cls: Optional[str]
    func: str
    lock_attr: str
    line: int
    col: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cls": self.cls,
            "func": self.func,
            "lock_attr": self.lock_attr,
            "line": self.line,
            "col": self.col,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LockedAwait":
        return cls(**data)


@dataclass(frozen=True)
class OpTable:
    """A class-body ``_OPS = {"op": handler, ...}`` dispatch table."""

    cls: str
    is_router: bool
    ops: Tuple[Tuple[str, int, int, str], ...]  # (op, line, col, handler-name)

    def op_names(self) -> Set[str]:
        return {op for op, _, _, _ in self.ops}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cls": self.cls,
            "is_router": self.is_router,
            "ops": [list(entry) for entry in self.ops],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "OpTable":
        return cls(
            cls=data["cls"],
            is_router=data["is_router"],
            ops=tuple((o[0], o[1], o[2], o[3]) for o in data["ops"]),
        )


@dataclass(frozen=True)
class OpEmit:
    """An op sent on the wire (client request, payload literal, scatter)."""

    op: str
    channel: str  # "request" | "payload" | "scatter"
    func: str
    line: int
    col: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op": self.op,
            "channel": self.channel,
            "func": self.func,
            "line": self.line,
            "col": self.col,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "OpEmit":
        return cls(**data)


@dataclass(frozen=True)
class ResponseRead:
    """``resp["key"]`` where ``resp`` is the result of a request call."""

    key: str
    line: int
    col: int

    def to_dict(self) -> Dict[str, Any]:
        return {"key": self.key, "line": self.line, "col": self.col}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ResponseRead":
        return cls(**data)


@dataclass(frozen=True)
class ErrorClass:
    """A class in an ``errors`` module carrying a ``code = "X"`` attr."""

    name: str
    code: str
    line: int
    col: int
    bases: Tuple[str, ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "code": self.code,
            "line": self.line,
            "col": self.col,
            "bases": list(self.bases),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ErrorClass":
        return cls(
            name=data["name"],
            code=data["code"],
            line=data["line"],
            col=data["col"],
            bases=tuple(data["bases"]),
        )


@dataclass(frozen=True)
class HookSite:
    """A ``<faults>.hit("site", ...)`` call site."""

    site: str
    func: str
    line: int
    col: int

    def to_dict(self) -> Dict[str, Any]:
        return {"site": self.site, "func": self.func, "line": self.line, "col": self.col}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HookSite":
        return cls(**data)


@dataclass
class ModuleSummary:
    """Everything the whole-program rules need to know about one module."""

    module: str
    path: str
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    attr_writes: List[AttrWrite] = field(default_factory=list)
    spawns: List[SpawnSite] = field(default_factory=list)
    locks: List[LockAttr] = field(default_factory=list)
    locked_awaits: List[LockedAwait] = field(default_factory=list)
    op_tables: List[OpTable] = field(default_factory=list)
    op_emits: List[OpEmit] = field(default_factory=list)
    response_reads: List[ResponseRead] = field(default_factory=list)
    str_keys: Set[str] = field(default_factory=set)
    error_classes: List[ErrorClass] = field(default_factory=list)
    code_kwargs: Set[str] = field(default_factory=set)
    code_compares: List[Tuple[str, int, int]] = field(default_factory=list)
    catalog_sites: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    hook_sites: List[HookSite] = field(default_factory=list)
    classes: Dict[str, Tuple[str, ...]] = field(default_factory=dict)  # name -> bases

    @property
    def last_segment(self) -> str:
        return self.module.rsplit(".", 1)[-1]

    def segments(self) -> Tuple[str, ...]:
        return tuple(self.module.split("."))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "module": self.module,
            "path": self.path,
            "imports": dict(self.imports),
            "functions": {k: f.to_dict() for k, f in self.functions.items()},
            "attr_writes": [w.to_dict() for w in self.attr_writes],
            "spawns": [s.to_dict() for s in self.spawns],
            "locks": [lk.to_dict() for lk in self.locks],
            "locked_awaits": [la.to_dict() for la in self.locked_awaits],
            "op_tables": [t.to_dict() for t in self.op_tables],
            "op_emits": [e.to_dict() for e in self.op_emits],
            "response_reads": [r.to_dict() for r in self.response_reads],
            "str_keys": sorted(self.str_keys),
            "error_classes": [e.to_dict() for e in self.error_classes],
            "code_kwargs": sorted(self.code_kwargs),
            "code_compares": [list(c) for c in self.code_compares],
            "catalog_sites": {k: list(v) for k, v in self.catalog_sites.items()},
            "hook_sites": [h.to_dict() for h in self.hook_sites],
            "classes": {k: list(v) for k, v in self.classes.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleSummary":
        return cls(
            module=data["module"],
            path=data["path"],
            imports=dict(data["imports"]),
            functions={
                k: FunctionInfo.from_dict(f) for k, f in data["functions"].items()
            },
            attr_writes=[AttrWrite.from_dict(w) for w in data["attr_writes"]],
            spawns=[SpawnSite.from_dict(s) for s in data["spawns"]],
            locks=[LockAttr.from_dict(lk) for lk in data["locks"]],
            locked_awaits=[LockedAwait.from_dict(la) for la in data["locked_awaits"]],
            op_tables=[OpTable.from_dict(t) for t in data["op_tables"]],
            op_emits=[OpEmit.from_dict(e) for e in data["op_emits"]],
            response_reads=[ResponseRead.from_dict(r) for r in data["response_reads"]],
            str_keys=set(data["str_keys"]),
            error_classes=[ErrorClass.from_dict(e) for e in data["error_classes"]],
            code_kwargs=set(data["code_kwargs"]),
            code_compares=[(c[0], c[1], c[2]) for c in data["code_compares"]],
            catalog_sites={k: (v[0], v[1]) for k, v in data["catalog_sites"].items()},
            hook_sites=[HookSite.from_dict(h) for h in data["hook_sites"]],
            classes={k: tuple(v) for k, v in data["classes"].items()},
        )


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------


def _encode_callable(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Encode a callable reference per the CallSite scheme."""
    if isinstance(node, ast.Name):
        return imports.get(node.id, node.id)
    if isinstance(node, ast.Attribute):
        path = dotted(node)
        if path is not None:
            head = path.split(".", 1)[0]
            if head == "self":
                parts = path.split(".")
                if len(parts) == 2:
                    return path  # self.x
                return "@" + parts[-1]  # self.a.b -> @b
            if head in imports:
                rest = path.split(".", 1)[1]
                return imports[head] + "." + rest
            return "@" + path.rsplit(".", 1)[-1]
        return "@" + node.attr
    return None


def _call_args(node: ast.Call, imports: Dict[str, str]) -> Tuple[str, ...]:
    """Function-reference-looking arguments of a call (incl. target=)."""
    out: List[str] = []
    values: List[ast.expr] = list(node.args)
    values.extend(kw.value for kw in node.keywords if kw.arg is not None)
    for value in values:
        enc = _encode_callable(value, imports)
        if enc is not None:
            out.append(enc)
        elif isinstance(value, ast.Call):
            # e.g. Thread(target=functools.partial(fn, x)) or create_task(coro())
            inner = _encode_callable(value.func, imports)
            if inner is not None and inner.rsplit(".", 1)[-1] == "partial":
                for sub in value.args[:1]:
                    sub_enc = _encode_callable(sub, imports)
                    if sub_enc is not None:
                        out.append(sub_enc)
            elif inner is not None:
                out.append(inner)
    return tuple(out)


def _qualname_of(node: ast.AST) -> Tuple[str, Optional[str]]:
    """(qualname, enclosing-class-name) for a def node via parent links."""
    parts: List[str] = []
    cls: Optional[str] = None
    cur: Optional[ast.AST] = node
    while cur is not None:
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
            parts.append(cur.name)
        elif isinstance(cur, ast.ClassDef):
            if cls is None and cur is not node:
                cls = cur.name
            parts.append(cur.name)
        cur = _parent(cur)
    return ".".join(reversed(parts)), cls


def _enclosing_def(
    node: ast.AST,
) -> Optional[ast.AST]:
    cur = _parent(node)
    while cur is not None:
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return cur
        cur = _parent(cur)
    return None


def _is_guarded(node: ast.AST, boundary: ast.AST) -> bool:
    """True when a sync ``with`` whose item names a lock encloses node."""
    cur = _parent(node)
    while cur is not None and cur is not boundary:
        if isinstance(cur, ast.With):
            for item in cur.items:
                expr: ast.expr = item.context_expr
                if isinstance(expr, ast.Call):
                    expr = expr.func
                path = dotted(expr)
                if path is not None and "lock" in path.lower():
                    return True
        cur = _parent(cur)
    return False


def _str_const(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


class _Summarizer:
    def __init__(self, module: str, path: str, tree: ast.Module) -> None:
        self.summary = ModuleSummary(module=module, path=path)
        self.tree = tree
        self.imports = import_map(tree)
        self.summary.imports = dict(self.imports)
        link_parents(tree)

    # -- helpers ----------------------------------------------------------

    def _record_str_keys(self, node: ast.AST) -> None:
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    text = _str_const(key)
                    if text is not None:
                        self.summary.str_keys.add(text)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    text = _str_const(target.slice)
                    if text is not None:
                        self.summary.str_keys.add(text)
        elif isinstance(node, ast.Call):
            name = dotted(node.func)
            tail = name.rsplit(".", 1)[-1] if name else ""
            if tail in ("setdefault", "get"):
                for arg in node.args[:1]:
                    text = _str_const(arg)
                    if text is not None:
                        self.summary.str_keys.add(text)
            if tail == "update":
                for kw in node.keywords:
                    if kw.arg is not None:
                        self.summary.str_keys.add(kw.arg)

    def _spawn_kind(self, callee: str) -> Optional[str]:
        tail = callee.rsplit(".", 1)[-1].lstrip("@")
        if tail in _TASK_SPAWNERS:
            return "task"
        if tail == "Thread":
            return "thread"
        if tail == "Process":
            return "process"
        return None

    # -- per-function extraction ------------------------------------------

    def _function_body_nodes(self, fn: Optional[ast.AST]) -> Iterator[ast.AST]:
        if fn is None:
            body = [
                stmt
                for stmt in self.tree.body
                if not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
            ]
            yield from walk_skipping_functions(body)
        else:
            assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
            yield from walk_skipping_functions(fn.body)

    def _extract_function(self, fn: Optional[ast.AST]) -> None:
        if fn is None:
            qualname, cls = "<module>", None
            is_async = False
            params: Tuple[str, ...] = ()
        else:
            assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
            qualname, cls = _qualname_of(fn)
            is_async = isinstance(fn, ast.AsyncFunctionDef)
            arg_nodes = list(fn.args.posonlyargs) + list(fn.args.args)
            arg_nodes += list(fn.args.kwonlyargs)
            params = tuple(a.arg for a in arg_nodes)

        calls: List[CallSite] = []
        trampoline = False
        reads_ops = False
        nodes = list(self._function_body_nodes(fn))
        # Methods of a ClassDef nested in module body are walked when fn
        # is each method; class-level statements count toward "<module>".
        for node in nodes:
            self._record_str_keys(node)
            if isinstance(node, ast.Attribute) and node.attr == "_OPS":
                reads_ops = True
            if isinstance(node, ast.Call):
                callee = _encode_callable(node.func, self.imports)
                if callee is None:
                    continue
                args = _call_args(node, self.imports)
                parent = _parent(node)
                bare = isinstance(parent, ast.Expr)
                calls.append(
                    CallSite(
                        callee=callee,
                        line=node.lineno,
                        col=node.col_offset,
                        args=args,
                        bare_stmt=bare,
                    )
                )
                tail = callee.rsplit(".", 1)[-1].lstrip("@")
                spawn_kind = self._spawn_kind(callee)
                if spawn_kind is not None:
                    target = self._spawn_target(node, spawn_kind)
                    if target is not None:
                        retained = not bare if spawn_kind == "task" else True
                        self.summary.spawns.append(
                            SpawnSite(
                                kind=spawn_kind,
                                target=target,
                                func=qualname,
                                line=node.lineno,
                                col=node.col_offset,
                                retained=retained,
                            )
                        )
                if tail == "run_in_executor" and len(node.args) >= 2:
                    target = _encode_callable(node.args[1], self.imports)
                    if target is not None:
                        if params and target in params:
                            trampoline = True
                        else:
                            self.summary.spawns.append(
                                SpawnSite(
                                    kind="thread",
                                    target=target,
                                    func=qualname,
                                    line=node.lineno,
                                    col=node.col_offset,
                                    retained=True,
                                )
                            )
                if tail == "hit":
                    site = _str_const(node.args[0]) if node.args else None
                    if site is not None:
                        self.summary.hook_sites.append(
                            HookSite(
                                site=site,
                                func=qualname,
                                line=node.lineno,
                                col=node.col_offset,
                            )
                        )
                self._maybe_op_emit(node, callee, qualname)
                for kw in node.keywords:
                    if kw.arg == "code":
                        text = _str_const(kw.value)
                        if text is not None:
                            self.summary.code_kwargs.add(text)
            elif isinstance(node, ast.Dict):
                self._maybe_payload_emit(node, qualname)
            elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
                self._maybe_response_read(node)
            elif isinstance(node, ast.Compare):
                self._maybe_code_compare(node)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                self._maybe_attr_write(node, qualname, cls, fn)
            elif isinstance(node, ast.Await) and fn is not None and is_async:
                self._maybe_locked_await(node, fn, qualname, cls)

        # Mutating method calls on self attributes count as writes too.
        for node in nodes:
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                path = dotted(node.func)
                if path is None:
                    continue
                parts = path.split(".")
                if (
                    len(parts) == 3
                    and parts[0] == "self"
                    and parts[2] in _MUTATORS
                    and cls is not None
                ):
                    self.summary.attr_writes.append(
                        AttrWrite(
                            cls=cls,
                            attr=parts[1],
                            func=qualname,
                            line=node.lineno,
                            col=node.col_offset,
                            kind="mutate",
                            guarded=_is_guarded(node, fn if fn is not None else self.tree),
                            in_init=qualname.rsplit(".", 1)[-1] in _INIT_METHODS,
                        )
                    )

        self.summary.functions[qualname] = FunctionInfo(
            qualname=qualname,
            cls=cls,
            line=fn.lineno if fn is not None else 1,
            is_async=is_async,
            trampoline=trampoline,
            calls=tuple(calls),
            params=params,
            reads_ops=reads_ops,
        )

    def _spawn_target(self, node: ast.Call, kind: str) -> Optional[str]:
        if kind == "task":
            for arg in node.args[:1]:
                if isinstance(arg, ast.Call):
                    return _encode_callable(arg.func, self.imports)
                enc = _encode_callable(arg, self.imports)
                if enc is not None:
                    return enc
            return "<unknown>"
        for kw in node.keywords:
            if kw.arg == "target":
                if isinstance(kw.value, ast.Call):
                    inner = _encode_callable(kw.value.func, self.imports)
                    if inner is not None and inner.rsplit(".", 1)[-1] == "partial":
                        for sub in kw.value.args[:1]:
                            return _encode_callable(sub, self.imports)
                    return inner
                return _encode_callable(kw.value, self.imports)
        return None

    def _maybe_op_emit(self, node: ast.Call, callee: str, qualname: str) -> None:
        tail = callee.rsplit(".", 1)[-1].lstrip("@")
        if tail == "request" and node.args:
            op = _str_const(node.args[0])
            if op is not None:
                self.summary.op_emits.append(
                    OpEmit(
                        op=op,
                        channel="request",
                        func=qualname,
                        line=node.lineno,
                        col=node.col_offset,
                    )
                )
        elif tail == "_scatter" and node.args:
            op = _str_const(node.args[0])
            if op is not None:
                self.summary.op_emits.append(
                    OpEmit(
                        op=op,
                        channel="scatter",
                        func=qualname,
                        line=node.lineno,
                        col=node.col_offset,
                    )
                )

    def _maybe_payload_emit(self, node: ast.Dict, qualname: str) -> None:
        for key, value in zip(node.keys, node.values):
            if key is not None and _str_const(key) == "op":
                op = _str_const(value)
                if op is not None:
                    self.summary.op_emits.append(
                        OpEmit(
                            op=op,
                            channel="payload",
                            func=qualname,
                            line=node.lineno,
                            col=node.col_offset,
                        )
                    )

    def _maybe_response_read(self, node: ast.Subscript) -> None:
        key = _str_const(node.slice)
        if key is None:
            return
        value = node.value
        # resp["k"] directly on a request(...) call, or awaited.
        if isinstance(value, ast.Await):
            value = value.value
        if isinstance(value, ast.Call):
            name = dotted(value.func)
            if name is not None and name.rsplit(".", 1)[-1] == "request":
                self.summary.response_reads.append(
                    ResponseRead(key=key, line=node.lineno, col=node.col_offset)
                )

    def _maybe_code_compare(self, node: ast.Compare) -> None:
        left = dotted(node.left)
        if left is None:
            return
        tail = left.rsplit(".", 1)[-1]
        if tail not in ("code", "error_type"):
            return
        for comp in node.comparators:
            text = _str_const(comp)
            if text is not None:
                self.summary.code_compares.append(
                    (text, node.lineno, node.col_offset)
                )
            elif isinstance(comp, (ast.Tuple, ast.List, ast.Set)):
                for elt in comp.elts:
                    sub = _str_const(elt)
                    if sub is not None:
                        self.summary.code_compares.append(
                            (sub, node.lineno, node.col_offset)
                        )

    def _maybe_attr_write(
        self,
        node: ast.AST,
        qualname: str,
        cls: Optional[str],
        fn: Optional[ast.AST],
    ) -> None:
        if cls is None:
            return
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        for target in targets:
            kind = "assign"
            expr = target
            if isinstance(expr, ast.Subscript):
                kind = "item"
                expr = expr.value
            if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
                if expr.value.id == "self":
                    self.summary.attr_writes.append(
                        AttrWrite(
                            cls=cls,
                            attr=expr.attr,
                            func=qualname,
                            line=node.lineno,
                            col=node.col_offset,
                            kind=kind,
                            guarded=_is_guarded(
                                node, fn if fn is not None else self.tree
                            ),
                            in_init=qualname.rsplit(".", 1)[-1] in _INIT_METHODS,
                        )
                    )

    def _maybe_locked_await(
        self,
        node: ast.Await,
        fn: ast.AST,
        qualname: str,
        cls: Optional[str],
    ) -> None:
        cur = _parent(node)
        while cur is not None and cur is not fn:
            if isinstance(cur, ast.With):
                for item in cur.items:
                    expr: ast.expr = item.context_expr
                    path = dotted(expr)
                    if path is not None and path.startswith("self."):
                        attr = path.split(".", 2)[1]
                        self.summary.locked_awaits.append(
                            LockedAwait(
                                cls=cls,
                                func=qualname,
                                lock_attr=attr,
                                line=node.lineno,
                                col=node.col_offset,
                            )
                        )
            cur = _parent(cur)

    # -- class-level extraction -------------------------------------------

    def _extract_class(self, node: ast.ClassDef) -> None:
        bases = tuple(
            b for b in (dotted(base) for base in node.bases) if b is not None
        )
        self.summary.classes[node.name] = bases
        code: Optional[str] = None
        ops: List[Tuple[str, int, int, str]] = []
        for stmt in node.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    if target.id == "code":
                        code = _str_const(stmt.value)
                    elif target.id == "_OPS" and isinstance(stmt.value, ast.Dict):
                        for key, value in zip(stmt.value.keys, stmt.value.values):
                            if key is None:
                                continue
                            op = _str_const(key)
                            if op is None:
                                continue
                            handler = dotted(value) or "<expr>"
                            ops.append(
                                (op, key.lineno, key.col_offset, handler)
                            )
            # Lock attributes assigned in __init__ bodies.
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for sub in walk_skipping_functions(stmt.body):
                    if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                        tgt = sub.targets[0]
                        if (
                            isinstance(tgt, ast.Attribute)
                            and isinstance(tgt.value, ast.Name)
                            and tgt.value.id == "self"
                            and isinstance(sub.value, ast.Call)
                        ):
                            ctor = _encode_callable(sub.value.func, self.imports)
                            if ctor is None:
                                continue
                            tail = ctor.rsplit(".", 1)[-1]
                            if tail in ("Lock", "RLock", "Condition", "Semaphore"):
                                sync = not ctor.startswith("asyncio")
                                self.summary.locks.append(
                                    LockAttr(
                                        cls=node.name,
                                        attr=tgt.attr,
                                        sync=sync,
                                        line=sub.lineno,
                                    )
                                )
        if ops:
            self.summary.op_tables.append(
                OpTable(
                    cls=node.name,
                    is_router="router" in node.name.lower(),
                    ops=tuple(ops),
                )
            )
        if code is not None and self.summary.last_segment == "errors":
            self.summary.error_classes.append(
                ErrorClass(
                    name=node.name,
                    code=code,
                    line=node.lineno,
                    col=node.col_offset,
                    bases=bases,
                )
            )

    def _extract_catalog(self) -> None:
        if self.summary.last_segment != "injectors":
            return
        for stmt in self.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if (
                    isinstance(target, ast.Name)
                    and target.id == "CATALOG"
                    and isinstance(stmt.value, ast.Dict)
                ):
                    for key in stmt.value.keys:
                        if key is None:
                            continue
                        site = _str_const(key)
                        if site is not None:
                            self.summary.catalog_sites[site] = (
                                key.lineno,
                                key.col_offset,
                            )

    def run(self) -> ModuleSummary:
        self._extract_function(None)
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._extract_function(node)
            elif isinstance(node, ast.ClassDef):
                self._extract_class(node)
        self._extract_catalog()
        return self.summary


def summarize_module(module: str, path: str, tree: ast.Module) -> ModuleSummary:
    """Distill one parsed module into a cacheable summary."""
    return _Summarizer(module, path, tree).run()


# ---------------------------------------------------------------------------
# Project model
# ---------------------------------------------------------------------------

# A bare/attribute name matching more than this many defs project-wide is
# too ambiguous to draw call edges through.
_NAME_MATCH_LIMIT = 4


class ProjectModel:
    """The stitched whole-program view handed to WholeProgramRule checks."""

    def __init__(self, summaries: Sequence[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {s.module: s for s in summaries}
        # "module:qualname" -> FunctionInfo
        self.functions: Dict[str, Tuple[ModuleSummary, FunctionInfo]] = {}
        # terminal function name -> list of function keys
        self._by_name: Dict[str, List[str]] = {}
        for summ in self.modules.values():
            for qualname, info in summ.functions.items():
                key = f"{summ.module}:{qualname}"
                self.functions[key] = (summ, info)
                self._by_name.setdefault(info.name, []).append(key)
        self.import_graph: Dict[str, Set[str]] = {
            mod: self._project_imports(summ) for mod, summ in self.modules.items()
        }
        self.call_edges: Dict[str, Set[str]] = {}
        for key, (summ, info) in self.functions.items():
            self.call_edges[key] = set()
            for call in info.calls:
                self.call_edges[key].update(self._resolve_call(summ, info, call.callee))

    # -- resolution -------------------------------------------------------

    def _resolve_module(self, summ: ModuleSummary, target: str) -> Optional[str]:
        """Resolve a (possibly relative) dotted import to a project module."""
        if target.startswith("."):
            level = len(target) - len(target.lstrip("."))
            rest = target.lstrip(".")
            base = summ.module.split(".")
            if len(base) >= level:
                prefix = base[:-level] if level else base
                candidate = ".".join(prefix + ([rest] if rest else []))
            else:
                candidate = rest
        else:
            candidate = target
        # Longest project-module prefix match.
        parts = candidate.split(".")
        for i in range(len(parts), 0, -1):
            mod = ".".join(parts[:i])
            if mod in self.modules:
                return mod
        return None

    def _project_imports(self, summ: ModuleSummary) -> Set[str]:
        out: Set[str] = set()
        for target in summ.imports.values():
            mod = self._resolve_module(summ, target)
            if mod is not None:
                out.add(mod)
        return out

    def _resolve_call(
        self, summ: ModuleSummary, info: FunctionInfo, callee: str
    ) -> Set[str]:
        out: Set[str] = set()
        if callee.startswith("self."):
            attr = callee.split(".", 1)[1]
            if info.cls is not None:
                key = f"{summ.module}:{info.cls}.{attr}"
                if key in self.functions:
                    return {key}
            out.update(self._name_matches(attr, limit=1))
            return out
        if callee.startswith("@"):
            # Attribute calls on unknown objects only resolve when the
            # name is unique project-wide — anything looser invents
            # cross-class edges (`engine.stats()` -> `ServiceClient.stats`)
            # that poison context propagation.
            return self._name_matches(callee[1:], limit=1)
        if "." in callee or callee.startswith("."):
            mod = self._resolve_module(summ, callee)
            if mod is None:
                return out
            tail = callee.lstrip(".")
            # Strip the module prefix (absolute) to find the member path.
            member = ""
            if tail.startswith(mod):
                member = tail[len(mod) :].lstrip(".")
            else:
                member = tail.rsplit(".", 1)[-1] if "." in tail else tail
            target_summ = self.modules[mod]
            if member:
                if member in target_summ.functions:
                    return {f"{mod}:{member}"}
                if member in target_summ.classes:
                    init = f"{mod}:{member}.__init__"
                    if init in self.functions:
                        return {init}
                    return out
                out.update(self._name_matches(member.rsplit(".", 1)[-1]))
            return out
        # Bare name: same module first, then one import hop, then global.
        if callee in summ.functions:
            return {f"{summ.module}:{callee}"}
        if callee in summ.classes:
            init = f"{summ.module}:{callee}.__init__"
            if init in self.functions:
                return {init}
            return out
        return self._name_matches(callee)

    def _name_matches(self, name: str, limit: int = _NAME_MATCH_LIMIT) -> Set[str]:
        keys = self._by_name.get(name, [])
        if 0 < len(keys) <= limit:
            return set(keys)
        return set()

    # -- graph queries ----------------------------------------------------

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Function keys reachable from the given function keys."""
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            stack.extend(self.call_edges.get(key, ()))
        return seen

    def default_roots(self) -> Set[str]:
        """A generous entry-point set: module tops, public defs, handlers,
        and anything referenced as a call argument (callbacks)."""
        roots: Set[str] = set()
        for summ in self.modules.values():
            for qualname, info in summ.functions.items():
                key = f"{summ.module}:{qualname}"
                if qualname == "<module>":
                    roots.add(key)
                    continue
                if not any(p.startswith("_") for p in qualname.split(".")):
                    roots.add(key)
            for table in summ.op_tables:
                for _, _, _, handler in table.ops:
                    name = handler.rsplit(".", 1)[-1]
                    roots.update(self._name_matches(name))
            for info in summ.functions.values():
                for call in info.calls:
                    for arg in call.args:
                        tail = arg.rsplit(".", 1)[-1].lstrip("@")
                        if arg.startswith("self."):
                            tail = arg.split(".", 1)[1]
                        roots.update(self._name_matches(tail))
        return roots

    def contexts(self) -> Dict[str, Set[str]]:
        """function key -> execution contexts ({"loop","thread","process"}).

        Contexts propagate along call edges but never *into* an async def:
        crossing into a coroutine means an event loop runs it (the async
        barrier), so thread/process taint stops there.
        """
        ctx: Dict[str, Set[str]] = {}

        def seed(key: str, kind: str) -> None:
            ctx.setdefault(key, set()).add(kind)

        for key, (summ, info) in self.functions.items():
            if info.is_async:
                seed(key, "loop")
        for summ in self.modules.values():
            for spawn in summ.spawns:
                kind = {"task": "loop", "thread": "thread", "process": "process"}[
                    spawn.kind
                ]
                tail = spawn.target.rsplit(".", 1)[-1].lstrip("@")
                if spawn.target.startswith("self."):
                    tail = spawn.target.split(".", 1)[1]
                for key in self._name_matches(tail):
                    seed(key, kind)
            # Trampolines: callables passed as arguments run on a thread.
            for info in summ.functions.values():
                for call in info.calls:
                    targets = self._resolve_call(summ, info, call.callee)
                    if any(
                        self.functions[t][1].trampoline
                        for t in targets
                        if t in self.functions
                    ):
                        for arg in call.args:
                            tail = arg.rsplit(".", 1)[-1].lstrip("@")
                            if arg.startswith("self."):
                                tail = arg.split(".", 1)[1]
                            for key in self._name_matches(tail):
                                seed(key, "thread")

        # Propagate along call edges, honoring two barriers: crossing
        # into an async def (an event loop runs it), and crossing into a
        # constructor (construction is single-threaded startup — taint
        # through __init__ would stamp phantom contexts on its helpers).
        changed = True
        while changed:
            changed = False
            for key, kinds in list(ctx.items()):
                for nxt in self.call_edges.get(key, ()):
                    if nxt not in self.functions:
                        continue
                    nxt_info = self.functions[nxt][1]
                    if nxt_info.is_async:
                        continue
                    if nxt_info.name in _INIT_METHODS:
                        continue
                    cur = ctx.setdefault(nxt, set())
                    add = kinds - cur
                    if add:
                        cur.update(add)
                        changed = True
        return ctx

    # -- protocol views ---------------------------------------------------

    def op_tables(self) -> List[Tuple[ModuleSummary, OpTable]]:
        return [
            (summ, table)
            for summ in self.modules.values()
            for table in summ.op_tables
        ]

    def server_ops(self) -> Set[str]:
        return {
            op
            for summ, table in self.op_tables()
            if not table.is_router
            for op in table.op_names()
        }

    def router_ops(self) -> Set[str]:
        return {
            op
            for summ, table in self.op_tables()
            if table.is_router
            for op in table.op_names()
        }

    def has_router(self) -> bool:
        return any(table.is_router for _, table in self.op_tables())

    def error_vocabulary(self) -> Set[str]:
        vocab: Set[str] = set()
        for summ in self.modules.values():
            vocab.update(e.code for e in summ.error_classes)
            vocab.update(summ.code_kwargs)
        return vocab

    def instantiated_names(self) -> Set[str]:
        """Terminal names of everything called anywhere in the project."""
        out: Set[str] = set()
        for summ in self.modules.values():
            for info in summ.functions.values():
                for call in info.calls:
                    tail = call.callee.rsplit(".", 1)[-1].lstrip("@")
                    if call.callee.startswith("self."):
                        tail = call.callee.split(".", 1)[1]
                    out.add(tail)
                    for arg in call.args:
                        out.add(arg.rsplit(".", 1)[-1].lstrip("@"))
        return out

    def subclassed_names(self) -> Set[str]:
        out: Set[str] = set()
        for summ in self.modules.values():
            for bases in summ.classes.values():
                for base in bases:
                    out.add(base.rsplit(".", 1)[-1])
        return out
