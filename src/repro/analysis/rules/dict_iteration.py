"""dict-mutation-during-iteration: don't resize a dict you're walking.

Adding or removing keys while iterating a dict raises ``RuntimeError``
at runtime — but only on the code path that actually mutates, which in
streaming code can hide behind rare batch shapes for a long time.  For
every ``for k in d:`` / ``d.keys()/.values()/.items():`` loop this
heuristic flags, in the loop body:

* ``del d[...]``;
* calls to the resizing methods ``pop``/``popitem``/``clear``/
  ``update``/``setdefault``;
* subscript assignment ``d[expr] = ...`` where ``expr`` is anything
  other than a bare loop variable.

``d[k] = ...`` and ``d[k] *= g`` with ``k`` the loop variable are
allowed: overwriting an *existing* key never resizes (this is the
batched-rescale idiom in :mod:`repro.core.decay` and
:mod:`repro.index.pyramid`).  Iterating a materialized copy
(``for k in list(d):``) is the sanctioned escape hatch and is never
flagged, because the iterable is no longer a bare name.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional, Tuple

from ..astutils import dotted, loop_target_names
from ..engine import FileContext
from ..registry import rule

RESIZING_METHODS = frozenset({"pop", "popitem", "clear", "update", "setdefault"})

_VIEW_METHODS = frozenset({"keys", "values", "items"})


def _iterated_dict(iter_expr: ast.AST) -> Optional[str]:
    """The dotted name of the dict being iterated directly, if any."""
    if (
        isinstance(iter_expr, ast.Call)
        and isinstance(iter_expr.func, ast.Attribute)
        and iter_expr.func.attr in _VIEW_METHODS
        and not iter_expr.args
        and not iter_expr.keywords
    ):
        return dotted(iter_expr.func.value)
    return dotted(iter_expr)


def _subscript_of(node: ast.AST, name: str) -> Optional[ast.Subscript]:
    if isinstance(node, ast.Subscript) and dotted(node.value) == name:
        return node
    return None


def _check_body(
    loop: ast.For, name: str, ctx: FileContext
) -> Iterator[Tuple[ast.AST, str]]:
    targets = loop_target_names(loop.target)
    for node in ast.walk(loop):
        if node is loop:
            continue
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if _subscript_of(target, name) is not None:
                    yield (
                        node,
                        f"del {name}[...] while iterating {name}; iterate "
                        f"list({name}) instead",
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in RESIZING_METHODS
                and dotted(func.value) == name
            ):
                yield (
                    node,
                    f"{name}.{func.attr}() may resize {name} while it is "
                    f"being iterated; iterate list({name}) instead",
                )
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            write_targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in write_targets:
                sub = _subscript_of(target, name)
                if sub is None:
                    continue
                index = sub.slice
                if isinstance(index, ast.Name) and index.id in targets:
                    continue  # overwriting the current key never resizes
                yield (
                    node,
                    f"{name}[...] assignment with a non-loop-variable key "
                    f"may insert while {name} is being iterated; collect "
                    f"changes and apply after the loop",
                )


@rule(
    "dict-mutation-during-iteration",
    "a dict must not be resized while it is being iterated",
)
def check(ctx: FileContext) -> Iterable[Tuple[ast.AST, str]]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.For):
            continue
        name = _iterated_dict(node.iter)
        if name is None:
            continue
        yield from _check_body(node, name, ctx)


__all__ = ["RESIZING_METHODS", "check"]
