"""Built-in rules; importing this package registers all of them."""

from . import (  # noqa: F401  (imports register the rules)
    async_blocking,
    async_races,
    backend_parity,
    dict_iteration,
    exports,
    fault_hooks,
    float_equality,
    mutable_defaults,
    op_span_coverage,
    protocol,
    service_exceptions,
    snapshot_immutability,
    wall_clock,
    writer_discipline,
)

__all__ = [
    "async_blocking",
    "async_races",
    "backend_parity",
    "dict_iteration",
    "exports",
    "fault_hooks",
    "float_equality",
    "mutable_defaults",
    "op_span_coverage",
    "protocol",
    "service_exceptions",
    "snapshot_immutability",
    "wall_clock",
    "writer_discipline",
]
