"""writer-discipline: engine mutation stays on the writer thread.

The service's concurrency model (docs/service.md) is single-writer /
multi-reader: exactly one thread — the :class:`~repro.service.
engine_host.EngineHost` writer — may call engine- or index-mutating
methods; every other service path reads immutable ``PublishedState``
snapshots.  This rule flags calls to known mutators from service modules
outside the writer paths (``engine_host`` itself and ``snapshots``,
whose WAL-replay drives the engine during recovery *before* the host
starts).  The sharded tier (:mod:`repro.shard`) inherits the same
contract: each worker process embeds a full service stack, and the
router/merge/admin modules are pure readers — only ``repro.shard.worker``
may touch an engine (it rebuilds the shard's graph before handing it to
the in-process ``ANCServer``).  Non-service code — benchmarks, CLI,
tests, the library API — owns its engines outright and may mutate
freely.

The mutator registry is **derived from the source of truth**: the method
sets of :class:`~repro.core.anc.ANCEngineBase` and its subclasses, of
:class:`~repro.index.pyramid.PyramidIndex`, and the module-level update
functions of :mod:`repro.index.dynamic`, minus an explicit read-only
allowlist — so a mutator added to the engine later is covered without
touching this rule.  A hard-coded fallback keeps the rule alive if that
derivation ever fails (e.g. the linter running on a partial checkout).
``close`` is deliberately excluded: the name is too generic (file
handles, clients, executors) to flag without drowning in false
positives, and closing is a lifecycle action, not a state mutation.
"""

from __future__ import annotations

import ast
from functools import lru_cache
from pathlib import Path
from typing import FrozenSet, Iterable, Iterator, Tuple

from ..astutils import dotted
from ..engine import FileContext
from ..registry import rule

#: Service/shard modules allowed to drive engine mutation.  The shard
#: worker hosts a full in-process ``ANCServer`` (its own writer thread);
#: everything else in ``repro.shard`` — router, merge, admin — must stay
#: read-only.
WRITER_MODULES = frozenset(
    {
        "repro.service.engine_host",
        "repro.service.snapshots",
        "repro.shard.worker",
    }
)

#: Engine/index methods that only *read* — never part of the registry.
READ_ONLY_METHODS = frozenset(
    {
        "clusters",
        "cluster_of",
        "zoom_in",
        "zoom_out",
        "stats",
        "now",
        "weight",
        "weights_view",
        "partitions",
        "partitions_at",
        "vote_count",
        "same_cluster_vote",
        "memory_cost",
        "check_consistency",
        "num_levels",
        "snapshot_weights",
        "partitions_with_levels",
    }
)

#: Lifecycle methods excluded from the registry (see module docstring).
#: ``attach_obs`` wires an observability bundle onto an engine before the
#: writer starts — configuration, not state mutation, and the server does
#: it from ``__init__`` by design.
EXCLUDED_METHODS = frozenset({"close", "attach_obs"})

FALLBACK_METHOD_MUTATORS = frozenset(
    {
        # ANCEngineBase and subclasses
        "process",
        "process_batch",
        "process_stream",
        "on_batch_end",
        "refresh",
        # PyramidIndex
        "update_edge_weight",
        "set_all_weights",
        "rebuild",
        "on_rescale",
        "drain_affected",
    }
)

FALLBACK_FUNCTION_MUTATORS = frozenset(
    {"insert_edge_into_index", "register_edge_in_metric", "add_relation_edge"}
)

#: Classes whose public methods (minus the allowlist) are mutators.
_ENGINE_CLASSES = frozenset({"ANCEngineBase", "ANCO", "ANCOR", "ANCF"})
_INDEX_CLASSES = frozenset({"PyramidIndex"})


def _is_property(node: ast.AST) -> bool:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    for deco in node.decorator_list:
        name = dotted(deco)
        if name in ("property", "cached_property", "functools.cached_property"):
            return True
    return False


def _class_methods(tree: ast.Module, class_names: FrozenSet[str]) -> Iterator[str]:
    for node in tree.body:
        if not (isinstance(node, ast.ClassDef) and node.name in class_names):
            continue
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name.startswith("_") or _is_property(item):
                continue
            yield item.name


def _module_functions(tree: ast.Module) -> Iterator[str]:
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and not node.name.startswith("_"):
            yield node.name


def _parse(path: Path) -> ast.Module:
    return ast.parse(path.read_text(encoding="utf-8"), filename=str(path))


@lru_cache(maxsize=1)
def mutator_registry() -> Tuple[FrozenSet[str], FrozenSet[str]]:
    """(method mutators, function mutators), derived from the sources."""
    package_root = Path(__file__).resolve().parents[2]
    try:
        methods = set()
        methods.update(
            _class_methods(_parse(package_root / "core" / "anc.py"), _ENGINE_CLASSES)
        )
        methods.update(
            _class_methods(
                _parse(package_root / "index" / "pyramid.py"), _INDEX_CLASSES
            )
        )
        functions = set(
            _module_functions(_parse(package_root / "index" / "dynamic.py"))
        )
        methods -= READ_ONLY_METHODS | EXCLUDED_METHODS
        functions -= READ_ONLY_METHODS | EXCLUDED_METHODS
        if not methods or not functions:
            raise ValueError("derived mutator registry is empty")
        return frozenset(methods), frozenset(functions)
    except (OSError, SyntaxError, ValueError):
        return FALLBACK_METHOD_MUTATORS, FALLBACK_FUNCTION_MUTATORS


@rule(
    "writer-discipline",
    "engine/index mutators may only be called from the service writer paths",
)
def check(ctx: FileContext) -> Iterable[Tuple[ast.AST, str]]:
    if not ctx.in_package("repro.service", "repro.shard"):
        return
    if ctx.module in WRITER_MODULES:
        return
    method_mutators, function_mutators = mutator_registry()
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in method_mutators:
            yield (
                node,
                f"call to engine mutator .{func.attr}() outside the writer "
                f"path; route mutations through EngineHost (single-writer "
                f"discipline, docs/service.md)",
            )
        elif isinstance(func, ast.Name) and func.id in function_mutators:
            yield (
                node,
                f"call to index mutator {func.id}() outside the writer path; "
                f"route mutations through EngineHost (single-writer "
                f"discipline, docs/service.md)",
            )


__all__ = [
    "EXCLUDED_METHODS",
    "FALLBACK_FUNCTION_MUTATORS",
    "FALLBACK_METHOD_MUTATORS",
    "READ_ONLY_METHODS",
    "WRITER_MODULES",
    "check",
    "mutator_registry",
]
