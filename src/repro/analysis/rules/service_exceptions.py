"""service-exception-discipline: no silently swallowed service failures.

The resilience contract (docs/faults.md) is that a fault either heals
into byte-identical state or surfaces as a *typed* error — never a bare
``except ... pass`` that turns data loss into silence.  The serving
stack (:mod:`repro.service`) and the fault harness (:mod:`repro.faults`)
therefore hold every ``except`` handler to one of three outcomes:

* **re-raise** — the handler contains a ``raise`` (bare or chained);
* **map to a typed error** — the handler references one of the typed
  service exceptions or the :func:`repro.service.errors.fault_response`
  mapper (assigning ``ServiceTimeout(...)`` to a retry loop's
  ``last_error`` counts: the type is preserved for the caller);
* **carry a counted pragma** — a trailing
  ``# anclint: disable=service-exception-discipline — reason`` on the
  ``except`` line, for the handful of handlers whose only correct action
  is closing a connection that is already dead.  Pragmas are counted in
  every lint report, so the exemption list stays auditable.

Catching one of the typed errors *by name* also counts as disciplined —
the type already classified the failure (retry loops store it, the chaos
harness records it), so nothing is being silenced.

Handlers for ``asyncio.CancelledError`` and ``StopIteration`` are flow
control, not failures, and are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterable, Tuple

from ..engine import FileContext
from ..registry import rule

#: Package prefixes the discipline applies to.
SERVICE_PACKAGES = (
    "repro.service",
    "repro.faults",
    "repro.replica",
    "repro.readpath",
)

#: Terminal identifiers that mark a handler as "maps to a typed error".
TYPED_ERROR_NAMES = frozenset(
    {
        "fault_response",
        "ServiceFault",
        "BadRequest",
        "UnknownOp",
        "Overloaded",
        "Unavailable",
        "ServiceError",
        "ServiceConnectError",
        "ServiceTimeout",
        "ServiceRetryAfter",
        "ServiceUnavailable",
        "WalCorruptError",
        "CheckpointCorruptError",
        "InjectedFault",
        "InjectedCrash",
        "ChaosResult",
        "Fenced",
        "ReadOnly",
        "Diverged",
        "ReplicationError",
    }
)

#: Exception types whose handlers are flow control, not failure handling.
FLOW_CONTROL_TYPES = frozenset(
    {"CancelledError", "StopIteration", "StopAsyncIteration", "TimeoutError"}
)


def _terminal_name(node: ast.expr) -> str:
    """The last identifier of a Name/Attribute chain, '' otherwise."""
    while isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _handler_types(handler: ast.ExceptHandler) -> Iterable[str]:
    """Terminal names of the exception types a handler catches."""
    node = handler.type
    if node is None:
        return []
    if isinstance(node, ast.Tuple):
        return [_terminal_name(elt) for elt in node.elts]
    return [_terminal_name(node)]


def _is_flow_control(handler: ast.ExceptHandler) -> bool:
    names = list(_handler_types(handler))
    return bool(names) and all(name in FLOW_CONTROL_TYPES for name in names)


def _is_disciplined(handler: ast.ExceptHandler) -> bool:
    # Catching a *typed* error by name is deliberate handling: the type
    # already classified the failure (retry loops store it, the chaos
    # harness records it); silence is only possible for untyped catches.
    if any(name in TYPED_ERROR_NAMES for name in _handler_types(handler)):
        return True
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Name) and node.id in TYPED_ERROR_NAMES:
                return True
            if isinstance(node, ast.Attribute) and node.attr in TYPED_ERROR_NAMES:
                return True
    return False


@rule(
    "service-exception-discipline",
    "service/faults except handlers must re-raise, map to a typed error, "
    "or carry a counted pragma",
)
def check(ctx: FileContext) -> Iterable[Tuple[ast.AST, str]]:
    if not ctx.in_package(*SERVICE_PACKAGES):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if _is_flow_control(node):
            continue
        if _is_disciplined(node):
            continue
        caught = ", ".join(_handler_types(node)) or "everything"
        yield (
            node,
            f"handler for {caught} neither re-raises nor maps to a typed "
            f"service error; a swallowed failure here turns data loss into "
            f"silence — re-raise, wrap in a typed error, or add a trailing "
            f"counted pragma with the reason (docs/faults.md)",
        )


__all__ = [
    "FLOW_CONTROL_TYPES",
    "SERVICE_PACKAGES",
    "TYPED_ERROR_NAMES",
    "check",
]
