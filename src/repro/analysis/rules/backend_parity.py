"""backend-parity-discipline: hot-state writers must exist in both backends.

The engine has two interchangeable backends (docs/engine-internals.md):
the dict-of-dicts oracle and the structure-of-arrays hot path
(:mod:`repro.core.arrays`, :mod:`repro.index.array_index`).  The array
backend mirrors three dict containers into flat storage — the anchored
edge values (``AnchoredEdgeValues._values``), the cached node strengths
(``ActiveSimilarity._strength``) and the index weight table
(``PyramidIndex._weights``).  A method on a base class that writes one
of those containers *directly* updates only the dict side; unless the
array subclass overrides it (or the write funnels through a mutator the
subclass overrides, like ``PyramidIndex._store_weight``), the two
backends silently diverge and the differential harness
(``tests/test_engine_parity.py``) fails long after the edit that caused
it.

This rule closes that gap at lint time: inside the tracked hot-path
modules, any method of a tracked class whose body writes a tracked
container must be overridden by the corresponding array class.  Writes
routed through store/mutator *methods* are exempt by construction —
they dispatch virtually, so the array store receives them — which is
exactly the discipline the rule name demands: write hot state through
an interface both backends implement, or implement it twice.

The override sets are **derived from the array sources** at lint time
(parsed once per process); a hard-coded fallback keeps the rule alive
on partial checkouts.  Escape hatch: ``# anclint:
disable=backend-parity-discipline — reason`` on the offending method.
"""

from __future__ import annotations

import ast
from functools import lru_cache
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Mapping, Tuple

from ..engine import FileContext
from ..registry import rule

#: Dict-container method calls that mutate in place.
MUTATING_CONTAINER_METHODS = frozenset(
    {"clear", "update", "pop", "popitem", "setdefault"}
)

#: base module -> (base class, tracked containers, array module, array class).
#: ``LocalReinforcement`` is deliberately absent: its writes all go
#: through the similarity store's mutator methods, which dispatch to the
#: array store virtually — the discipline this rule enforces.
TRACKED: Mapping[str, Tuple[str, FrozenSet[str], str, str]] = {
    "repro.core.decay": (
        "AnchoredEdgeValues",
        frozenset({"_values"}),
        "core/arrays.py",
        "ArrayEdgeValues",
    ),
    "repro.core.similarity": (
        "ActiveSimilarity",
        frozenset({"_strength"}),
        "core/arrays.py",
        "ArrayActiveSimilarity",
    ),
    "repro.index.pyramid": (
        "PyramidIndex",
        frozenset({"_weights"}),
        "index/array_index.py",
        "ArrayPyramidIndex",
    ),
}

#: Known overrides, used only if deriving from the sources fails.
FALLBACK_OVERRIDES: Mapping[str, FrozenSet[str]] = {
    "ArrayEdgeValues": frozenset(
        {"anchored", "set_anchored", "add_anchored", "set_actual",
         "_absorb", "items_anchored"}
    ),
    "ArrayActiveSimilarity": frozenset(
        {"_rebuild_strengths", "on_activation_delta", "on_rescale",
         "sigma", "role"}
    ),
    "ArrayPyramidIndex": frozenset(
        {"_store_weight", "update_edge_weight", "on_rescale",
         "set_all_weights"}
    ),
}


def _methods_of(tree: ast.Module, class_name: str) -> FrozenSet[str]:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return frozenset(
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            )
    return frozenset()


@lru_cache(maxsize=1)
def array_overrides() -> Mapping[str, FrozenSet[str]]:
    """array class -> its method names, derived from the array sources."""
    package_root = Path(__file__).resolve().parents[2]
    derived: Dict[str, FrozenSet[str]] = {}
    try:
        for _module, (_base, _containers, rel, cls) in TRACKED.items():
            source = (package_root / rel).read_text(encoding="utf-8")
            methods = _methods_of(ast.parse(source), cls)
            if not methods:
                raise ValueError(f"no methods found for {cls} in {rel}")
            derived[cls] = methods
        return derived
    except (OSError, SyntaxError, ValueError):
        return FALLBACK_OVERRIDES


def _is_self_container(node: ast.AST, containers: FrozenSet[str]) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in containers
    )


def _writes_container(
    method: ast.AST, containers: FrozenSet[str]
) -> Tuple[bool, str]:
    """(writes?, container name) for direct writes inside ``method``."""
    for node in ast.walk(method):
        targets: Iterable[ast.AST] = ()
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = (node.target,)
        elif isinstance(node, ast.Delete):
            targets = node.targets
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATING_CONTAINER_METHODS
                and _is_self_container(func.value, containers)
            ):
                return True, func.value.attr  # type: ignore[union-attr]
        for target in targets:
            if isinstance(target, ast.Subscript) and _is_self_container(
                target.value, containers
            ):
                return True, target.value.attr  # type: ignore[union-attr]
            if _is_self_container(target, containers):
                return True, target.attr  # type: ignore[union-attr]
    return False, ""


@rule(
    "backend-parity-discipline",
    "direct hot-state writers must be overridden by the array backend",
)
def check(ctx: FileContext) -> Iterable[Tuple[ast.AST, str]]:
    tracked = TRACKED.get(ctx.module)
    if tracked is None:
        return
    base_class, containers, array_module, array_class = tracked
    overrides = array_overrides().get(
        array_class, FALLBACK_OVERRIDES[array_class]
    )
    for node in ctx.tree.body:
        if not (isinstance(node, ast.ClassDef) and node.name == base_class):
            continue
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name == "__init__" or item.name in overrides:
                continue
            writes, container = _writes_container(item, containers)
            if writes:
                yield (
                    item,
                    f"hot-state writer {base_class}.{item.name}() mutates "
                    f"self.{container} but {array_class} "
                    f"(src/repro/{array_module}) does not override it; "
                    f"mirror the method in the array backend or route the "
                    f"write through an overridden mutator "
                    f"(backend parity discipline, docs/engine-internals.md)",
                )


__all__ = [
    "FALLBACK_OVERRIDES",
    "MUTATING_CONTAINER_METHODS",
    "TRACKED",
    "array_overrides",
    "check",
]
