"""export-consistency: every public module declares an honest ``__all__``.

``__all__`` is the module's public contract: it pins the wildcard-import
surface, tells readers (and mypy/ruff) which names are API, and makes
accidental exports — or accidentally *private* API — a lint failure
instead of a doc drift.  For every module under ``repro`` this rule
requires:

* a module-level ``__all__`` that is a literal list/tuple of strings;
* every entry resolves to a module-level binding (def, class,
  assignment or import — including those under ``if``/``try`` at the
  top level);
* every *public* top-level function and class defined in the module
  appears in ``__all__``.

Re-exported imports and public constants may be listed but are not
required to be: the contract is about the names the module itself
defines.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from ..astutils import str_constants
from ..engine import FileContext
from ..registry import rule


def _top_level_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Module body, descending into top-level ``if``/``try`` blocks."""
    stack: List[ast.stmt] = list(tree.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, ast.If):
            stack.extend(node.body)
            stack.extend(node.orelse)
        elif isinstance(node, ast.Try):
            stack.extend(node.body)
            stack.extend(node.orelse)
            stack.extend(node.finalbody)
            for handler in node.handlers:
                stack.extend(handler.body)


def _bound_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in _top_level_statements(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".", 1)[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    names.add(alias.asname or alias.name)
    return names


def _find_all(tree: ast.Module) -> Tuple[Optional[ast.stmt], Optional[Tuple[str, ...]]]:
    for node in _top_level_statements(tree):
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "__all__" in targets:
                return node, str_constants(node.value)
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == "__all__"
            and node.value is not None
        ):
            return node, str_constants(node.value)
    return None, None


def _public_defs(tree: ast.Module) -> Iterator[ast.stmt]:
    for node in _top_level_statements(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if not node.name.startswith("_"):
                yield node


@rule(
    "export-consistency",
    "every repro module declares an __all__ matching its public surface",
)
def check(ctx: FileContext) -> Iterable[Tuple[ast.AST, str]]:
    if not ctx.in_package("repro"):
        return
    node, entries = _find_all(ctx.tree)
    if node is None:
        yield (
            ctx.tree.body[0] if ctx.tree.body else ctx.tree,
            "public module defines no __all__; declare the module's "
            "export contract",
        )
        return
    if entries is None:
        yield (
            node,
            "__all__ must be a literal list/tuple of string names so it "
            "can be statically checked",
        )
        return
    bound = _bound_names(ctx.tree)
    for entry in entries:
        if entry not in bound:
            yield (
                node,
                f"__all__ lists {entry!r}, which is not defined or imported "
                f"at module level",
            )
    listed = set(entries)
    for definition in _public_defs(ctx.tree):
        name = getattr(definition, "name", "")
        if name and name not in listed:
            yield (
                definition,
                f"public {type(definition).__name__.replace('Def', '').lower()} "
                f"{name!r} is not listed in __all__; export it or rename it "
                f"with a leading underscore",
            )


__all__ = ["check"]
