"""no-blocking-in-async: coroutines in repro.service must not block.

One blocked coroutine stalls the whole event loop — ingestion, queries
and checkpoint timers all share it.  Inside any ``async def`` in the
service package this rule flags:

* ``time.sleep`` (use ``asyncio.sleep``);
* direct blocking I/O constructors — builtin ``open``, ``socket.*``
  connection calls, ``subprocess`` helpers (run them in the writer
  executor instead);
* bare ``.acquire()`` calls that are not awaited — a
  ``threading.Lock.acquire`` blocks the loop, and an un-awaited
  ``asyncio.Lock.acquire()`` is a bug anyway.

Nested ``def`` bodies are skipped: the host hands such closures to the
writer executor, where blocking is exactly what they are for.  The WAL
write inside ``EngineHost.ingest`` is a deliberate, documented
exception (an ``fsync``-bounded append the design accepts); it is a
method call on the WAL object, which this rule — scoped to *direct*
blocking constructors — does not match.
"""

from __future__ import annotations

import ast
from typing import Iterable, Tuple

from ..astutils import call_name, is_awaited, walk_skipping_functions
from ..engine import FileContext
from ..registry import rule

BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "open",
        "socket.socket",
        "socket.create_connection",
        "socket.socketpair",
        "socket.getaddrinfo",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "os.system",
        "urllib.request.urlopen",
    }
)


@rule(
    "no-blocking-in-async",
    "async service code must not call blocking primitives on the event loop",
)
def check(ctx: FileContext) -> Iterable[Tuple[ast.AST, str]]:
    if not ctx.in_package("repro.service"):
        return
    for func in ast.walk(ctx.tree):
        if not isinstance(func, ast.AsyncFunctionDef):
            continue
        for node in walk_skipping_functions(func.body):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node, ctx.imports)
            if name in BLOCKING_CALLS:
                hint = (
                    "use asyncio.sleep"
                    if name == "time.sleep"
                    else "run it in the writer executor"
                )
                yield (
                    node,
                    f"blocking call {name}() inside async def "
                    f"{func.name}() stalls the event loop; {hint}",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
                and not is_awaited(node)
            ):
                yield (
                    node,
                    f"bare .acquire() inside async def {func.name}() blocks "
                    f"the event loop; await an asyncio primitive instead",
                )


__all__ = ["BLOCKING_CALLS", "check"]
