"""Whole-program rule: every wire op must execute under a span.

The fleet trace (docs/observability.md) is only as complete as the
spans the servers emit: an ``_OPS`` handler that never opens a span is
a hole in every trace that crosses it — the client sees latency the
trace cannot attribute.  A handler counts as covered when any of:

* a span-creating call (``tracer.span`` / ``tracer.wire_span``) appears
  in the handler itself or in code reachable from it through the call
  graph;
* the table's class has a **dispatcher** — a method that reads the
  ``_OPS`` attribute and opens a span — which wraps every handler it
  dispatches (the ``_handle_request`` pattern);
* an ``# anclint: disable=op-span-coverage — reason`` pragma on the
  handler's ``def`` line (counted, like every exemption).

Projects that do not trace at all are not nagged: the rule stays
silent until at least one span-creating call exists anywhere in the
model, so adopting the observability layer is what arms it.
"""

from __future__ import annotations

from typing import Iterable, Set, Tuple

from ..project import FunctionInfo, ProjectModel
from ..registry import whole_program_rule

__all__ = ["check"]

_SPAN_TAILS = ("span", "wire_span")


def _has_span_call(info: FunctionInfo) -> bool:
    """True when the function body opens a span directly.

    Matches every CallSite encoding a span factory can take:
    ``self.span`` / ``self.wire_span`` (engine-style mixin methods),
    ``@span`` / ``@wire_span`` (``self.tracer.span(...)`` and other
    attribute paths), and dotted module calls ending in the tail.
    """
    for call in info.calls:
        tail = call.callee.rsplit(".", 1)[-1].lstrip("@")
        if call.callee.startswith("self."):
            tail = call.callee.split(".", 1)[1]
        if tail in _SPAN_TAILS:
            return True
    return False


@whole_program_rule(
    "op-span-coverage",
    "every _OPS handler must run under a span: its own, one reachable "
    "through its calls, or a span-wrapping dispatcher",
)
def check(model: ProjectModel) -> Iterable[Tuple[str, int, int, str]]:
    if not any(
        _has_span_call(info) for _, info in model.functions.values()
    ):
        return  # project has no tracing layer; nothing to cover yet
    for summ, table in model.op_tables():
        dispatched = any(
            info.cls == table.cls and info.reads_ops and _has_span_call(info)
            for info in summ.functions.values()
        )
        if dispatched:
            continue
        seen: Set[str] = set()
        for op, _line, _col, handler in table.ops:
            name = handler.rsplit(".", 1)[-1]
            key = f"{summ.module}:{table.cls}.{name}"
            if key in seen:
                continue
            seen.add(key)
            entry = model.functions.get(key)
            if entry is None:
                # Handler not resolvable in this class; that gap is
                # protocol-conformance territory, not span coverage.
                continue
            _summ, info = entry
            covered = any(
                k in model.functions and _has_span_call(model.functions[k][1])
                for k in model.reachable({key})
            )
            if not covered:
                yield (
                    summ.path,
                    info.line,
                    0,
                    f"op {op!r} handler {table.cls}.{name} opens no span "
                    "and no span-wrapping dispatcher covers it; requests "
                    "through this op are invisible to fleet traces — wrap "
                    "the dispatch loop in a span or open one in the handler",
                )
