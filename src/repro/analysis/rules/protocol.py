"""Whole-program rule: wire-protocol conformance.

The service protocol lives in conventions spread over many files: the
server's ``_OPS`` dispatch table, the client's ``request("op", ...)``
calls, the router's forward/scatter tables, the typed error-code
vocabulary in ``errors`` modules, and the response-envelope keys each
side reads and writes.  This rule cross-checks them:

* an op emitted anywhere (client request, payload literal, scatter) with
  no handler in any ``_OPS`` table — the request can only 404;
* a ``request("op")`` emission from a ``*client`` module that no router
  table covers — the op silently dies at the shard tier even though the
  server would handle it;
* an error class defined in an ``errors`` module that nothing ever
  raises or subclasses, and an ``error_type``/``code`` comparison against
  a string outside the defined vocabulary;
* a response key read straight off a ``request(...)`` result that no
  op-table module (or its direct imports) ever writes.

Every check is silent when the project lacks the relevant structure, so
the rule only engages in codebases that actually speak the protocol.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set, Tuple

from ..project import ModuleSummary, ProjectModel
from ..registry import whole_program_rule

__all__ = ["check", "op_inventory"]


def _emit_modules(model: ProjectModel) -> Iterator[ModuleSummary]:
    for summ in model.modules.values():
        if summ.op_emits:
            yield summ


def _response_key_pool(model: ProjectModel) -> Set[str]:
    """String keys written by op-table modules and their direct imports."""
    pool: Set[str] = set()
    for summ, _table in model.op_tables():
        pool.update(summ.str_keys)
        for mod in model.import_graph.get(summ.module, ()):
            pool.update(model.modules[mod].str_keys)
    return pool


def _check_emitted_ops(
    model: ProjectModel,
) -> Iterator[Tuple[str, int, int, str]]:
    all_ops = model.server_ops() | model.router_ops()
    if not all_ops:
        return
    router_ops = model.router_ops()
    has_router = model.has_router()
    for summ in _emit_modules(model):
        in_table_module = bool(summ.op_tables)
        for emit in summ.op_emits:
            if emit.op not in all_ops:
                yield (
                    summ.path,
                    emit.line,
                    emit.col,
                    f"op {emit.op!r} is sent ({emit.channel}) but no _OPS "
                    "table handles it; the request can only fail with "
                    "UNKNOWN_OP",
                )
                continue
            if (
                has_router
                and emit.channel == "request"
                and summ.last_segment == "client"
                and not in_table_module
                and emit.op not in router_ops
            ):
                yield (
                    summ.path,
                    emit.line,
                    emit.col,
                    f"client op {emit.op!r} has a server handler but the "
                    "router neither forwards nor handles it — it 404s "
                    "through the shard tier; add it to the router _OPS",
                )


def _check_error_codes(
    model: ProjectModel,
) -> Iterator[Tuple[str, int, int, str]]:
    vocab = model.error_vocabulary()
    if not vocab:
        return
    called = model.instantiated_names()
    subclassed = model.subclassed_names()
    for summ in model.modules.values():
        for err in summ.error_classes:
            if err.name not in called and err.name not in subclassed:
                yield (
                    summ.path,
                    err.line,
                    err.col,
                    f"error class {err.name} maps code {err.code!r} but is "
                    "never raised or subclassed anywhere in the project; "
                    "dead vocabulary misleads clients",
                )
        for code, line, col in summ.code_compares:
            if code not in vocab:
                yield (
                    summ.path,
                    line,
                    col,
                    f"comparison against error code {code!r} which no error "
                    "class or code= kwarg defines; this branch can never "
                    "match",
                )


def _check_response_reads(
    model: ProjectModel,
) -> Iterator[Tuple[str, int, int, str]]:
    if not model.op_tables():
        return
    pool = _response_key_pool(model)
    if not pool:
        return
    for summ in model.modules.values():
        for read in summ.response_reads:
            if read.key not in pool:
                yield (
                    summ.path,
                    read.line,
                    read.col,
                    f"response key {read.key!r} is read off a request() "
                    "result but no op-table module ever writes it; the "
                    "read can only raise KeyError",
                )


@whole_program_rule(
    "protocol-conformance",
    "wire ops, error codes and response keys must agree across "
    "client, server and router",
)
def check(model: ProjectModel) -> Iterable[Tuple[str, int, int, str]]:
    yield from _check_emitted_ops(model)
    yield from _check_error_codes(model)
    yield from _check_response_reads(model)


def op_inventory(model: ProjectModel) -> List[Dict[str, str]]:
    """The protocol-op table behind ``repro-anc lint --list-ops``.

    One row per known op: which dispatch classes handle it, how the
    router treats it (scatter / forwarded / local / absent), and which
    functions emit it.
    """
    handlers: Dict[str, List[str]] = {}
    for summ, table in model.op_tables():
        for op, _line, _col, _handler in table.ops:
            handlers.setdefault(op, []).append(table.cls)
    scatter_ops: Set[str] = set()
    payload_ops: Set[str] = set()
    emitters: Dict[str, Set[str]] = {}
    router_modules = {
        summ.module for summ, table in model.op_tables() if table.is_router
    }
    for summ in model.modules.values():
        for emit in summ.op_emits:
            if emit.channel == "scatter":
                scatter_ops.add(emit.op)
            elif emit.channel == "payload" and summ.module in router_modules:
                payload_ops.add(emit.op)
            if emit.channel == "request":
                emitters.setdefault(emit.op, set()).add(
                    f"{summ.last_segment}.{emit.func}"
                )
    router_ops = model.router_ops()
    rows: List[Dict[str, str]] = []
    for op in sorted(handlers):
        if op in scatter_ops:
            routing = "scatter"
        elif op in payload_ops:
            routing = "forwarded"
        elif op in router_ops:
            routing = "local"
        else:
            routing = "—" if router_ops else "n/a"
        rows.append(
            {
                "op": op,
                "handlers": ", ".join(sorted(set(handlers[op]))),
                "routing": routing,
                "emitters": ", ".join(sorted(emitters.get(op, ()))) or "—",
            }
        )
    return rows
