"""Whole-program rule: asyncio/thread/process interaction hazards.

Three hazards the per-file rules cannot see because the evidence spans
files and the call graph:

* **multi-context attribute writes** — an instance attribute written
  (assignment, item write or mutating method call) from more than one
  execution context — the event loop, a thread target, a multiprocessing
  child — without a lock guard.  Contexts come from
  :meth:`ProjectModel.contexts`, which seeds async defs as loop code and
  ``Thread(target=)`` / ``run_in_executor`` / ``Process(target=)``
  targets as thread/process code, then propagates along call edges with
  an async barrier (crossing into a coroutine means an event loop runs
  it, so thread taint stops there);
* **await under a sync lock** — ``await`` inside ``with self.<lock>:``
  where ``<lock>`` is a ``threading.Lock``-family attribute of the same
  class.  The coroutine parks holding a lock the loop thread itself may
  next try to take: a deadlock that only fires under contention;
* **fire-and-forget tasks** — ``create_task`` / ``ensure_future`` as a
  bare expression statement.  Nothing retains the handle, so the task
  can be garbage-collected mid-flight and its exception is silently
  dropped; keep a reference and observe the result.

The multi-context check is scoped to the distributed-system packages
(any module with a ``service`` / ``shard`` / ``replica`` path segment):
that is where the loop/thread/process mix actually lives, and where a
torn read corrupts served state.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set, Tuple

from ..project import AttrWrite, ModuleSummary, ProjectModel
from ..registry import whole_program_rule

__all__ = ["check"]

_SCOPED_SEGMENTS = frozenset({"service", "shard", "replica"})


def _in_scope(summ: ModuleSummary) -> bool:
    return bool(_SCOPED_SEGMENTS & set(summ.segments()))


def _check_unretained_tasks(
    model: ProjectModel,
) -> Iterator[Tuple[str, int, int, str]]:
    for summ in model.modules.values():
        for spawn in summ.spawns:
            if spawn.kind == "task" and not spawn.retained:
                yield (
                    summ.path,
                    spawn.line,
                    spawn.col,
                    "fire-and-forget create_task: the handle is not "
                    "retained, so the task can be collected mid-flight and "
                    "its exception silently dropped; keep a reference and "
                    "observe the result",
                )


def _check_locked_awaits(
    model: ProjectModel,
) -> Iterator[Tuple[str, int, int, str]]:
    for summ in model.modules.values():
        sync_locks: Set[Tuple[str, str]] = {
            (lk.cls, lk.attr) for lk in summ.locks if lk.sync
        }
        if not sync_locks:
            continue
        for la in summ.locked_awaits:
            if la.cls is not None and (la.cls, la.lock_attr) in sync_locks:
                yield (
                    summ.path,
                    la.line,
                    la.col,
                    f"await while holding sync lock self.{la.lock_attr} in "
                    f"{la.cls}.{la.func}: the coroutine parks with the lock "
                    "held and can deadlock the loop; use asyncio.Lock or "
                    "release before awaiting",
                )


def _context_of_write(
    write: AttrWrite,
    summ: ModuleSummary,
    ctx: Dict[str, Set[str]],
    model: ProjectModel,
) -> Set[str]:
    key = f"{summ.module}:{write.func}"
    kinds = set(ctx.get(key, ()))
    info = model.functions.get(key)
    if info is not None and info[1].is_async:
        kinds.add("loop")
    return kinds


def _check_multi_context_writes(
    model: ProjectModel,
) -> Iterator[Tuple[str, int, int, str]]:
    ctx = model.contexts()
    for summ in model.modules.values():
        if not _in_scope(summ):
            continue
        locked_attrs: Set[Tuple[str, str]] = {
            (lk.cls, lk.attr) for lk in summ.locks
        }
        by_attr: Dict[Tuple[str, str], List[Tuple[AttrWrite, Set[str]]]] = {}
        for write in summ.attr_writes:
            if write.in_init or write.guarded:
                continue
            if (write.cls, write.attr) in locked_attrs:
                continue  # the lock attribute itself
            kinds = _context_of_write(write, summ, ctx, model)
            if kinds:
                by_attr.setdefault((write.cls, write.attr), []).append(
                    (write, kinds)
                )
        for (cls, attr), writes in sorted(by_attr.items()):
            all_kinds: Set[str] = set()
            for _w, kinds in writes:
                all_kinds.update(kinds)
            if len(all_kinds) < 2:
                continue
            first = min(writes, key=lambda wk: (wk[0].line, wk[0].col))[0]
            where = ", ".join(
                sorted(
                    {
                        f"{w.func} ({'/'.join(sorted(k))})"
                        for w, k in writes
                    }
                )
            )
            yield (
                summ.path,
                first.line,
                first.col,
                f"{cls}.{attr} is written from more than one execution "
                f"context ({'/'.join(sorted(all_kinds))}) without a lock: "
                f"{where}; guard it, funnel writes through a queue, or keep "
                "a single writer",
            )


@whole_program_rule(
    "async-task-race",
    "attributes shared across loop/thread/process contexts, awaits "
    "under sync locks, and unretained tasks",
)
def check(model: ProjectModel) -> Iterable[Tuple[str, int, int, str]]:
    yield from _check_unretained_tasks(model)
    yield from _check_locked_awaits(model)
    yield from _check_multi_context_writes(model)
