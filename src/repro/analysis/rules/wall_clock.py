"""no-wall-clock-in-engine: engine code never reads the wall clock.

Byte-identical kill -9 recovery (docs/service.md) replays the WAL
through the same engine code and must land on the same state; that only
holds if ``core/``, ``index/`` and ``graph/`` derive every timestamp
from the data (activation ``t`` values), never from the machine.  The
service, benchmarks and CLI legitimately read real time (flush timers,
metrics, wall-clock measurements) and are out of scope.
"""

from __future__ import annotations

import ast
from typing import Iterable, Tuple

from ..astutils import call_name
from ..engine import FileContext
from ..registry import rule

#: Package prefixes where the wall clock is banned.
ENGINE_PACKAGES = ("repro.core", "repro.index", "repro.graph")

BANNED_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.localtime",
        "time.gmtime",
    }
)

#: ``now``-family constructors; argless means "naive wall clock".
DATETIME_NOW = frozenset(
    {
        "datetime.now",
        "datetime.today",
        "datetime.utcnow",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)


@rule(
    "no-wall-clock-in-engine",
    "core/index/graph code must derive time from the data, not the machine",
)
def check(ctx: FileContext) -> Iterable[Tuple[ast.AST, str]]:
    if not ctx.in_package(*ENGINE_PACKAGES):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node, ctx.imports)
        if name is None:
            continue
        if name in BANNED_CALLS:
            yield (
                node,
                f"{name}() reads the wall clock inside engine code; derive "
                f"time from activation timestamps so WAL replay stays "
                f"byte-identical (docs/service.md)",
            )
        elif name in DATETIME_NOW and not node.args and not node.keywords:
            yield (
                node,
                f"argless {name}() reads the naive wall clock inside engine "
                f"code; derive time from activation timestamps instead",
            )


__all__ = ["BANNED_CALLS", "DATETIME_NOW", "ENGINE_PACKAGES", "check"]
