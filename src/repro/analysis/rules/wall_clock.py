"""no-wall-clock-in-engine: engine code never reads the wall clock.

Byte-identical kill -9 recovery (docs/service.md) replays the WAL
through the same engine code and must land on the same state; that only
holds if ``core/``, ``index/`` and ``graph/`` derive every timestamp
from the data (activation ``t`` values), never from the machine.  The
service, benchmarks and CLI legitimately read real time (flush timers,
metrics, wall-clock measurements) and are out of scope.

One carve-out: **instrumentation** measures how long engine code takes
without feeding the reading back into engine state, so it cannot break
replay determinism.  Engine modules that want a duration therefore
import the timing facade from :mod:`repro.obs.trace` (its
``perf_counter`` re-export) rather than :mod:`time` directly — the
facade names are allowlisted here, every direct ``time.*`` read (and
any aliased re-import of one, caught by terminal-suffix matching) stays
banned.  The allowlist is the *only* sanctioned route; growing it means
editing :mod:`repro.obs.trace`, which keeps the exception auditable in
one place (docs/static-analysis.md).
"""

from __future__ import annotations

import ast
from typing import Iterable, Tuple

from ..astutils import call_name
from ..engine import FileContext
from ..registry import rule

#: Package prefixes where the wall clock is banned.
ENGINE_PACKAGES = ("repro.core", "repro.index", "repro.graph")

BANNED_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.localtime",
        "time.gmtime",
    }
)

#: ``now``-family constructors; argless means "naive wall clock".
DATETIME_NOW = frozenset(
    {
        "datetime.now",
        "datetime.today",
        "datetime.utcnow",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

#: Terminal attribute names that read a clock.  A dotted call whose last
#: segment lands here is treated as a clock read even when the module was
#: aliased (``import time as _t; _t.time()`` resolves to ``time.time`` and
#: is already in BANNED_CALLS, but ``from time import perf_counter as pc``
#: re-exported through a helper module resolves to ``<module>.perf_counter``
#: — the suffix catches it).
BANNED_SUFFIXES = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
    }
)

#: Module prefixes whose timing names are the sanctioned instrumentation
#: facade (see module docstring).  Relative imports resolve to
#: dot-prefixed names (``from ..obs.trace import perf_counter`` →
#: ``..obs.trace.perf_counter``), hence the ``lstrip``.
OBS_FACADE_PREFIXES = ("repro.obs.", "obs.")


def _is_obs_facade(name: str) -> bool:
    """Whether a resolved call name goes through the repro.obs facade."""
    stripped = name.lstrip(".")
    return stripped.startswith(OBS_FACADE_PREFIXES)


@rule(
    "no-wall-clock-in-engine",
    "core/index/graph code must derive time from the data, not the machine",
)
def check(ctx: FileContext) -> Iterable[Tuple[ast.AST, str]]:
    if not ctx.in_package(*ENGINE_PACKAGES):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node, ctx.imports)
        if name is None:
            continue
        if _is_obs_facade(name):
            continue
        if name in BANNED_CALLS or (
            "." in name and name.rpartition(".")[2] in BANNED_SUFFIXES
        ):
            yield (
                node,
                f"{name}() reads the wall clock inside engine code; derive "
                f"time from activation timestamps so WAL replay stays "
                f"byte-identical, or time instrumentation through the "
                f"repro.obs facade (docs/service.md, docs/observability.md)",
            )
        elif name in DATETIME_NOW and not node.args and not node.keywords:
            yield (
                node,
                f"argless {name}() reads the naive wall clock inside engine "
                f"code; derive time from activation timestamps instead",
            )


__all__ = [
    "BANNED_CALLS",
    "BANNED_SUFFIXES",
    "DATETIME_NOW",
    "ENGINE_PACKAGES",
    "OBS_FACADE_PREFIXES",
    "check",
]
