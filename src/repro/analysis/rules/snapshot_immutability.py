"""snapshot-immutability: nobody mutates a published snapshot.

Readers of the service see :class:`~repro.service.engine_host.
PublishedState` objects shared across threads with no locking; the model
is only sound because a state is frozen at construction and replaced,
never edited.  This rule flags, anywhere in the tree:

* assignment (plain, augmented, annotated) to a ``PublishedState`` slot
  through any receiver other than ``self`` — ``state.seq = 7``;
* the same through ``self`` inside ``PublishedState`` but outside
  ``__init__``;
* item assignment / deletion and mutating method calls (``append``,
  ``update``, …) on the container slots — ``state.stats["x"] = 1``,
  ``state.clusters_by_level[5].append(...)``.

The slot list is derived from ``PublishedState.__slots__`` in the
service source, with a hard-coded fallback, so the rule tracks the
class as it evolves.  ``self.<slot>`` assignments in *other* classes
are deliberately not flagged: names like ``t`` or ``stats`` are common
and those objects are not snapshots.
"""

from __future__ import annotations

import ast
from functools import lru_cache
from pathlib import Path
from typing import FrozenSet, Iterable, Iterator, Optional, Tuple

from ..astutils import enclosing_class, enclosing_function, str_constants
from ..engine import FileContext
from ..registry import rule

FALLBACK_SLOTS = (
    "seq",
    "t",
    "activations",
    "num_levels",
    "sqrt_level",
    "clusters_by_level",
    "membership_by_level",
    "stats",
)

#: Slots holding containers, for the mutating-call/item checks
#: (``activations`` is a plain int and is covered by the assignment check).
CONTAINER_SLOTS = frozenset(
    {"clusters_by_level", "membership_by_level", "stats"}
)

MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "clear",
        "pop",
        "popitem",
        "remove",
        "discard",
        "setdefault",
        "sort",
        "reverse",
    }
)


@lru_cache(maxsize=1)
def published_slots() -> FrozenSet[str]:
    """``PublishedState.__slots__``, read from the service source."""
    path = Path(__file__).resolve().parents[2] / "service" / "engine_host.py"
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for node in tree.body:
            if not (isinstance(node, ast.ClassDef) and node.name == "PublishedState"):
                continue
            for item in node.body:
                if not isinstance(item, ast.Assign):
                    continue
                targets = [
                    t.id for t in item.targets if isinstance(t, ast.Name)
                ]
                if "__slots__" in targets:
                    slots = str_constants(item.value)
                    if slots:
                        return frozenset(slots)
    except (OSError, SyntaxError):
        pass
    return frozenset(FALLBACK_SLOTS)


def _is_self(node: ast.AST) -> bool:
    return isinstance(node, ast.Name) and node.id == "self"


def _inside_published_init(node: ast.AST) -> bool:
    cls = enclosing_class(node)
    func = enclosing_function(node)
    return (
        cls is not None
        and cls.name == "PublishedState"
        and func is not None
        and func.name == "__init__"
    )


def _slot_attribute(node: ast.AST, slots: FrozenSet[str]) -> Optional[ast.Attribute]:
    """``node`` itself if it is an ``<expr>.<slot>`` attribute access."""
    if isinstance(node, ast.Attribute) and node.attr in slots:
        return node
    return None


def _flag_write(
    target: ast.AST, slots: FrozenSet[str], verb: str
) -> Iterator[Tuple[ast.AST, str]]:
    attr = _slot_attribute(target, slots)
    if attr is not None:
        if _is_self(attr.value):
            cls = enclosing_class(attr)
            func = enclosing_function(attr)
            if (
                cls is not None
                and cls.name == "PublishedState"
                and not (func is not None and func.name == "__init__")
            ):
                yield (
                    target,
                    f"{verb} to PublishedState.{attr.attr} outside __init__; "
                    f"snapshots are immutable once published (docs/service.md)",
                )
        else:
            yield (
                target,
                f"{verb} to .{attr.attr} mutates a PublishedState snapshot; "
                f"build a new state and publish it instead (docs/service.md)",
            )
        return
    # Item write through a container slot: state.stats["x"] = 1.
    if isinstance(target, ast.Subscript):
        inner = _slot_attribute(target.value, slots & CONTAINER_SLOTS)
        if inner is not None and not _is_self(inner.value):
            yield (
                target,
                f"item {verb.lower()} on .{inner.attr} mutates a "
                f"PublishedState snapshot; build a new state instead",
            )


@rule(
    "snapshot-immutability",
    "PublishedState snapshots are never mutated after construction",
)
def check(ctx: FileContext) -> Iterable[Tuple[ast.AST, str]]:
    slots = published_slots()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                yield from _flag_write(target, slots, "assignment")
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            yield from _flag_write(node.target, slots, "assignment")
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                yield from _flag_write(target, slots, "deletion")
        elif isinstance(node, ast.Call):
            func = node.func
            if not (
                isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS
            ):
                continue
            target = func.value
            # Look through one subscript: state.clusters_by_level[5].append(x).
            if isinstance(target, ast.Subscript):
                target = target.value
            receiver = _slot_attribute(target, frozenset(CONTAINER_SLOTS))
            if receiver is None or _is_self(receiver.value):
                continue
            if _inside_published_init(node):
                continue
            yield (
                node,
                f".{receiver.attr}.{func.attr}() mutates a PublishedState "
                f"snapshot; snapshots are frozen once published "
                f"(docs/service.md)",
            )


__all__ = [
    "CONTAINER_SLOTS",
    "FALLBACK_SLOTS",
    "MUTATING_METHODS",
    "check",
    "published_slots",
]
