"""Whole-program rule: fault-injection hook coverage.

The chaos matrix (docs/faults.md) only exercises what the hook points
expose: every injector site in the faults ``CATALOG`` must correspond to
at least one ``hooks.hit("<site>", ...)`` call in code reachable from the
project's entry points, and every hook call must name a cataloged site.
A catalog entry without a live hook is chaos coverage that silently
rotted; a hook without a catalog entry can never be armed, so the code
path it guards is untested by construction.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set, Tuple

from ..project import ProjectModel
from ..registry import whole_program_rule

__all__ = ["check"]


def _gather(
    model: ProjectModel,
) -> Tuple[Dict[str, Tuple[str, int, int]], Set[str]]:
    catalog: Dict[str, Tuple[str, int, int]] = {}
    for summ in model.modules.values():
        for site, (line, col) in summ.catalog_sites.items():
            catalog[site] = (summ.path, line, col)
    return catalog, set(catalog)


@whole_program_rule(
    "fault-hook-coverage",
    "every faults CATALOG site needs a reachable hook call site and "
    "vice versa",
)
def check(model: ProjectModel) -> Iterable[Tuple[str, int, int, str]]:
    catalog, sites = _gather(model)
    if not catalog:
        return
    reachable = model.reachable(model.default_roots())
    hit_sites: Set[str] = set()
    for summ in model.modules.values():
        for hook in summ.hook_sites:
            key = f"{summ.module}:{hook.func}"
            if hook.site not in sites:
                yield (
                    summ.path,
                    hook.line,
                    hook.col,
                    f"hook site {hook.site!r} is not in the faults CATALOG; "
                    "it can never be armed, so this failure path is "
                    "untestable — add a catalog entry or fix the name",
                )
                continue
            hit_sites.add(hook.site)
            if key in model.functions and key not in reachable:
                yield (
                    summ.path,
                    hook.line,
                    hook.col,
                    f"hook for {hook.site!r} sits in {hook.func}, which is "
                    "unreachable from any entry point; the chaos matrix "
                    "cannot exercise it",
                )
    for site, (path, line, col) in sorted(catalog.items()):
        if site not in hit_sites:
            yield (
                path,
                line,
                col,
                f"CATALOG site {site!r} has no hooks.hit() call anywhere; "
                "chaos scenarios that arm it are no-ops — wire the hook or "
                "retire the entry",
            )
