"""mutable-default-arg: no shared mutable default parameter values.

A ``def f(xs=[])`` default is evaluated once and shared across calls —
in a long-lived server that is cross-request state leakage.  Flags
list/dict/set literals and calls to the standard mutable constructors
used as defaults (positional or keyword-only).
"""

from __future__ import annotations

import ast
from typing import Iterable, Tuple

from ..astutils import call_name
from ..engine import FileContext
from ..registry import rule

MUTABLE_CONSTRUCTORS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.defaultdict",
        "collections.deque",
        "collections.Counter",
        "collections.OrderedDict",
        "defaultdict",
        "deque",
        "Counter",
        "OrderedDict",
    }
)


def _is_mutable_default(node: ast.AST, ctx: FileContext) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node, ctx.imports)
        return name in MUTABLE_CONSTRUCTORS
    return False


@rule(
    "mutable-default-arg",
    "default parameter values must not be shared mutable objects",
)
def check(ctx: FileContext) -> Iterable[Tuple[ast.AST, str]]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        func_name = getattr(node, "name", "<lambda>")
        for default in defaults:
            if _is_mutable_default(default, ctx):
                yield (
                    default,
                    f"mutable default value in {func_name}() is shared "
                    f"across calls; default to None and create it inside "
                    f"the function",
                )


__all__ = ["MUTABLE_CONSTRUCTORS", "check"]
