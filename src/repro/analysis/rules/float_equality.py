"""float-equality: no exact ``==``/``!=`` on float math in decay paths.

The decay clock, similarity function and reinforcement operator chain
long products of ``exp(-λΔt)`` factors; two mathematically equal
quantities routinely differ in the last ulp, so exact comparison is a
latent bug (the classic failure mode of streaming decay indexes).  The
rule is scoped to the three numeric-core modules where such a
comparison is essentially never intended; the rare deliberate exact
check (e.g. a ``!= 1.0`` no-op guard) takes a pragma with its reason.

Float-ishness is syntactic: float literals, ``float(...)`` casts, true
division, ``math.*`` calls, and negations thereof.  That catches the
comparisons that matter without needing type inference.
"""

from __future__ import annotations

import ast
from typing import Iterable, Tuple

from ..astutils import call_name
from ..engine import FileContext
from ..registry import rule

SCOPE_MODULES = frozenset(
    {
        "repro.core.decay",
        "repro.core.similarity",
        "repro.core.reinforcement",
    }
)


def _floatish(node: ast.AST, ctx: FileContext) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _floatish(node.operand, ctx)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _floatish(node.left, ctx) or _floatish(node.right, ctx)
    if isinstance(node, ast.Call):
        name = call_name(node, ctx.imports)
        if name is None:
            return False
        return name == "float" or name.startswith("math.")
    return False


@rule(
    "float-equality",
    "no exact ==/!= between float expressions in the numeric core",
)
def check(ctx: FileContext) -> Iterable[Tuple[ast.AST, str]]:
    if ctx.module not in SCOPE_MODULES:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        operands = [node.left, *node.comparators]
        if any(_floatish(operand, ctx) for operand in operands):
            yield (
                node,
                "exact ==/!= on float expressions in the numeric core; "
                "compare against a tolerance (math.isclose) or pragma the "
                "deliberate exact check with its reason",
            )


__all__ = ["SCOPE_MODULES", "check"]
