"""Exemption pragmas: ``# anclint: disable=RULE — reason``.

Two scopes, distinguished by where the comment sits:

* a comment on its **own line** disables the named rule(s) for the whole
  file;
* a **trailing** comment disables them for findings reported on that
  physical line only.

Multiple rules may be disabled at once (``disable=rule-a,rule-b``).  The
text after the dash is the human reason; policy (docs/static-analysis.md)
requires one, and the parser records pragmas without a reason so the
linter can reject them.  Applied suppressions are counted per rule and
surface in every report — an exemption is visible, never silent.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

PRAGMA_RE = re.compile(
    r"#\s*anclint:\s*disable=(?P<rules>[A-Za-z0-9_,-]+)"
    r"(?:\s*(?:—|–|--|-)\s*(?P<reason>\S.*))?"
)


@dataclass(frozen=True)
class Pragma:
    """One parsed pragma comment."""

    line: int
    rules: Tuple[str, ...]
    reason: str
    file_level: bool


@dataclass
class Suppressions:
    """The pragma set of one file, plus the count of applied exemptions."""

    pragmas: List[Pragma] = field(default_factory=list)
    #: rule -> number of findings actually suppressed (filled by the engine).
    applied: Dict[str, int] = field(default_factory=dict)

    def covers(self, rule: str, line: int) -> bool:
        """True if a pragma exempts ``rule`` at ``line`` (without counting)."""
        for pragma in self.pragmas:
            if rule not in pragma.rules:
                continue
            if pragma.file_level or pragma.line == line:
                return True
        return False

    def suppress(self, rule: str, line: int) -> bool:
        """Like :meth:`covers`, but records the applied exemption."""
        if not self.covers(rule, line):
            return False
        self.applied[rule] = self.applied.get(rule, 0) + 1
        return True

    def missing_reasons(self) -> List[Pragma]:
        """Pragmas violating the 'every exemption carries a reason' policy."""
        return [p for p in self.pragmas if not p.reason]


def _comments(source: str) -> Iterator[Tuple[int, int, str]]:
    """Yield ``(line, col, text)`` for every comment token.

    Uses :mod:`tokenize` so ``#`` characters inside string literals are
    never mistaken for comments; falls back to a plain line scan when the
    file does not tokenize (the AST parse will report the error anyway).
    """
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.start[1], tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for lineno, text in enumerate(source.splitlines(), start=1):
            stripped = text.lstrip()
            if stripped.startswith("#"):
                yield lineno, len(text) - len(stripped), stripped


def parse_pragmas(source: str) -> Suppressions:
    """Extract every ``anclint: disable`` pragma from ``source``."""
    lines = source.splitlines()
    supp = Suppressions()
    for lineno, col, text in _comments(source):
        match = PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            r.strip() for r in match.group("rules").split(",") if r.strip()
        )
        if not rules:
            continue
        code_before = lines[lineno - 1][:col].strip() if lineno <= len(lines) else ""
        supp.pragmas.append(
            Pragma(
                line=lineno,
                rules=rules,
                reason=(match.group("reason") or "").strip(),
                file_level=not code_before,
            )
        )
    return supp


__all__ = ["PRAGMA_RE", "Pragma", "Suppressions", "parse_pragmas"]
