"""Benchmark harness: experiment runners and result reporting."""

from .harness import (
    ActivationRun,
    anc_static_clusters,
    run_activation_experiment,
    run_mixed_workload,
    static_quality_rows,
    timed,
    update_vs_reconstruct,
)
from .reporting import format_series, format_table, results_dir, save_result, speedup

__all__ = [
    "ActivationRun",
    "anc_static_clusters",
    "run_activation_experiment",
    "run_mixed_workload",
    "static_quality_rows",
    "timed",
    "update_vs_reconstruct",
    "format_series",
    "format_table",
    "results_dir",
    "save_result",
    "speedup",
]
