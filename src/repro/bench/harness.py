"""Experiment runners shared by the ``benchmarks/`` targets.

Each runner reproduces the *procedure* of one paper experiment at the
stand-in scale and returns plain dict/list data; the bench files print it
with :mod:`repro.bench.reporting` and assert the paper's qualitative
claims (who wins, by roughly what factor).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..baselines import Dyna, Lwep, attractor, louvain, scan, spectral_clustering
from ..core.activation import Activation
from ..core.anc import ANCF, ANCO, ANCOR, ANCParams
from ..evalm import score_clustering, structural_scores
from ..graph.graph import Edge, Graph
from ..obs.trace import Tracer
from ..workloads.datasets import Dataset, load_dataset
from ..workloads.streams import QueryEvent, mixed_workload, uniform_stream

__all__ = [
    "BENCH_TRACER",
    "MIN_CLUSTER",
    "timed",
    "anc_static_clusters",
    "static_quality_rows",
    "ActivationRun",
    "run_activation_experiment",
    "update_vs_reconstruct",
    "run_mixed_workload",
]

MIN_CLUSTER = 3  # the paper's noise threshold

#: Every labelled :func:`timed` call lands here as a completed span, so
#: bench targets get a per-phase breakdown for free —
#: :func:`repro.bench.reporting.save_result` drains this buffer into the
#: ``"phases"`` key of each ``bench_results/*.json`` record.
BENCH_TRACER = Tracer(enabled=True, capacity=65536)


def timed(
    fn: Callable[[], object], *, label: Optional[str] = None
) -> Tuple[float, object]:
    """Wall-clock one call; returns (seconds, result).

    With a ``label`` the measurement is also recorded as a span on
    :data:`BENCH_TRACER` for the saved per-phase breakdowns.
    """
    start = time.perf_counter()
    result = fn()
    seconds = time.perf_counter() - start
    if label is not None:
        BENCH_TRACER.record(label, duration=seconds)
    return seconds, result


# ----------------------------------------------------------------------
# Exp 1 (Table III): static-network quality
# ----------------------------------------------------------------------

def anc_static_clusters(
    dataset: Dataset, rep: int, params: Optional[ANCParams] = None,
    target_clusters: Optional[int] = None,
) -> List[List[int]]:
    """ANCF clustering of the static graph (no activations, just S_0).

    Picks the granularity whose cluster count is closest to
    ``target_clusters`` (ground-truth count by default), mirroring the
    paper's "select to be close to the ground truth number among
    granularities".
    """
    base = params or ANCParams()
    p = ANCParams(
        lam=base.lam, eps=base.eps, mu=base.mu, rep=rep, k=base.k,
        support=base.support, seed=base.seed, rescale_every=base.rescale_every,
        method=base.method,
    )
    engine = ANCF(dataset.graph, p)
    if target_clusters is None:
        target_clusters = len(dataset.truth_clusters())
    _, clusters = engine.queries.clusters_closest_to(
        target_clusters, min_size=MIN_CLUSTER
    )
    return clusters


def static_quality_rows(
    dataset_names: Sequence[str],
    *,
    reps: Sequence[int] = (1, 5, 9),
    params: Optional[ANCParams] = None,
    include_baselines: bool = True,
    attractor_iterations: int = 30,
) -> List[Dict[str, object]]:
    """One row per (method, dataset): all five Table III measures."""
    rows: List[Dict[str, object]] = []
    for name in dataset_names:
        dataset = load_dataset(name)
        graph, truth = dataset.graph, dataset.truth()
        methods: List[Tuple[str, Callable[[], List[List[int]]]]] = []
        if include_baselines:
            methods.extend(
                [
                    ("SCAN", lambda g=graph: scan(g, eps=0.5, mu=3).clusters),
                    ("ATTR", lambda g=graph: attractor(g, max_iterations=attractor_iterations)),
                    ("LOUV", lambda g=graph: louvain(g)),
                    ("LWEP", lambda g=graph: _lwep_static(g)),
                ]
            )
        for rep in reps:
            methods.append(
                (f"ANCF{rep}", lambda d=dataset, r=rep: anc_static_clusters(d, r, params))
            )
        for method_name, runner in methods:
            seconds, clusters = timed(runner, label=f"static.{method_name}")
            quality = score_clustering(clusters, truth, min_size=MIN_CLUSTER)
            structural = structural_scores(graph, clusters, min_size=MIN_CLUSTER)
            rows.append(
                {
                    "dataset": name,
                    "method": method_name,
                    "modularity": structural["modularity"],
                    "conductance": structural["conductance"],
                    "nmi": quality["nmi"],
                    "purity": quality["purity"],
                    "f1": quality["f1"],
                    "clusters": int(quality["clusters"]),
                    "seconds": seconds,
                }
            )
    return rows


def _lwep_static(graph: Graph) -> List[List[int]]:
    model = Lwep(graph, lam=0.1, top_k=5)
    return model.clusters()


# ----------------------------------------------------------------------
# Exp 2 (Table IV + Fig 4): activation networks
# ----------------------------------------------------------------------

@dataclass
class ActivationRun:
    """Timing + quality series for one method over one stream."""

    method: str
    amortized_update_seconds: float
    quality_by_time: List[Dict[str, float]]


def _snapshot_truth(
    dataset: Dataset, weights: Mapping[Edge, float], seed: int
) -> Dict[int, int]:
    """Spectral-clustering ground truth of the weighted snapshot
    with ``2·√n`` clusters (Section VI-A)."""
    k = max(2, int(round(2 * math.sqrt(dataset.graph.n))))
    clusters = spectral_clustering(dataset.graph, k, weights, seed=seed)
    labeling: Dict[int, int] = {}
    for idx, cluster in enumerate(clusters):
        for v in cluster:
            labeling[v] = idx
    return labeling


def run_activation_experiment(
    dataset: Dataset,
    *,
    timestamps: int = 20,
    fraction: float = 0.05,
    lam: float = 0.1,
    params: Optional[ANCParams] = None,
    methods: Sequence[str] = ("ANCF", "ANCOR", "ANCO", "DYNA", "LWEP", "SCAN", "LOUV"),
    evaluate_every: int = 5,
    seed: int = 0,
) -> List[ActivationRun]:
    """The Exp 2 procedure on one dataset.

    Feeds the same uniform stream to every requested method, recording
    (a) the amortized per-activation processing time (Table IV) and
    (b) NMI/Purity/F1 against the spectral ground truth of each evaluated
    snapshot (Fig 4 series).
    """
    base = params or ANCParams(lam=lam)
    stream = uniform_stream(
        dataset.graph, timestamps=timestamps, fraction=fraction, seed=seed
    )
    batches = list(stream.batches_by_timestamp())
    n_acts = len(stream)

    # Reference activeness per evaluated snapshot for ground truth.
    truth_at: Dict[float, Dict[int, int]] = {}
    decayed: Dict[Edge, float] = {e: 1.0 for e in dataset.graph.edges()}
    prev_t = 0.0
    for t, batch in batches:
        factor = math.exp(-lam * (t - prev_t))
        for key in decayed:
            decayed[key] *= factor
        for act in batch:
            decayed[act.edge] += 1.0
        prev_t = t
        if int(t) % evaluate_every == 0:
            truth_at[t] = _snapshot_truth(dataset, dict(decayed), seed)

    runs: List[ActivationRun] = []
    for method in methods:
        runs.append(
            _run_one_method(
                method, dataset, batches, n_acts, truth_at, base, seed
            )
        )
    return runs


def _method_clusters(
    method: str, model: object, dataset: Dataset, target: int
) -> List[List[int]]:
    if isinstance(model, (ANCF, ANCO, ANCOR)):
        _, clusters = model.queries.clusters_closest_to(target, min_size=MIN_CLUSTER)
        return clusters
    return model.clusters()  # type: ignore[union-attr]


def _run_one_method(
    method: str,
    dataset: Dataset,
    batches: List[Tuple[float, List[Activation]]],
    n_acts: int,
    truth_at: Mapping[float, Mapping[int, int]],
    params: ANCParams,
    seed: int,
) -> ActivationRun:
    graph = dataset.graph
    quality: List[Dict[str, float]] = []
    target = max(2, int(round(2 * math.sqrt(graph.n))))
    update_time = 0.0

    if method in ("ANCF", "ANCO", "ANCOR"):
        engine: object
        if method == "ANCO":
            engine = ANCO(graph, params)
        elif method == "ANCOR":
            engine = ANCOR(graph, params)
        else:
            engine = ANCF(graph, params)
        for t, batch in batches:
            seconds, _ = timed(
                lambda b=batch, e=engine: e.process_batch(b),
                label=f"{method}.update",
            )
            update_time += seconds
            if t in truth_at:
                clusters = _method_clusters(method, engine, dataset, target)
                quality.append(
                    {"t": t, **score_clustering(clusters, truth_at[t], min_size=MIN_CLUSTER)}
                )
    elif method == "DYNA":
        model = Dyna(graph, lam=params.lam, seed=seed)
        for t, batch in batches:
            edges = [a.edge for a in batch]
            seconds, _ = timed(lambda: model.step(t, edges))
            update_time += seconds
            if t in truth_at:
                quality.append(
                    {"t": t, **score_clustering(model.clusters(), truth_at[t], min_size=MIN_CLUSTER)}
                )
    elif method == "LWEP":
        model = Lwep(graph, lam=params.lam, seed=seed)
        for t, batch in batches:
            edges = [a.edge for a in batch]
            seconds, _ = timed(lambda: model.step(t, edges))
            update_time += seconds
            if t in truth_at:
                quality.append(
                    {"t": t, **score_clustering(model.clusters(), truth_at[t], min_size=MIN_CLUSTER)}
                )
    elif method in ("SCAN", "LOUV", "ATTR"):
        # Offline recomputation per snapshot on the decayed weights.
        decayed: Dict[Edge, float] = {e: 1.0 for e in graph.edges()}
        prev_t = 0.0
        for t, batch in batches:
            factor = math.exp(-params.lam * (t - prev_t))
            for key in decayed:
                decayed[key] *= factor
            for act in batch:
                decayed[act.edge] += 1.0
            prev_t = t

            def recompute() -> List[List[int]]:
                if method == "SCAN":
                    return scan(graph, eps=0.4, mu=3, weights=decayed).clusters
                if method == "LOUV":
                    return louvain(graph, decayed, seed=seed)
                return attractor(graph, max_iterations=15)

            seconds, clusters = timed(recompute, label=f"{method}.update")
            update_time += seconds
            if t in truth_at:
                quality.append(
                    {"t": t, **score_clustering(clusters, truth_at[t], min_size=MIN_CLUSTER)}
                )
    else:
        raise ValueError(f"unknown method {method!r}")

    return ActivationRun(
        method=method,
        amortized_update_seconds=update_time / max(1, n_acts),
        quality_by_time=quality,
    )


# ----------------------------------------------------------------------
# Fig 8: UPDATE vs RECONSTRUCT
# ----------------------------------------------------------------------

def update_vs_reconstruct(
    dataset: Dataset,
    *,
    batch_sizes: Sequence[int] = (1, 4, 16, 64, 256, 1024),
    params: Optional[ANCParams] = None,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Time incremental UPDATE vs full RECONSTRUCT per batch size."""
    base = params or ANCParams()
    rows: List[Dict[str, float]] = []
    for batch_size in batch_sizes:
        engine = ANCO(dataset.graph, base)
        stream = uniform_stream(
            dataset.graph,
            timestamps=1,
            fraction=min(1.0, batch_size / max(1, dataset.graph.m)),
            seed=seed,
        )
        batch = list(stream)[:batch_size]
        update_s, _ = timed(
            lambda: [engine.process(a) for a in batch], label="update"
        )
        # RECONSTRUCT: rebuild the whole index at the post-batch weights.
        reconstruct_s, _ = timed(engine.index.rebuild, label="reconstruct")
        rows.append(
            {
                "batch_size": batch_size,
                "update_seconds": update_s,
                "reconstruct_seconds": reconstruct_s,
                "speedup": reconstruct_s / update_s if update_s > 0 else float("inf"),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Fig 10: mixed update/query workloads
# ----------------------------------------------------------------------

def run_mixed_workload(
    dataset: Dataset,
    *,
    query_fractions: Sequence[float] = (0.01, 0.02, 0.04, 0.08, 0.16, 0.32),
    timestamps: int = 10,
    fraction: float = 0.05,
    methods: Sequence[str] = ("ANCO", "DYNA", "LWEP"),
    params: Optional[ANCParams] = None,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Total processing time per method per query-replacement percentage."""
    base = params or ANCParams()
    stream = uniform_stream(
        dataset.graph, timestamps=timestamps, fraction=fraction, seed=seed
    )
    rows: List[Dict[str, float]] = []
    for qf in query_fractions:
        events = mixed_workload(stream, query_fraction=qf, seed=seed + 1)
        for method in methods:
            seconds = _run_workload(method, dataset, events, base, seed)
            rows.append(
                {"query_fraction": qf, "method": method, "seconds": seconds}
            )
    return rows


def _run_workload(
    method: str,
    dataset: Dataset,
    events: Sequence[object],
    params: ANCParams,
    seed: int,
) -> float:
    graph = dataset.graph
    if method == "ANCO":
        engine = ANCO(graph, params)
        level = engine.queries.sqrt_n_level()

        def run() -> None:
            for ev in events:
                if isinstance(ev, QueryEvent):
                    engine.queries.cluster_of(ev.node, level)
                else:
                    engine.process(ev)  # type: ignore[arg-type]

        seconds, _ = timed(run, label=f"{method}.workload")
        return seconds
    # Baselines answer a query by recomputing/reading the current clusters;
    # updates arrive per timestamp batch.
    if method == "DYNA":
        model: object = Dyna(graph, lam=params.lam, seed=seed)
    elif method == "LWEP":
        model = Lwep(graph, lam=params.lam, seed=seed)
    else:
        raise ValueError(f"unknown workload method {method!r}")

    def run_baseline() -> None:
        pending: List[Edge] = []
        current_t: Optional[float] = None
        membership: Optional[List[List[int]]] = None
        for ev in events:
            t = ev.t  # both event types carry t
            if current_t is None:
                current_t = t
            if t != current_t:
                model.step(current_t, pending)  # type: ignore[union-attr]
                membership = None
                pending = []
                current_t = t
            if isinstance(ev, QueryEvent):
                model.step(current_t, pending)  # type: ignore[union-attr]
                pending = []
                membership = model.clusters()  # type: ignore[union-attr]
                for cluster in membership:
                    if ev.node in cluster:
                        break
            else:
                pending.append(ev.edge)  # type: ignore[union-attr]
        if pending and current_t is not None:
            model.step(current_t, pending)  # type: ignore[union-attr]

    seconds, _ = timed(run_baseline, label=f"{method}.workload")
    return seconds
