"""Result formatting and persistence for the benchmark harness.

Every bench target prints the same rows/series the paper's table or
figure reports, via these helpers, and drops a JSON record under
``bench_results/`` so EXPERIMENTS.md can be cross-checked against actual
runs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

__all__ = [
    "format_table",
    "format_series",
    "sparkline",
    "sparkline_block",
    "results_dir",
    "save_result",
    "speedup",
]

Number = Union[int, float]


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    *,
    title: str = "",
    float_fmt: str = "{:.4f}",
) -> str:
    """Render rows of dicts as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        line = []
        for col in columns:
            value = row.get(col, "")
            if isinstance(value, float):
                line.append(float_fmt.format(value))
            else:
                line.append(str(value))
        rendered.append(line)
    widths = [max(len(r[i]) for r in rendered) for i in range(len(columns))]
    out_lines = []
    if title:
        out_lines.append(title)
    header = " | ".join(cell.ljust(w) for cell, w in zip(rendered[0], widths))
    out_lines.append(header)
    out_lines.append("-+-".join("-" * w for w in widths))
    for line in rendered[1:]:
        out_lines.append(" | ".join(cell.ljust(w) for cell, w in zip(line, widths)))
    return "\n".join(out_lines)


def format_series(
    series: Mapping[str, Sequence[Number]],
    *,
    x_values: Optional[Sequence[Any]] = None,
    title: str = "",
    x_label: str = "x",
    float_fmt: str = "{:.4f}",
) -> str:
    """Render named series (figure data) as a column-per-series table."""
    names = list(series)
    length = max((len(s) for s in series.values()), default=0)
    if x_values is None:
        x_values = list(range(length))
    rows = []
    for i in range(length):
        row: Dict[str, Any] = {x_label: x_values[i] if i < len(x_values) else i}
        for name in names:
            values = series[name]
            row[name] = values[i] if i < len(values) else ""
        rows.append(row)
    return format_table(rows, [x_label] + names, title=title, float_fmt=float_fmt)


_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[Number], *, lo: Optional[float] = None, hi: Optional[float] = None) -> str:
    """Render a numeric series as a unicode sparkline.

    Scales into ``[lo, hi]`` (defaults: the series' own min/max).  Used
    by the figure benches to show series shape inline in terminal output.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo = min(vals) if lo is None else lo
    hi = max(vals) if hi is None else hi
    span = hi - lo
    if span <= 0:
        return _SPARK_LEVELS[0] * len(vals)
    out = []
    for v in vals:
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[max(0, min(len(_SPARK_LEVELS) - 1, idx))])
    return "".join(out)


def sparkline_block(series: Mapping[str, Sequence[Number]], *, title: str = "") -> str:
    """One labelled sparkline per named series, on a shared scale."""
    all_values = [float(v) for vs in series.values() for v in vs]
    if not all_values:
        return title
    lo, hi = min(all_values), max(all_values)
    width = max((len(name) for name in series), default=0)
    lines = [title] if title else []
    for name, values in series.items():
        lines.append(
            f"{name.ljust(width)} {sparkline(values, lo=lo, hi=hi)} "
            f"[{min(map(float, values)):.3g}..{max(map(float, values)):.3g}]"
        )
    return "\n".join(lines)


def results_dir() -> Path:
    """``bench_results/`` next to the repository root (created on demand)."""
    root = Path(os.environ.get("REPRO_RESULTS_DIR", Path.cwd() / "bench_results"))
    root.mkdir(parents=True, exist_ok=True)
    return root


def save_result(experiment: str, payload: Mapping[str, Any]) -> Path:
    """Persist one experiment's data as JSON; returns the file path.

    Labelled :func:`repro.bench.harness.timed` calls since the last save
    are folded in under a ``"phases"`` key (per-label count / total /
    mean / max seconds), so every saved record carries its own phase
    breakdown.  A payload that already has ``"phases"`` wins; the tracer
    buffer is drained either way so breakdowns never leak across saves.
    """
    from ..obs.export import phase_breakdown
    from .harness import BENCH_TRACER  # function-local: harness is heavy

    doc: Dict[str, Any] = dict(payload)
    phases = phase_breakdown(BENCH_TRACER.drain())
    if phases:
        doc.setdefault("phases", phases)
    path = results_dir() / f"{experiment}.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True, default=str)
    return path


def speedup(slow: float, fast: float) -> float:
    """``slow / fast`` guarded against zero (returns inf)."""
    if fast <= 0:
        return float("inf")
    return slow / fast
