"""Workload generation: dataset stand-ins, activation streams, case study."""

from .case_study import CaseStudy, build_case_study
from .datasets import (
    ACTIVATION_SETS,
    GROUND_TRUTH_SETS,
    SPECS,
    Dataset,
    DatasetSpec,
    dataset_names,
    load_dataset,
    table1_rows,
)
from .streams import (
    QueryEvent,
    community_biased_stream,
    day_trace,
    mixed_workload,
    uniform_stream,
)

__all__ = [
    "CaseStudy",
    "build_case_study",
    "ACTIVATION_SETS",
    "GROUND_TRUTH_SETS",
    "SPECS",
    "Dataset",
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
    "table1_rows",
    "QueryEvent",
    "community_biased_stream",
    "day_trace",
    "mixed_workload",
    "uniform_stream",
]
