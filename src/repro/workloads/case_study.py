"""The Section VI-C case study: a 29-node collaboration subgraph of DB2.

The paper monitors author ``v8`` and five neighbors — ``v0, v5, v7, v11,
v26`` — over 30 yearly time steps with 735 activations in total, and
checks that cluster membership at granularity levels l2 and l3 tracks the
collaboration history:

* ``t5–t11``  — v8 collaborates with v7 (same cluster as v7 at t10);
* ``t11–t22`` — v8 collaborates with v11;
* ``t11–t30`` — v8 collaborates with v0 (t11–t35 in the paper, clipped to
  the 30-year window);
* ``t17–t26`` — v8 collaborates with v5;
* ``t23–t30`` — v8 collaborates with v26 (t23–t32 clipped).

The other authors form four stable research groups that collaborate
internally throughout (v0's group v0–v3, v5's group v4/v5/v6/v9, v7's
group, v11's group, and v26's group), giving the surrounding cluster
structure the paper's Figure 11 plots.

:func:`build_case_study` reconstructs the whole scenario
deterministically: the relation network, the yearly activation stream
(exactly 735 activations), the node-role annotations, and the expected
cluster relations at t10 / t20 / t30 used by tests and the
``collaboration_case_study`` example.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.activation import Activation, ActivationStream
from ..graph.graph import Graph

__all__ = ["CaseStudy", "build_case_study"]

#: The focal author and the tracked neighbors of Figure 11.
FOCAL = 8
TRACKED = (0, 5, 7, 11, 26)

#: Research groups (cluster ground truth of the surrounding authors).
GROUPS: Tuple[Tuple[int, ...], ...] = (
    (0, 1, 2, 3),          # v0's group
    (4, 5, 6, 9),          # v5's group
    (7, 10, 12, 13),       # v7's group
    (11, 14, 15, 16),      # v11's group
    (26, 24, 25, 27, 28),  # v26's group
    (17, 18, 19, 20),      # background group A
    (21, 22, 23),          # background group B
)

#: v8's collaboration phases: neighbor -> (start year, end year) inclusive.
PHASES: Dict[int, Tuple[int, int]] = {
    7: (5, 11),
    11: (11, 22),
    0: (11, 30),
    5: (17, 26),
    26: (23, 30),
}

YEARS = 30
TOTAL_ACTIVATIONS = 735


@dataclass
class CaseStudy:
    """The assembled Figure 11 scenario."""

    graph: Graph
    stream: ActivationStream
    groups: Tuple[Tuple[int, ...], ...]
    phases: Dict[int, Tuple[int, int]]

    #: (year, neighbor) -> True when v8 should share that neighbor's
    #: cluster at a fine granularity by that year's end.
    expectations: Dict[Tuple[int, int], bool] = field(default_factory=dict)


#: Secondary co-author of v8 inside each tracked neighbor's group.  Real
#: collaborations come with shared co-authors; without these edges v8
#: would have no common neighbors with anyone and its active similarity
#: would be identically zero (σ needs triangles).
PARTNERS: Dict[int, int] = {0: 1, 5: 4, 7: 10, 11: 14, 26: 24}


def _relation_graph() -> Graph:
    """29 authors; groups are cliques; v8 bridges to the tracked five.

    For each tracked neighbor, v8 also knows one of that neighbor's
    group-mates (``PARTNERS``), so each v8 edge sits on a triangle and the
    local reinforcement has structure to work with.
    """
    graph = Graph(29)
    for group in GROUPS:
        for i, u in enumerate(group):
            for v in group[i + 1 :]:
                graph.add_edge(u, v)
    for neighbor in TRACKED:
        graph.add_edge(FOCAL, neighbor)
        graph.add_edge(FOCAL, PARTNERS[neighbor])
    # A couple of weak cross-group links so the graph is connected and the
    # clustering has something to separate.
    graph.add_edge(3, 4)
    graph.add_edge(13, 14)
    graph.add_edge(19, 21)
    graph.add_edge(9, 17)
    graph.add_edge(16, 24)
    return graph


def build_case_study(seed: int = 42) -> CaseStudy:
    """Deterministically build the graph, the 735-activation stream and
    the per-decade expectations of Section VI-C."""
    rng = random.Random(seed)
    graph = _relation_graph()
    # Per-year activations: v8 activates its in-phase edges; each group
    # activates a rotating subset of its internal edges.
    group_edges: List[List[Tuple[int, int]]] = []
    for group in GROUPS:
        edges = []
        for i, u in enumerate(group):
            for v in group[i + 1 :]:
                edges.append((min(u, v), max(u, v)))
        group_edges.append(edges)
    yearly: List[List[Tuple[int, int]]] = []
    for year in range(1, YEARS + 1):
        batch: List[Tuple[int, int]] = []
        for neighbor, (start, end) in PHASES.items():
            if start <= year <= end:
                e = (min(FOCAL, neighbor), max(FOCAL, neighbor))
                batch.append(e)  # one collaboration per active year
                # The shared co-author joins one paper per active year.
                partner = PARTNERS[neighbor]
                batch.append((min(FOCAL, partner), max(FOCAL, partner)))
        # Background contact: v8 stays loosely in touch with every shared
        # co-author (one interaction every other year).  Without it, a
        # dormant edge's whole triangle decays to the similarity floor and
        # the multiplicative reinforcement could never revive the
        # collaboration when its phase starts.
        if year % 2 == 0:
            for partner in PARTNERS.values():
                batch.append((min(FOCAL, partner), max(FOCAL, partner)))
        for edges in group_edges:
            take = max(2, len(edges) // 2)
            batch.extend(rng.sample(edges, take))
        yearly.append(sorted(batch))
    # Trim or pad to exactly TOTAL_ACTIVATIONS, preserving year structure.
    count = sum(len(b) for b in yearly)
    year_idx = 0
    while count > TOTAL_ACTIVATIONS:
        if len(yearly[year_idx % YEARS]) > 3:
            yearly[year_idx % YEARS].pop()
            count -= 1
        year_idx += 1
    pool = [e for edges in group_edges for e in edges]
    while count < TOTAL_ACTIVATIONS:
        yearly[year_idx % YEARS].append(rng.choice(pool))
        yearly[year_idx % YEARS].sort()
        count += 1
        year_idx += 1
    stream = ActivationStream(graph)
    for year, batch in enumerate(yearly, start=1):
        for u, v in batch:
            stream.append(Activation(u, v, float(year)))

    expectations: Dict[Tuple[int, int], bool] = {}
    for year in (10, 20, 30):
        for neighbor, (start, end) in PHASES.items():
            # v8 is expected in neighbor's cluster while the collaboration
            # is live (and shortly after, before the activeness decays).
            live = start <= year <= end + 2
            expectations[(year, neighbor)] = live
    return CaseStudy(
        graph=graph, stream=stream, groups=GROUPS, phases=PHASES,
        expectations=expectations,
    )
