"""Synthetic stand-ins for the paper's 17 real datasets (Table I).

The paper's graphs (SNAP / network-repository, up to 41 M nodes and 1.2 B
edges) cannot ship with an offline reproduction, so each dataset name maps
to a deterministic planted-partition stand-in that preserves what the
experiments measure:

* the **relative size ordering** of the datasets (CO smallest … TW
  largest), scaled down so pure-Python benchmarks finish in seconds;
* the **density character** (MI and OK are the dense social graphs, IE
  and EA the sparse email graphs), with average degree capped for
  runtime;
* **ground-truth communities** with power-law sizes, standing in for the
  datasets' ground truth (LA/DB/AM/YT) and for the spectral-clustering
  reference of the activation experiments.

``load_dataset("CO")`` returns a :class:`Dataset` carrying the graph, the
planted labels, the paper's original vertex/edge counts (for reporting),
and stream helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.activation import ActivationStream
from ..graph.generators import planted_partition
from ..graph.graph import Graph
from .streams import uniform_stream

__all__ = [
    "DatasetSpec",
    "Dataset",
    "load_dataset",
    "dataset_names",
    "table1_rows",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Generator recipe for one named stand-in."""

    name: str
    kind: str
    paper_vertices: int
    paper_edges: int
    n: int
    avg_degree: float
    community_size: int
    seed: int

    @property
    def n_communities(self) -> int:
        return max(2, self.n // self.community_size)


#: The 17 datasets of Table I.  ``n`` / ``avg_degree`` are the scaled-down
#: stand-in parameters; paper sizes are kept for reporting (Table I bench).
SPECS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec("CO", "social", 1_893, 13_835, 200, 10.0, 18, 101),
        DatasetSpec("FB", "social", 4_039, 88_234, 260, 16.0, 22, 102),
        DatasetSpec("CA", "collaboration", 4_158, 13_422, 260, 6.0, 16, 103),
        DatasetSpec("MI", "social", 6_402, 251_230, 320, 20.0, 26, 104),
        DatasetSpec("LA", "social", 7_624, 27_806, 350, 7.0, 18, 105),
        DatasetSpec("CM", "collaboration", 21_363, 91_286, 500, 8.0, 18, 106),
        DatasetSpec("IE", "email", 32_430, 54_397, 550, 4.0, 14, 107),
        DatasetSpec("GI", "social", 37_770, 289_003, 600, 12.0, 20, 108),
        DatasetSpec("EA", "email", 224_832, 339_925, 900, 4.0, 14, 109),
        DatasetSpec("DB", "collaboration", 317_080, 1_049_866, 1_000, 7.0, 18, 110),
        DatasetSpec("AM", "product", 334_863, 925_872, 1_050, 6.0, 16, 111),
        DatasetSpec("YT", "social", 1_134_890, 2_987_624, 1_400, 6.0, 20, 112),
        DatasetSpec("DB2", "collaboration", 2_617_981, 14_796_582, 1_800, 10.0, 20, 113),
        DatasetSpec("OK", "social", 3_072_441, 117_185_083, 2_000, 20.0, 28, 114),
        DatasetSpec("LJ", "social", 3_997_962, 34_681_189, 2_200, 14.0, 24, 115),
        DatasetSpec("TW2", "social", 4_713_138, 17_610_953, 2_400, 8.0, 20, 116),
        DatasetSpec("TW", "social", 41_652_230, 1_202_513_046, 3_200, 16.0, 26, 117),
    ]
}

#: Datasets the paper attaches ground-truth communities to (Table III).
GROUND_TRUTH_SETS = ("LA", "DB", "AM", "YT")

#: Datasets of the activation-network quality experiments (Exp 2 / Fig 4).
ACTIVATION_SETS = ("CO", "FB", "CA", "MI", "LA")


@dataclass
class Dataset:
    """A loaded stand-in: graph + planted truth + provenance."""

    spec: DatasetSpec
    graph: Graph
    labels: List[int]

    @property
    def name(self) -> str:
        return self.spec.name

    def truth(self) -> Dict[int, int]:
        """Ground-truth labeling ``{node: community}``."""
        return {v: self.labels[v] for v in self.graph.nodes()}

    def truth_clusters(self) -> List[List[int]]:
        """Ground-truth communities as sorted clusters."""
        groups: Dict[int, List[int]] = {}
        for v, lab in enumerate(self.labels):
            groups.setdefault(lab, []).append(v)
        out = [sorted(g) for g in groups.values()]
        out.sort(key=lambda c: c[0])
        return out

    def default_stream(
        self,
        *,
        timestamps: int = 100,
        fraction: float = 0.05,
        seed: Optional[int] = None,
    ) -> ActivationStream:
        """The Exp 2 stream: ``fraction`` of edges activated per timestamp."""
        return uniform_stream(
            self.graph,
            timestamps=timestamps,
            fraction=fraction,
            seed=self.spec.seed * 7 + 1 if seed is None else seed,
        )


def _edge_probabilities(spec: DatasetSpec) -> Tuple[float, float]:
    """(p_in, p_out) hitting the spec's average degree, 75 % of it intra."""
    size = spec.community_size
    intra_deg = 0.75 * spec.avg_degree
    inter_deg = 0.25 * spec.avg_degree
    p_in = min(0.95, intra_deg / max(1, size - 1))
    p_out = min(0.2, inter_deg / max(1, spec.n - size))
    return p_in, p_out


def load_dataset(name: str) -> Dataset:
    """Load (generate) the named stand-in; deterministic per name."""
    try:
        spec = SPECS[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; expected one of {sorted(SPECS)}"
        ) from None
    p_in, p_out = _edge_probabilities(spec)
    graph, labels = planted_partition(
        spec.n,
        spec.n_communities,
        p_in=p_in,
        p_out=p_out,
        seed=spec.seed,
        min_size=4,
    )
    return Dataset(spec=spec, graph=graph, labels=labels)


def dataset_names() -> List[str]:
    """All dataset names in Table I order."""
    return list(SPECS)


def table1_rows() -> List[Dict[str, object]]:
    """The Table I inventory: paper sizes plus the stand-in sizes."""
    rows = []
    for spec in SPECS.values():
        data = load_dataset(spec.name)
        rows.append(
            {
                "name": spec.name,
                "type": spec.kind,
                "paper_vertices": spec.paper_vertices,
                "paper_edges": spec.paper_edges,
                "standin_vertices": data.graph.n,
                "standin_edges": data.graph.m,
            }
        )
    return rows
