"""Activation-stream generators for the evaluation workloads.

* :func:`uniform_stream` — the Exp 2 / Fig 4 workload: at each of
  ``timestamps`` steps, a uniform random ``fraction`` of the edges is
  activated (the paper uses 100 timestamps × 5 %).
* :func:`community_biased_stream` — activations prefer intra-community
  edges, so the temporal signal aligns with (or drifts away from) the
  planted structure; used by examples and drift tests.
* :func:`day_trace` — the Fig 9 workload: 1440 one-minute batches with a
  diurnal sinusoid rate modulated by Pareto bursts, standing in for the
  paper's Twitter June-25-2019 day.
* :func:`mixed_workload` — the Fig 10 workload: an activation stream with
  a percentage of activations replaced by local-cluster queries.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence, Union

from ..core.activation import Activation, ActivationStream
from ..graph.graph import Graph

__all__ = [
    "uniform_stream",
    "community_biased_stream",
    "day_trace",
    "QueryEvent",
    "mixed_workload",
]

RngLike = Union[int, random.Random, None]


def _rng(seed: RngLike) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def uniform_stream(
    graph: Graph,
    *,
    timestamps: int = 100,
    fraction: float = 0.05,
    seed: RngLike = None,
    start: float = 1.0,
    dt: float = 1.0,
) -> ActivationStream:
    """Per timestamp, activate a uniform random ``fraction`` of the edges."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    rng = _rng(seed)
    edges = list(graph.edges())
    per_step = max(1, int(round(fraction * len(edges))))
    stream = ActivationStream(graph)
    t = start
    for _ in range(timestamps):
        batch = rng.sample(edges, per_step)
        batch.sort()
        for u, v in batch:
            stream.append(Activation(u, v, t))
        t += dt
    return stream


def community_biased_stream(
    graph: Graph,
    labels: Sequence[int],
    *,
    timestamps: int = 100,
    fraction: float = 0.05,
    intra_bias: float = 0.9,
    seed: RngLike = None,
    start: float = 1.0,
    dt: float = 1.0,
) -> ActivationStream:
    """Activations drawn intra-community with probability ``intra_bias``.

    The workload the paper's applications motivate: friends keep chatting
    with friends, collaborators keep collaborating, so activeness aligns
    with structure.
    """
    if not 0.0 <= intra_bias <= 1.0:
        raise ValueError(f"intra_bias must be in [0, 1], got {intra_bias}")
    rng = _rng(seed)
    intra = [e for e in graph.edges() if labels[e[0]] == labels[e[1]]]
    inter = [e for e in graph.edges() if labels[e[0]] != labels[e[1]]]
    if not intra:
        intra = list(graph.edges())
    if not inter:
        inter = list(graph.edges())
    per_step = max(1, int(round(fraction * graph.m)))
    stream = ActivationStream(graph)
    t = start
    for _ in range(timestamps):
        batch = []
        for _ in range(per_step):
            pool = intra if rng.random() < intra_bias else inter
            batch.append(rng.choice(pool))
        batch.sort()
        for u, v in batch:
            stream.append(Activation(u, v, t))
        t += dt
    return stream


def day_trace(
    graph: Graph,
    *,
    minutes: int = 1440,
    base_per_minute: int = 20,
    burst_probability: float = 0.02,
    burst_shape: float = 1.5,
    burst_scale: float = 10.0,
    seed: RngLike = None,
) -> ActivationStream:
    """A bursty diurnal day of per-minute activation batches (Fig 9).

    The per-minute rate follows ``base · (0.35 + 0.65 · sin²(π·m/1440))``
    (quiet nights, busy afternoons); with probability
    ``burst_probability`` a minute additionally receives a Pareto burst
    (heavy-tailed, like retweet storms).  Timestamps are the minute index.
    """
    rng = _rng(seed)
    edges = list(graph.edges())
    stream = ActivationStream(graph)
    for minute in range(minutes):
        phase = math.sin(math.pi * minute / minutes) ** 2
        rate = base_per_minute * (0.35 + 0.65 * phase)
        count = max(0, int(round(rng.gauss(rate, rate * 0.2))))
        if rng.random() < burst_probability:
            count += int(burst_scale * rng.paretovariate(burst_shape))
        count = min(count, 20 * base_per_minute)  # clip pathological tails
        batch = sorted(rng.choice(edges) for _ in range(count))
        t = float(minute + 1)
        for u, v in batch:
            stream.append(Activation(u, v, t))
    return stream


@dataclass(frozen=True)
class QueryEvent:
    """A local-cluster query injected into a mixed workload (Fig 10)."""

    node: int
    t: float


WorkloadEvent = Union[Activation, QueryEvent]


def mixed_workload(
    stream: ActivationStream,
    *,
    query_fraction: float,
    seed: RngLike = None,
) -> List[WorkloadEvent]:
    """Replace ``query_fraction`` of a stream's activations with queries.

    Mirrors Fig 10's setup: "randomly replace real activations with
    simulated queries by varying the percentage".  Each query targets a
    uniformly random node at the timestamp of the activation it replaced.
    """
    if not 0.0 <= query_fraction <= 1.0:
        raise ValueError(f"query_fraction must be in [0, 1], got {query_fraction}")
    rng = _rng(seed)
    n = stream.graph.n
    events: List[WorkloadEvent] = []
    for act in stream:
        if rng.random() < query_fraction:
            events.append(QueryEvent(node=rng.randrange(n), t=act.t))
        else:
            events.append(act)
    return events
