"""Deterministic fault injection for the serving stack.

The paper's engines are deterministic by construction; this package
makes their *failure handling* testable with the same rigor.  A
:class:`~repro.faults.plan.FaultPlan` (seeded, trigger-by-count or
probability, phase-gated) arms injectors at hook sites threaded through
:mod:`repro.service` and :mod:`repro.index.persistence` — torn WAL
tails, lost page writes, checkpoint bit rot, socket resets, duplicated
batches, stalled readers, overload.  Disarmed hooks cost one attribute
check (the :mod:`repro.obs` contract), so they ship permanently.

:mod:`~repro.faults.chaos` turns the catalog into a matrix: every
injector × several seeds, each run compared byte-for-byte against a
fault-free oracle.  ``repro-anc chaos`` runs it from the CLI;
``docs/faults.md`` documents the catalog and the recovery contracts.
"""

from .chaos import (
    SCENARIOS,
    ChaosResult,
    RouterThread,
    Scenario,
    ServerThread,
    build_shard_workload,
    engine_signature,
    report_lines,
    run_matrix,
    run_scenario,
    scenario_by_name,
    write_report,
)
from .injectors import CATALOG, validate_spec
from .plan import FaultAction, FaultPlan, FaultSpec, InjectedCrash, InjectedFault

__all__ = [
    "CATALOG",
    "ChaosResult",
    "FaultAction",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "InjectedFault",
    "RouterThread",
    "Scenario",
    "SCENARIOS",
    "ServerThread",
    "build_shard_workload",
    "engine_signature",
    "report_lines",
    "run_matrix",
    "run_scenario",
    "scenario_by_name",
    "validate_spec",
    "write_report",
]
