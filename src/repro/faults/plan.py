"""Deterministic, seedable fault injection: the plan and its triggers.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries armed over
named *hook sites* in the serving stack (``wal.append``,
``checkpoint.write``, ``server.request``, ...).  Instrumented code asks
the plan at each site::

    if self.faults is not None:
        action = self.faults.hit("wal.append", seq=seq)
        if action is not None:
            ...apply the injector...

which follows the same contract as :mod:`repro.obs`: **disarmed is
free** — a component whose ``faults`` attribute is ``None`` pays one
attribute check and nothing else, so the hooks ship in production code
permanently.

Determinism is the whole point: a spec fires either on an exact hit
count (``at_count``) or with a probability drawn from the plan's own
seeded RNG, so the same plan + seed + workload replays the same fault
sequence bit-for-bit.  The chaos matrix (:mod:`repro.faults.chaos`)
relies on this to compare every faulted run against a fault-free oracle.

Faults that simulate process death raise :class:`InjectedCrash`; the
harness catches it, reopens the data directory and drives recovery
exactly like a restarted server would.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..obs.instruments import Counter
from ..obs.trace import Observability

__all__ = [
    "FaultAction",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "InjectedFault",
]


class InjectedFault(RuntimeError):
    """Base of every deliberately injected failure.

    Carries the hook site and injector kind so harnesses (and error
    envelopes) can tell injected failures from organic ones.
    """

    def __init__(self, site: str, kind: str, message: str = "") -> None:
        self.site = site
        self.kind = kind
        super().__init__(message or f"injected fault {kind!r} at {site!r}")


class InjectedCrash(InjectedFault):
    """Simulated ``kill -9``: the hook raises instead of returning.

    Whatever bytes the injector left on disk *stay* — the chaos harness
    recovers from the resulting directory state, never from memory.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: where, what, and when it fires.

    Parameters
    ----------
    site:
        Hook-site name (see :data:`repro.faults.injectors.CATALOG`).
    kind:
        Injector kind, validated against the site's catalog entry.
    at_count:
        Fire on exactly the N-th hit of ``site`` (1-based).  Mutually
        exclusive with ``probability``.
    probability:
        Fire on any hit with this chance, drawn from the *plan's* seeded
        RNG — deterministic for a fixed plan seed and hit sequence.
    phase:
        Only fire while the plan's phase (set by the harness via
        :meth:`FaultPlan.set_phase`) equals this string; ``None`` means
        any phase.
    max_fires:
        Stop firing after this many activations of the spec.
    args:
        Injector-specific parameters (``seconds`` for delays, ...).
    """

    site: str
    kind: str
    at_count: Optional[int] = None
    probability: float = 0.0
    phase: Optional[str] = None
    max_fires: int = 1
    args: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if (self.at_count is None) == (self.probability <= 0.0):
            raise ValueError(
                f"spec {self.site}/{self.kind}: set exactly one of "
                f"at_count (got {self.at_count!r}) or probability "
                f"(got {self.probability!r})"
            )
        if self.at_count is not None and self.at_count < 1:
            raise ValueError(f"at_count must be >= 1, got {self.at_count}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.max_fires < 1:
            raise ValueError(f"max_fires must be >= 1, got {self.max_fires}")


class FaultAction:
    """What an armed hook site must apply: the kind plus its arguments."""

    __slots__ = ("site", "kind", "args")

    def __init__(self, site: str, kind: str, args: Mapping[str, object]) -> None:
        self.site = site
        self.kind = kind
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultAction({self.site!r}, {self.kind!r}, {dict(self.args)!r})"

    def seconds(self, default: float = 0.05) -> float:
        """The ``seconds`` argument of a delay/stall injector."""
        value = self.args.get("seconds", default)
        return float(value) if isinstance(value, (int, float)) else default


class FaultPlan:
    """A seeded set of :class:`FaultSpec` entries plus firing state.

    One plan instance is threaded through a whole serving stack (WAL,
    checkpoint store, batcher, server), so its per-site hit counters see
    the global ordering of events and ``at_count`` triggers are
    meaningful across components.  Not thread-safe by design: the
    serving stack funnels every durable mutation through the single
    writer/event loop, which is exactly the ordering the plan counts.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), *, seed: int = 0) -> None:
        from .injectors import validate_spec

        for spec in specs:
            validate_spec(spec)
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed
        self._rng = random.Random(seed)
        self._hits: Dict[str, int] = {}
        self._fires: List[int] = [0] * len(self.specs)
        #: Chronological record of fired faults (for reports/assertions).
        self.fired: List[Dict[str, object]] = []
        self._phase: Optional[str] = None
        self._c_injected: Optional[Counter] = None

    # -- wiring ------------------------------------------------------------
    def attach_obs(self, obs: Observability) -> None:
        """Count fired faults in ``obs``'s registry (``faults_injected``)."""
        if obs.enabled:
            self._c_injected = obs.registry.counter("faults_injected")

    def set_phase(self, phase: Optional[str]) -> None:
        """Enter a named phase; specs with a ``phase`` only fire inside it."""
        self._phase = phase

    @property
    def phase(self) -> Optional[str]:
        return self._phase

    # -- interrogation -----------------------------------------------------
    @property
    def armed(self) -> bool:
        """True while any spec can still fire."""
        return any(
            fires < spec.max_fires
            for spec, fires in zip(self.specs, self._fires)
        )

    def hits(self, site: str) -> int:
        """How many times ``site`` has been reached so far."""
        return self._hits.get(site, 0)

    def report(self) -> Dict[str, object]:
        """JSON-able summary: seed, per-site hits, and the fired log."""
        return {
            "seed": self.seed,
            "hits": dict(sorted(self._hits.items())),
            "fired": list(self.fired),
        }

    # -- the hook ----------------------------------------------------------
    def hit(self, site: str, **ctx: object) -> Optional[FaultAction]:
        """Register one arrival at ``site``; return the action to apply.

        At most one spec fires per hit (first match in plan order).
        ``ctx`` is free-form hook context recorded in the fired log.
        """
        count = self._hits.get(site, 0) + 1
        self._hits[site] = count
        for i, spec in enumerate(self.specs):
            if spec.site != site or self._fires[i] >= spec.max_fires:
                continue
            if spec.phase is not None and spec.phase != self._phase:
                continue
            if spec.at_count is not None:
                due = count == spec.at_count
            else:
                due = self._rng.random() < spec.probability
            if not due:
                continue
            self._fires[i] += 1
            self.fired.append(
                {"site": site, "kind": spec.kind, "hit": count, **ctx}
            )
            if self._c_injected is not None:
                self._c_injected.inc()
            return FaultAction(site, spec.kind, spec.args)
        return None
